//! Serving bench for the `tft-serve` gateway: the same deterministic load
//! trace (thousands of open-loop clients, hot/cold spec mix) replayed at
//! workers ∈ {1, 2, 8}.
//!
//! Two jobs in one binary:
//!
//! 1. **Regression gate** — the concatenated-response digest must be
//!    identical at every worker count. A mismatch panics, the bench exits
//!    nonzero, and `scripts/check.sh` fails the tft-serve stage.
//! 2. **Trajectory** — wall-clock per full trace, virtual requests/sec,
//!    p95 virtual latency, and cache hit rate, written as
//!    `BENCH_serve.json` and archived across PRs.
//!
//! The JSON report is written directly (not via `Harness::finish`) because
//! the serving metrics live alongside — not inside — the timing stats.

use std::hint::black_box;
use substrate::bench::Harness;
use substrate::json::{Json, ToJson};
use tft_serve::loadgen::{self, LoadGenConfig};

/// Master trace seed; changing it re-rolls every arrival and spec choice.
const SEED: u64 = 0x5E12_BE7C;

fn main() {
    let mut h = Harness::new("serve");
    let worker_counts = [1usize, 2, 8];

    // One measured run per worker count for the serving metrics and the
    // digest gate; the harness then times repeat runs of the same trace.
    let reports: Vec<_> = worker_counts
        .iter()
        .map(|&w| loadgen::run(&LoadGenConfig::quick(w, SEED)))
        .collect();
    let digest = reports[0].response_digest;
    for (&w, r) in worker_counts.iter().zip(&reports) {
        assert_eq!(
            r.response_digest, digest,
            "response digest diverged at workers={w}: \
             {:016x} != {:016x} — serving is no longer byte-identical",
            r.response_digest, digest
        );
    }
    eprintln!("[serve] digest {digest:016x} identical at workers {worker_counts:?}");

    let mut rows = Vec::new();
    for (&workers, report) in worker_counts.iter().zip(&reports) {
        let cfg = LoadGenConfig::quick(workers, SEED);
        let stats = h
            .bench(&format!("loadgen/quick/workers{workers}"), || {
                black_box(loadgen::run(&cfg).response_digest)
            })
            .clone();
        // Throughput: the whole trace's requests over one run's wall-clock.
        let requests_per_sec = report.requests as f64 / (stats.median_ns / 1e9);
        let mut row = match report.to_json() {
            Json::Obj(members) => members,
            _ => unreachable!("LoadReport renders as an object"),
        };
        row.insert(0, ("workers".into(), Json::uint(workers as u64)));
        row.push(("wall_median_ns".into(), Json::float(stats.median_ns)));
        row.push(("requests_per_sec".into(), Json::float(requests_per_sec)));
        rows.push(Json::Obj(row));
    }

    println!("{}", h.render());
    let doc = Json::Obj(vec![
        ("label".into(), Json::str("serve")),
        ("quick".into(), Json::Bool(h.is_quick())),
        ("seed".into(), Json::str(format!("{SEED:016x}"))),
        (
            "response_digest".into(),
            Json::str(format!("{digest:016x}")),
        ),
        ("digest_identical_at_workers_1_2_8".into(), Json::Bool(true)),
        ("runs".into(), Json::Arr(rows)),
    ]);
    if let Some(path) = std::env::var_os("BENCH_JSON") {
        let rendered = doc.render_pretty() + "\n";
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("[serve] could not write {}: {e}", path.to_string_lossy());
            std::process::exit(1);
        }
        eprintln!("[serve] wrote {}", path.to_string_lossy());
    }
}
