//! Ablations: remove one design ingredient at a time and show the
//! methodology degrade in the predicted way. These pin down *why* each
//! mechanism exists.

use tft::netsim::{FaultInjector, SimDuration};
use tft::prelude::*;
use tft::tft_core::dns_exp::{self, DnsExpOptions};
use tft::tft_core::obs::DnsOutcome;

fn small_world(seed: u64) -> BuiltWorld {
    build(&paper_spec(0.004, seed))
}

fn cfg() -> StudyConfig {
    StudyConfig::scaled(0.004)
}

/// Without session stickiness, d₁ and d₂ land on different exit nodes and
/// the zID cross-check discards the pair: the experiment collapses.
#[test]
fn ablation_session_stickiness() {
    let mut with = small_world(11);
    let with_data = dns_exp::run(&mut with.world, &cfg());
    let with_yield = with_data.observations.len() as f64
        / (with_data.observations.len() + with_data.discarded).max(1) as f64;

    let mut without = small_world(11);
    without.world.set_session_ttl(SimDuration::ZERO);
    let without_data = dns_exp::run(&mut without.world, &cfg());
    let without_yield = without_data.observations.len() as f64
        / (without_data.observations.len() + without_data.discarded).max(1) as f64;

    assert!(with_yield > 0.8, "with sessions: yield {with_yield:.3}");
    assert!(
        without_yield < with_yield / 5.0,
        "without sessions the pair yield should collapse: {without_yield:.3} vs {with_yield:.3}"
    );
}

/// Without retries, residential loss eats a large share of probes; with
/// the service's 5 attempts nearly everything completes.
#[test]
fn ablation_retries_under_loss() {
    let run = |attempts: usize| -> f64 {
        let mut built = small_world(12);
        built.world.set_fault_injector(FaultInjector::lossy(0.20));
        built.world.set_max_attempts(attempts);
        let apex = built.world.auth_apex().clone();
        let host = apex.child("retry-ablation").expect("valid").to_string();
        let web_ip = built.world.web_ip();
        built
            .world
            .auth_server_mut()
            .zone_mut()
            .add_a(apex.child("retry-ablation").expect("valid"), web_ip);
        built.world.web_server_mut().put(
            &host,
            "/",
            tft::httpwire::Response::ok("text/html", b"ok".to_vec()),
        );
        let n = 400;
        let ok = (0..n)
            .filter(|i| {
                let opts = UsernameOptions::new("ablate").session(*i);
                built.world.proxy_get(&opts, &Uri::http(&host, "/")).is_ok()
            })
            .count();
        ok as f64 / n as f64
    };
    let with_retries = run(5);
    let without = run(1);
    assert!(with_retries > 0.98, "5 attempts: {with_retries:.3}");
    assert!(without < 0.90, "1 attempt under 20% loss: {without:.3}");
    assert!(with_retries > without);
}

/// With the naive /16 allow-predicate, every Google-DNS node resolves d₂
/// and is misclassified as hijacked — the footnote-8 trap, quantified.
#[test]
fn ablation_d2_predicate_width() {
    let hijack_rate = |naive: bool| -> (f64, usize) {
        let mut built = small_world(13);
        let data = dns_exp::run_with(
            &mut built.world,
            &cfg(),
            DnsExpOptions {
                naive_google_predicate: naive,
            },
        );
        let hijacked = data
            .observations
            .iter()
            .filter(|o| matches!(o.outcome, DnsOutcome::Hijacked { .. }))
            .count();
        (
            hijacked as f64 / data.observations.len().max(1) as f64,
            data.observations.len(),
        )
    };
    let (correct, n1) = hijack_rate(false);
    let (naive, n2) = hijack_rate(true);
    assert!(n1 > 1000 && n2 > 1000);
    // The calibrated world has ~5% true hijacking and ~5% Google-DNS users;
    // the naive predicate roughly doubles the apparent rate.
    assert!(
        naive > correct + 0.02,
        "naive {naive:.4} should exceed correct {correct:.4} by the Google-user share"
    );
}
