//! Certificate issuance: roots, intermediates, leaves, and the deliberately
//! broken certificates the HTTPS experiment's *invalid sites* class needs
//! (self-signed, expired, wrong common name — §6.1).

use crate::cert::{Certificate, DistinguishedName, KeyId};
use netsim::rng::RngExt;
use netsim::{SimDuration, SimRng, SimTime};

/// A certificate authority: a CA certificate plus its (simulated) private
/// key, able to sign child certificates.
#[derive(Debug, Clone)]
pub struct CertAuthority {
    /// The CA's own certificate.
    pub cert: Certificate,
    key: KeyId,
    next_serial: u64,
}

/// Default validity for issued leaves: ~2 years of simulated time.
const LEAF_VALIDITY: SimDuration = SimDuration::from_days(730);
/// Default validity for CA certificates: ~10 years.
const CA_VALIDITY: SimDuration = SimDuration::from_days(3650);

impl CertAuthority {
    /// Create a new self-signed root CA.
    pub fn new_root(name: DistinguishedName, now: SimTime, rng: &mut SimRng) -> CertAuthority {
        let key = KeyId(rng.random());
        let cert = Certificate {
            serial: rng.random(),
            subject: name.clone(),
            issuer: name,
            subject_key: key,
            issuer_key: key,
            not_before: now,
            not_after: now + CA_VALIDITY,
            san: Vec::new(),
            is_ca: true,
        };
        CertAuthority {
            cert,
            key,
            next_serial: 1,
        }
    }

    /// The CA's signing key (exposed for the shared-key analyses).
    pub fn key(&self) -> KeyId {
        self.key
    }

    /// Issue an intermediate CA.
    pub fn issue_intermediate(
        &mut self,
        name: DistinguishedName,
        now: SimTime,
        rng: &mut SimRng,
    ) -> CertAuthority {
        let key = KeyId(rng.random());
        let cert = Certificate {
            serial: self.take_serial(),
            subject: name,
            issuer: self.cert.subject.clone(),
            subject_key: key,
            issuer_key: self.key,
            not_before: now,
            not_after: now + CA_VALIDITY,
            san: Vec::new(),
            is_ca: true,
        };
        CertAuthority {
            cert,
            key,
            next_serial: 1,
        }
    }

    /// Issue a leaf certificate for `hostname` with a fresh key.
    pub fn issue_leaf(&mut self, hostname: &str, now: SimTime, rng: &mut SimRng) -> Certificate {
        let key = KeyId(rng.random());
        self.issue_leaf_with_key(hostname, now, key)
    }

    /// Issue a leaf certificate for `hostname` with a caller-chosen subject
    /// key. This is how TLS interceptors that reuse one key per host are
    /// modelled (§6.2: "each system uses the same public keys on all
    /// certificates on a given exit node").
    pub fn issue_leaf_with_key(&mut self, hostname: &str, now: SimTime, key: KeyId) -> Certificate {
        Certificate {
            serial: self.take_serial(),
            subject: DistinguishedName::cn(hostname),
            issuer: self.cert.subject.clone(),
            subject_key: key,
            issuer_key: self.key,
            not_before: now,
            not_after: now + LEAF_VALIDITY,
            san: vec![hostname.to_string()],
            is_ca: false,
        }
    }

    /// Issue a spoofed replacement for `original`, copying its subject and
    /// SANs (and optionally most other surface fields, as the Cloudguard
    /// malware does to "appear more legitimate" — §6.2).
    pub fn issue_spoof(
        &mut self,
        original: &Certificate,
        key: KeyId,
        now: SimTime,
        copy_fields: bool,
    ) -> Certificate {
        Certificate {
            serial: if copy_fields {
                original.serial
            } else {
                self.take_serial()
            },
            subject: original.subject.clone(),
            issuer: self.cert.subject.clone(),
            subject_key: key,
            issuer_key: self.key,
            not_before: if copy_fields {
                original.not_before
            } else {
                now
            },
            not_after: if copy_fields {
                original.not_after
            } else {
                now + LEAF_VALIDITY
            },
            san: original.san.clone(),
            is_ca: false,
        }
    }

    fn take_serial(&mut self) -> u64 {
        let s = self.next_serial;
        self.next_serial += 1;
        s
    }
}

/// A self-signed leaf certificate (invalid: no trust path).
pub fn self_signed_leaf(hostname: &str, now: SimTime, rng: &mut SimRng) -> Certificate {
    let key = KeyId(rng.random());
    let dn = DistinguishedName::cn(hostname);
    Certificate {
        serial: rng.random(),
        subject: dn.clone(),
        issuer: dn,
        subject_key: key,
        issuer_key: key,
        not_before: now,
        not_after: now + LEAF_VALIDITY,
        san: vec![hostname.to_string()],
        is_ca: false,
    }
}

/// An expired leaf signed by `ca` (invalid: validity window in the past).
pub fn expired_leaf(
    ca: &mut CertAuthority,
    hostname: &str,
    now: SimTime,
    rng: &mut SimRng,
) -> Certificate {
    let mut cert = ca.issue_leaf(hostname, now, rng);
    // Window entirely before `now`; guard against the epoch edge.
    let shift = SimDuration::from_days(800);
    cert.not_before = if now.as_millis() >= shift.as_millis() {
        now - shift
    } else {
        SimTime::EPOCH
    };
    cert.not_after = cert.not_before + SimDuration::from_days(30);
    cert
}

/// A leaf with the wrong common name, signed by `ca` (invalid for
/// `intended_host`).
pub fn wrong_name_leaf(
    ca: &mut CertAuthority,
    intended_host: &str,
    now: SimTime,
    rng: &mut SimRng,
) -> Certificate {
    let wrong = format!("wrong-cn-for.{intended_host}");
    let mut cert = ca.issue_leaf(&wrong, now, rng);
    // Ensure no SAN accidentally matches.
    cert.san = vec![wrong];
    cert
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0x5eed)
    }

    #[test]
    fn root_is_self_signed_ca() {
        let mut r = rng();
        let ca = CertAuthority::new_root(DistinguishedName::cn("Root X"), SimTime::EPOCH, &mut r);
        assert!(ca.cert.is_self_signed());
        assert!(ca.cert.is_ca);
    }

    #[test]
    fn leaf_is_signed_by_ca_key() {
        let mut r = rng();
        let mut ca =
            CertAuthority::new_root(DistinguishedName::cn("Root X"), SimTime::EPOCH, &mut r);
        let leaf = ca.issue_leaf("www.example.com", SimTime::EPOCH, &mut r);
        assert_eq!(leaf.issuer_key, ca.key());
        assert_eq!(leaf.issuer, ca.cert.subject);
        assert!(!leaf.is_ca);
        assert!(leaf.matches_hostname("www.example.com"));
    }

    #[test]
    fn serials_are_unique_per_ca() {
        let mut r = rng();
        let mut ca =
            CertAuthority::new_root(DistinguishedName::cn("Root X"), SimTime::EPOCH, &mut r);
        let a = ca.issue_leaf("a.example", SimTime::EPOCH, &mut r);
        let b = ca.issue_leaf("b.example", SimTime::EPOCH, &mut r);
        assert_ne!(a.serial, b.serial);
    }

    #[test]
    fn intermediate_chains_to_root() {
        let mut r = rng();
        let mut root =
            CertAuthority::new_root(DistinguishedName::cn("Root X"), SimTime::EPOCH, &mut r);
        let inter =
            root.issue_intermediate(DistinguishedName::cn("Inter Y"), SimTime::EPOCH, &mut r);
        assert_eq!(inter.cert.issuer_key, root.key());
        assert!(inter.cert.is_ca);
    }

    #[test]
    fn spoof_copies_subject() {
        let mut r = rng();
        let mut real =
            CertAuthority::new_root(DistinguishedName::cn("Real CA"), SimTime::EPOCH, &mut r);
        let original = real.issue_leaf("bank.example", SimTime::EPOCH, &mut r);
        let mut av = CertAuthority::new_root(
            DistinguishedName::cn("Avast Web/Mail Shield Root"),
            SimTime::EPOCH,
            &mut r,
        );
        let spoof = av.issue_spoof(&original, KeyId(42), SimTime::EPOCH, false);
        assert_eq!(spoof.subject, original.subject);
        assert_eq!(spoof.san, original.san);
        assert_eq!(spoof.issuer.common_name, "Avast Web/Mail Shield Root");
        assert_eq!(spoof.subject_key, KeyId(42));
    }

    #[test]
    fn spoof_with_copied_fields_mimics_original() {
        let mut r = rng();
        let mut real =
            CertAuthority::new_root(DistinguishedName::cn("Real CA"), SimTime::EPOCH, &mut r);
        let original = real.issue_leaf("bank.example", SimTime::EPOCH, &mut r);
        let mut mw = CertAuthority::new_root(
            DistinguishedName::cn("Cloudguard.me"),
            SimTime::EPOCH,
            &mut r,
        );
        let spoof = mw.issue_spoof(&original, KeyId(7), SimTime::EPOCH, true);
        assert_eq!(spoof.serial, original.serial);
        assert_eq!(spoof.not_after, original.not_after);
    }

    #[test]
    fn invalid_leaves_are_invalid_in_the_intended_way() {
        let mut r = rng();
        let now = SimTime::from_millis(SimDuration::from_days(900).as_millis());
        let mut ca = CertAuthority::new_root(DistinguishedName::cn("Root X"), now, &mut r);
        let ss = self_signed_leaf("invalid1.example", now, &mut r);
        assert!(ss.is_self_signed());
        let exp = expired_leaf(&mut ca, "invalid2.example", now, &mut r);
        assert!(!exp.is_time_valid(now));
        let wrong = wrong_name_leaf(&mut ca, "invalid3.example", now, &mut r);
        assert!(!wrong.matches_hostname("invalid3.example"));
        assert!(wrong.is_time_valid(now));
    }
}
