//! A first-party stable 64-bit hash.
//!
//! `std::hash` offers no stability promise — `SipHash` keys differ per
//! process by design, and even a fixed-key `DefaultHasher` is documented
//! as free to change between compiler releases. Content-addressed keys
//! (`tft-serve`'s `spec_hash`) must be **byte-stable across platforms,
//! processes, and releases**, so this module pins its own function:
//! FNV-1a over the input bytes, finished with the splitmix64 avalanche —
//! the same construction `netsim::SimRng::fork` has pinned goldens for.
//!
//! The constants and the finalizer are part of the public contract: the
//! golden values in the tests below must never change, or every cached
//! artifact keyed by a stable hash silently orphans.

use crate::rng::mix64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash `bytes` to a stable 64-bit value.
///
/// Stable across platforms, endianness, processes, and releases; suitable
/// for content-addressing and cache keys, **not** for adversarial inputs
/// (it is not a cryptographic hash, and collisions can be constructed).
pub fn stable64(bytes: &[u8]) -> u64 {
    let mut h = Hasher64::new();
    h.update(bytes);
    h.finish()
}

/// Incremental form of [`stable64`]: feed bytes in any segmentation, the
/// result depends only on the concatenation.
#[derive(Debug, Clone)]
pub struct Hasher64 {
    state: u64,
}

impl Hasher64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Hasher64 {
        Hasher64 { state: FNV_OFFSET }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Finish with the splitmix64 avalanche so short or similar inputs
    /// still produce well-spread values.
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

impl Default for Hasher64 {
    fn default() -> Self {
        Hasher64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stability contract: these goldens pin the function forever.
    /// A failure here means cached artifacts keyed by [`stable64`] would
    /// orphan — change the caches' version tag, not these values.
    #[test]
    fn golden_values_are_pinned() {
        assert_eq!(stable64(b""), 0xf52a_15e9_a9b5_e89b);
        assert_eq!(stable64(b"a"), 0x02c0_bdbf_4814_20f8);
        assert_eq!(stable64(b"spec"), 0x5875_1e2f_1850_583f);
        assert_eq!(
            stable64(b"The quick brown fox jumps over the lazy dog"),
            0x1e8e_6a07_9b16_7ea7
        );
    }

    #[test]
    fn segmentation_does_not_matter() {
        let data = b"content-addressed study artifacts";
        let whole = stable64(data);
        for split in 0..data.len() {
            let mut h = Hasher64::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn distinct_inputs_spread() {
        // Not a collision-resistance claim, just a sanity check that the
        // avalanche decorrelates adjacent inputs.
        let a = stable64(b"study-0");
        let b = stable64(b"study-1");
        assert_ne!(a, b);
        assert_ne!(a ^ b, 0);
        assert!((a ^ b).count_ones() > 8, "poor avalanche: {a:#x} vs {b:#x}");
    }
}
