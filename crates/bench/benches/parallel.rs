//! Scaling bench for the parallel study executor (`tft_core::exec`): the
//! same scale-0.1 campaign at workers ∈ {1, 2, 4, 8}.
//!
//! Output is byte-identical at every worker count (asserted by the
//! workspace determinism tests); this bench measures the only thing the
//! knob is allowed to change — wall-clock. `scripts/check.sh` runs it in
//! quick mode and archives `BENCH_parallel.json` so the speedup is tracked
//! across PRs.

use std::hint::black_box;
use substrate::bench::Harness;
use tft_core::{run_study_with, ExecOptions, StudyConfig};

fn main() {
    let mut h = Harness::new("parallel");
    let scale = 0.1;
    let cfg = StudyConfig::scaled(scale);
    // One pristine world, cloned per run: world construction is cheap
    // relative to the study, and every run must start from identical state.
    let pristine = worldgen::build(&worldgen::paper_spec(scale, 0xBE7C)).world;
    // One discarded run so the first measured worker count does not absorb
    // process-lifetime warmup (page faults, allocator growth). Quick mode
    // skips the harness's own warmup, so this keeps the comparison fair.
    {
        let mut world = pristine.clone();
        black_box(run_study_with(
            &mut world,
            &cfg,
            &ExecOptions::with_workers(1),
        ));
    }
    for workers in [1usize, 2, 4, 8] {
        h.bench(&format!("run_study/scale{scale}/workers{workers}"), || {
            let mut world = pristine.clone();
            black_box(run_study_with(
                &mut world,
                &cfg,
                &ExecOptions::with_workers(workers),
            ))
        });
    }
    h.finish();
}
