//! Crash-recovery determinism: a study killed at *any* stage boundary and
//! restored from its serialized checkpoint must render the same report —
//! tables and data-quality annex, byte for byte — as the uninterrupted run,
//! at any worker count. Supervised retries (injected per-task faults) must
//! be equally invisible in the output.

use substrate::hash::stable64;
use tft::prelude::*;
use tft::tft_core::{render_tables, StudyCheckpoint, StudyDriver, StudyStage};
use tft::worldgen::{build, smoke_spec};

const SEED: u64 = 0x5E4E;

fn smoke_cfg() -> StudyConfig {
    StudyConfig {
        min_nodes_per_country: 5,
        min_nodes_per_dns_server: 3,
        ..StudyConfig::default()
    }
}

/// The full rendered output whose bytes the recovery contract pins.
fn rendered(report: &StudyReport, cfg: &StudyConfig) -> String {
    let mut out = render_tables(report);
    out.push('\n');
    out.push_str(&render_annex(report, cfg));
    out
}

/// Uninterrupted reference run, plus a serialized checkpoint taken at every
/// stage boundary along the way (checkpointing is non-destructive, so one
/// stepwise run yields both).
fn reference_with_checkpoints(workers: usize) -> (String, Vec<(StudyStage, String)>) {
    let spec = smoke_spec(SEED);
    let built = build(&spec);
    let cfg = smoke_cfg();
    let mut driver = StudyDriver::new(
        built.world,
        cfg.clone(),
        &ExecOptions::with_workers(workers),
    );
    let mut checkpoints = Vec::new();
    while !driver.is_done() {
        let cp = driver
            .checkpoint(&spec)
            .expect("every pre-Done boundary is checkpointable");
        checkpoints.push((cp.next, cp.to_canonical_json()));
        driver.step();
    }
    let (report, _world) = driver.into_parts();
    (rendered(&report, &cfg), checkpoints)
}

#[test]
fn kill_at_every_stage_boundary_restores_byte_identical() {
    let (reference, checkpoints) = reference_with_checkpoints(1);
    let reference_digest = stable64(reference.as_bytes());
    let boundaries: Vec<StudyStage> = checkpoints.iter().map(|(s, _)| *s).collect();
    assert_eq!(
        boundaries,
        [
            StudyStage::Dns,
            StudyStage::Http,
            StudyStage::Https,
            StudyStage::Monitor,
            StudyStage::Analyze,
        ],
        "one checkpoint per stage boundary"
    );

    for (stage, json) in &checkpoints {
        // The on-disk form is all a resuming process gets.
        let cp = StudyCheckpoint::from_json_str(json).expect("persisted checkpoint parses");
        for workers in [1, 8] {
            let mut resumed = StudyDriver::restore(&cp, &ExecOptions::with_workers(workers))
                .expect("restore from pristine rebuild");
            resumed.run_to_completion();
            let (report, _world) = resumed.into_parts();
            let out = rendered(&report, &smoke_cfg());
            assert_eq!(
                stable64(out.as_bytes()),
                reference_digest,
                "killed before {stage:?}, resumed at workers={workers}: output diverged"
            );
            assert_eq!(out, reference, "digest collision without equality?");
        }
    }
}

#[test]
fn restored_world_side_effects_match_uninterrupted_run() {
    let spec = smoke_spec(SEED);
    let cfg = smoke_cfg();

    let mut straight = StudyDriver::new(
        build(&spec).world,
        cfg.clone(),
        &ExecOptions::with_workers(1),
    );
    straight.run_to_completion();
    let (_, world) = straight.into_parts();
    let (billed, log_len) = (
        world.bytes_billed(&cfg.customer),
        world.web_server().log().len(),
    );

    let mut stepped = StudyDriver::new(
        build(&spec).world,
        cfg.clone(),
        &ExecOptions::with_workers(1),
    );
    stepped.step();
    stepped.step(); // kill after HTTP: both logs and billing are non-trivial
    let json = stepped
        .checkpoint(&spec)
        .expect("checkpointable")
        .to_canonical_json();
    let cp = StudyCheckpoint::from_json_str(&json).expect("parses");
    let mut resumed = StudyDriver::restore(&cp, &ExecOptions::with_workers(8)).expect("restores");
    resumed.run_to_completion();
    let (_, world) = resumed.into_parts();
    assert_eq!(
        world.bytes_billed(&cfg.customer),
        billed,
        "billing diverged"
    );
    assert_eq!(
        world.web_server().log().len(),
        log_len,
        "server log diverged"
    );
}

#[test]
fn supervised_faults_are_invisible_in_study_output() {
    use substrate::pool::{FaultInjector, FaultPolicy};

    let spec = smoke_spec(SEED);
    let cfg = smoke_cfg();
    let clean = {
        let mut d = StudyDriver::new(
            build(&spec).world,
            cfg.clone(),
            &ExecOptions::with_workers(1),
        );
        d.run_to_completion();
        let (report, _) = d.into_parts();
        rendered(&report, &cfg)
    };

    for workers in [1, 8] {
        let mut d = StudyDriver::new(
            build(&spec).world,
            cfg.clone(),
            &ExecOptions::with_workers(workers),
        );
        // Roughly a third of shard tasks panic on their first attempt(s);
        // the supervisor's retry drain must reproduce them exactly.
        d.set_fault_policy(
            FaultPolicy::retries(3).with_injector(FaultInjector::seeded(0xC0FFEE, 333, 2)),
        );
        d.run_to_completion();
        let (report, _) = d.into_parts();
        assert_eq!(
            rendered(&report, &cfg),
            clean,
            "injected faults leaked into the report at workers={workers}"
        );
    }
}

#[test]
fn fault_injection_composes_with_checkpoint_restore() {
    use substrate::pool::{FaultInjector, FaultPolicy};

    let cfg = smoke_cfg();
    let (reference, checkpoints) = reference_with_checkpoints(1);

    // Resume the study killed before HTTPS, with faults injected into the
    // remaining stages: recovery and supervision stack.
    let (_, json) = &checkpoints[2];
    let cp = StudyCheckpoint::from_json_str(json).expect("parses");
    let mut resumed = StudyDriver::restore(&cp, &ExecOptions::with_workers(8)).expect("restores");
    resumed.set_fault_policy(
        FaultPolicy::retries(3).with_injector(FaultInjector::seeded(0xBAD5EED, 250, 2)),
    );
    resumed.run_to_completion();
    let (report, _) = resumed.into_parts();
    assert_eq!(rendered(&report, &cfg), reference);
}
