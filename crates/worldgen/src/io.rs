//! Spec serialization: export and replay scenarios as JSON files.
//!
//! A spec file pins an entire reproducible world — `(spec, seed)` is the
//! whole input. Exported specs let reviewers rerun exactly the population a
//! result was produced on, and let users version their own scenarios.

use crate::spec::WorldSpec;
use crate::validate::{validate, SpecError};
use std::fmt;
use std::path::Path;

/// Errors loading or saving a spec file.
#[derive(Debug)]
pub enum SpecIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not valid JSON for a [`WorldSpec`].
    Format(substrate::json::JsonError),
    /// The spec parsed but failed validation.
    Invalid(Vec<SpecError>),
}

impl fmt::Display for SpecIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecIoError::Io(e) => write!(f, "spec file I/O: {e}"),
            SpecIoError::Format(e) => write!(f, "spec file format: {e}"),
            SpecIoError::Invalid(errs) => {
                write!(f, "spec invalid: ")?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SpecIoError {}

impl From<std::io::Error> for SpecIoError {
    fn from(e: std::io::Error) -> Self {
        SpecIoError::Io(e)
    }
}

impl From<substrate::json::JsonError> for SpecIoError {
    fn from(e: substrate::json::JsonError) -> Self {
        SpecIoError::Format(e)
    }
}

/// Serialize a spec to pretty JSON.
pub fn to_json(spec: &WorldSpec) -> Result<String, SpecIoError> {
    Ok(substrate::json::to_string_pretty(spec))
}

/// Parse a spec from JSON and validate it.
///
/// Both lexical errors (bad JSON) and shape errors (valid JSON that is not a
/// `WorldSpec`) surface as [`SpecIoError::Format`].
pub fn from_json(json: &str) -> Result<WorldSpec, SpecIoError> {
    let spec: WorldSpec = substrate::json::from_str(json)?;
    validate(&spec).map_err(SpecIoError::Invalid)?;
    Ok(spec)
}

/// Write a spec to a file.
pub fn save(spec: &WorldSpec, path: impl AsRef<Path>) -> Result<(), SpecIoError> {
    std::fs::write(path, to_json(spec)?)?;
    Ok(())
}

/// Load and validate a spec from a file.
pub fn load(path: impl AsRef<Path>) -> Result<WorldSpec, SpecIoError> {
    from_json(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::paper_spec;
    use crate::scenarios::smoke_spec;

    #[test]
    fn json_roundtrip_preserves_the_world() {
        let spec = smoke_spec(11);
        let json = to_json(&spec).unwrap();
        let back = from_json(&json).unwrap();
        // Same spec ⇒ same world ⇒ same ground truth.
        let a = crate::build(&spec);
        let b = crate::build(&back);
        assert_eq!(a.truth.total_nodes, b.truth.total_nodes);
        assert_eq!(
            a.truth.dns_hijacked.keys().collect::<Vec<_>>(),
            b.truth.dns_hijacked.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn paper_spec_roundtrips() {
        let spec = paper_spec(0.01, 3);
        let back = from_json(&to_json(&spec).unwrap()).unwrap();
        assert_eq!(back.countries.len(), spec.countries.len());
        assert_eq!(back.monitors.len(), spec.monitors.len());
        assert_eq!(back.seed, spec.seed);
    }

    #[test]
    fn invalid_json_is_rejected() {
        assert!(matches!(from_json("{"), Err(SpecIoError::Format(_))));
        assert!(matches!(
            from_json("{\"seed\": 1}"),
            Err(SpecIoError::Format(_))
        ));
    }

    #[test]
    fn invalid_spec_is_rejected_after_parse() {
        let mut spec = smoke_spec(1);
        spec.scale = -3.0;
        let json = to_json(&spec).unwrap();
        assert!(matches!(from_json(&json), Err(SpecIoError::Invalid(_))));
    }

    #[test]
    fn file_save_and_load() {
        let dir = std::env::temp_dir().join("tft-spec-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("smoke.json");
        let spec = smoke_spec(2);
        save(&spec, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.seed, spec.seed);
        std::fs::remove_file(&path).ok();
    }
}
