//! The paper's published numbers, transcribed as constants.
//!
//! These drive two things: (a) the calibrated world generator plants
//! violators at these rates, and (b) the experiment harness prints
//! paper-vs-measured comparisons (EXPERIMENTS.md) against them.
//! All counts are at **paper scale**; the builder multiplies by the world's
//! scale factor.

/// Headline rates (§1, §4–§7).
pub mod headline {
    /// Fraction of exit nodes with hijacked NXDOMAIN responses (§4.2).
    pub const DNS_HIJACK_RATE: f64 = 0.048;
    /// Fraction of HTML fetches modified (§5.2).
    pub const HTML_MOD_RATE: f64 = 0.0095;
    /// Fraction of image fetches transcoded (§5.2).
    pub const IMAGE_MOD_RATE: f64 = 0.014;
    /// Fraction of JS fetches replaced (§5.2).
    pub const JS_MOD_RATE: f64 = 0.0009;
    /// Fraction of CSS fetches replaced (§5.2).
    pub const CSS_MOD_RATE: f64 = 0.00002;
    /// Fraction of nodes with ≥1 replaced certificate (§6.2: 4,540 of
    /// 807,910; the prose says 0.05% but the paper's own counts give
    /// 0.56% — we target the counts).
    pub const CERT_REPLACE_RATE: f64 = 4540.0 / 807_910.0;
    /// Fraction of nodes with monitored requests (§7.2).
    pub const MONITOR_RATE: f64 = 11_234.0 / 747_449.0;
    /// DNS hijack attribution split (§4.4).
    pub const DNS_ATTRIB_ISP: f64 = 0.896;
    /// Public-resolver share of hijacks (§4.4).
    pub const DNS_ATTRIB_PUBLIC: f64 = 0.077;
    /// Path/end-host share of hijacks (§4.4).
    pub const DNS_ATTRIB_OTHER: f64 = 0.027;
}

/// Table 2: exit nodes / ASes / countries per experiment.
pub mod table2 {
    /// (experiment, exit nodes, ASes, countries).
    pub const ROWS: [(&str, u64, u64, u64); 4] = [
        ("DNS", 753_111, 10_197, 167),
        ("HTTP", 49_545, 12_658, 171),
        ("HTTPS", 807_910, 10_007, 115),
        ("Monitoring", 747_449, 11_638, 167),
    ];
}

/// Table 3: top-10 countries by NXDOMAIN hijack ratio.
/// (ISO code, hijacked nodes, total nodes).
pub const TABLE3: [(&str, u64, u64); 10] = [
    ("MY", 3_652, 6_983),
    ("ID", 3_178, 8_568),
    ("CN", 237, 671),
    ("GB", 9_553, 37_156),
    ("DE", 4_703, 19_076),
    ("US", 6_108, 33_398),
    ("IN", 1_127, 6_868),
    ("BR", 3_190, 24_298),
    ("BJ", 90, 716),
    ("JO", 76, 1_117),
];

/// Table 4: ISP DNS servers hijacking ≥90% of their exit nodes.
/// (country, ISP, DNS servers, exit nodes).
pub const TABLE4: [(&str, &str, u64, u64); 19] = [
    ("AR", "Telefonica de Argentina", 14, 276),
    ("AU", "Dodo Australia", 21, 1_404),
    ("BR", "Oi Fixo", 21, 2_558),
    ("BR", "CTBC", 4, 290),
    ("DE", "Deutsche Telekom AG", 8, 1_385),
    ("IN", "Airtel Broadband", 9, 735),
    ("IN", "BSNL", 2, 71),
    ("IN", "Ntl. Int. Backbone", 8, 245),
    ("MY", "TMnet", 8, 1_676),
    ("ES", "ONO", 2, 71),
    ("GB", "BT Internet", 6, 479),
    ("GB", "Talk Talk", 46, 3_738),
    ("US", "AT&T", 37, 561),
    ("US", "Cable One", 4, 108),
    ("US", "Cox Communications", 63, 1_789),
    ("US", "Mediacom Cable", 6, 219),
    ("US", "Suddenlink", 9, 98),
    ("US", "Verizon", 98, 2_102),
    ("US", "WideOpenWest", 1, 39),
];

/// Table 5: domains in hijacked content served to Google-DNS exit nodes.
/// (domain, exit nodes, ASes, is_endhost_software).
/// The top 12 rows are transparent ISP proxies; the last two are end-host
/// anti-virus/malware.
pub const TABLE5: [(&str, u64, u64, bool); 16] = [
    ("navigationshilfe.t-online.de", 80, 1, false),
    ("www.webaddresshelp.bt.com", 73, 1, false),
    ("v3.mercusuar.uzone.id", 53, 1, false),
    ("error.talktalk.co.uk", 46, 3, false),
    ("dnserros.oi.com.br", 40, 2, false),
    ("dnserrorassist.att.net", 32, 1, false),
    ("searchassist.verizon.com", 30, 1, false),
    ("finder.cox.net", 17, 1, false),
    ("ayudaenlabusqueda.telefonica.com.ar", 16, 1, false),
    ("google.dodo.com.au", 13, 1, false),
    ("airtelforum.com", 14, 1, false),
    ("nodomain.ctbc.com.br", 7, 1, false),
    ("search.mediacomcable.com", 7, 1, false),
    ("midascdn.nervesis.com", 68, 1, false),
    ("nortonsafe.search.ask.com", 25, 18, true),
    ("securedns.comodo.com", 9, 9, true),
];

/// §4.3.2: hijacking public resolver services.
/// (service, hijacking servers, kind).
pub const PUBLIC_HIJACKERS: [(&str, u64); 5] = [
    ("Comodo DNS", 9),
    ("UltraDNS", 4),
    ("LookSafe", 2),
    ("Level 3", 3),
    ("Unidentified", 3),
];
/// §4.3.2: total public resolvers observed (≥10 exit nodes each) and total
/// exit nodes behind the 21 hijacking ones.
pub const PUBLIC_RESOLVER_COUNT: u64 = 1_110;
/// Exit nodes using the 21 hijacking public servers.
pub const PUBLIC_HIJACKED_NODES: u64 = 1_512;

/// Table 6: injected-JavaScript signatures.
/// (signature, exit nodes, countries, ASes, is_script_url).
pub const TABLE6: [(&str, u64, u64, u64, bool); 7] = [
    ("NetSparkQuiltingResult", 21, 1, 1, false),
    ("d36mw5gp02ykm5.cloudfront.net", 201, 44, 99, true),
    ("msmdzbsyrw.org", 97, 4, 76, true),
    ("pgjs.me", 16, 1, 12, true),
    ("jswrite.com/script1.js", 15, 9, 10, true),
    ("var oiasudoj;", 11, 1, 11, false),
    ("AdTaily_Widget_Container", 11, 8, 9, false),
];

/// Table 7: image-transcoding mobile ASes.
/// (ASN, ISP, country, modified nodes, total nodes, ratios; empty ratio
/// slot = single-ratio deployment).
pub struct Table7Row {
    /// AS number.
    pub asn: u32,
    /// ISP name.
    pub isp: &'static str,
    /// Country code.
    pub country: &'static str,
    /// Nodes observed with modified images.
    pub modified: u64,
    /// Nodes measured in the AS.
    pub total: u64,
    /// Compression operating points (output/input size).
    pub ratios: &'static [f64],
}

/// The twelve Table 7 rows.
pub const TABLE7: [Table7Row; 12] = [
    Table7Row {
        asn: 15_617,
        isp: "Wind Hellas",
        country: "GR",
        modified: 10,
        total: 10,
        ratios: &[0.53],
    },
    Table7Row {
        asn: 29_180,
        isp: "Telefonica UK",
        country: "GB",
        modified: 17,
        total: 17,
        ratios: &[0.47],
    },
    Table7Row {
        asn: 29_975,
        isp: "Vodacom",
        country: "ZA",
        modified: 83,
        total: 88,
        ratios: &[0.35, 0.62],
    },
    Table7Row {
        asn: 25_135,
        isp: "Vodafone UK",
        country: "GB",
        modified: 15,
        total: 18,
        ratios: &[0.54],
    },
    Table7Row {
        asn: 36_935,
        isp: "Vodafone Egypt",
        country: "EG",
        modified: 62,
        total: 81,
        ratios: &[0.33, 0.58],
    },
    Table7Row {
        asn: 36_925,
        isp: "Meditelecom",
        country: "MA",
        modified: 87,
        total: 128,
        ratios: &[0.34],
    },
    Table7Row {
        asn: 16_135,
        isp: "Turkcell",
        country: "TR",
        modified: 44,
        total: 65,
        ratios: &[0.54],
    },
    Table7Row {
        asn: 15_897,
        isp: "Vodafone Turkey",
        country: "TR",
        modified: 14,
        total: 25,
        ratios: &[0.53],
    },
    Table7Row {
        asn: 12_361,
        isp: "Vodafone Greece",
        country: "GR",
        modified: 11,
        total: 23,
        ratios: &[0.52],
    },
    Table7Row {
        asn: 37_492,
        isp: "Orange Tunisia",
        country: "TN",
        modified: 97,
        total: 331,
        ratios: &[0.34],
    },
    Table7Row {
        asn: 132_199,
        isp: "Globe Telecom",
        country: "PH",
        modified: 197,
        total: 1_374,
        ratios: &[0.51],
    },
    Table7Row {
        asn: 12_844,
        isp: "Bouygues Telecom",
        country: "FR",
        modified: 34,
        total: 615,
        ratios: &[0.53],
    },
];

/// Table 8: issuers of replaced certificates.
/// (issuer CN, exit nodes, type, shared per-node key, masks invalid certs).
pub struct Table8Row {
    /// Issuer common name.
    pub issuer: &'static str,
    /// Exit nodes observed presenting this issuer.
    pub nodes: u64,
    /// Product category as the paper classifies it.
    pub kind: &'static str,
    /// Reuses one public key for all spoofed certs on a host.
    pub shared_key: bool,
    /// Replaces originally-invalid certificates with browser-trusted ones.
    pub masks_invalid: bool,
}

/// The thirteen Table 8 rows.
pub const TABLE8: [Table8Row; 13] = [
    Table8Row {
        issuer: "Avast Web/Mail Shield Root",
        nodes: 3_283,
        kind: "Anti-Virus/Security",
        shared_key: false,
        masks_invalid: false,
    },
    Table8Row {
        issuer: "AVG Technologies",
        nodes: 247,
        kind: "Anti-Virus/Security",
        shared_key: true,
        masks_invalid: false,
    },
    Table8Row {
        issuer: "BitDefender Personal CA",
        nodes: 241,
        kind: "Anti-Virus/Security",
        shared_key: true,
        masks_invalid: false,
    },
    Table8Row {
        issuer: "ESET SSL Filter CA",
        nodes: 217,
        kind: "Anti-Virus/Security",
        shared_key: true,
        masks_invalid: true,
    },
    Table8Row {
        issuer: "Kaspersky Anti-Virus Personal Root",
        nodes: 68,
        kind: "Anti-Virus/Security",
        shared_key: true,
        masks_invalid: true,
    },
    Table8Row {
        issuer: "OpenDNS Root Certificate Authority",
        nodes: 64,
        kind: "Content filter",
        shared_key: true,
        masks_invalid: false,
    },
    Table8Row {
        issuer: "Cyberoam SSL CA",
        nodes: 35,
        kind: "Anti-Virus/Security",
        shared_key: true,
        masks_invalid: true,
    },
    Table8Row {
        issuer: "Sample CA 2",
        nodes: 29,
        kind: "N/A",
        shared_key: true,
        masks_invalid: false,
    },
    Table8Row {
        issuer: "Fortigate CA",
        nodes: 17,
        kind: "Anti-Virus/Security",
        shared_key: true,
        masks_invalid: true,
    },
    Table8Row {
        issuer: "",
        nodes: 14,
        kind: "N/A",
        shared_key: true,
        masks_invalid: false,
    },
    Table8Row {
        issuer: "Cloudguard.me",
        nodes: 14,
        kind: "Malware",
        shared_key: true,
        masks_invalid: false,
    },
    Table8Row {
        issuer: "Dr. Web",
        nodes: 13,
        kind: "Anti-Virus/Security",
        shared_key: true,
        masks_invalid: false,
    },
    Table8Row {
        issuer: "McAfee Web Gateway",
        nodes: 6,
        kind: "Anti-Virus/Security",
        shared_key: true,
        masks_invalid: true,
    },
];

/// HTTPS experiment population (Table 2 row).
pub const HTTPS_NODES: u64 = 807_910;

/// Table 9: content-monitoring entities.
/// (name, source IPs, monitored exit nodes, ASes, countries).
pub const TABLE9: [(&str, u64, u64, u64, u64); 6] = [
    ("Trend Micro", 55, 6_571, 734, 13),
    ("TalkTalk", 6, 2_233, 5, 1),
    ("Commtouch", 20, 1_154, 371, 79),
    ("AnchorFree", 223, 461, 225, 98),
    ("Bluecoat", 12, 453, 162, 64),
    ("Tiscali U.K.", 2, 363, 6, 1),
];

/// §7.2.2: share of the ISP's own nodes that are monitored.
pub const TALKTALK_MONITORED_SHARE: f64 = 0.452;
/// Tiscali's monitored share of its own nodes.
pub const TISCALI_MONITORED_SHARE: f64 = 0.114;

/// Table 1 / §3: the study overall.
pub mod study {
    /// Total unique exit nodes.
    pub const NODES: u64 = 1_276_873;
    /// Total ASes.
    pub const ASES: u64 = 14_772;
    /// Total countries.
    pub const COUNTRIES: u64 = 172;
    /// Collection period, days.
    pub const DAYS: u64 = 5;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_ratios_match_paper() {
        // Spot-check the transcription against the paper's printed ratios.
        let ratio = |cc: &str| {
            TABLE3
                .iter()
                .find(|(c, _, _)| *c == cc)
                .map(|(_, h, t)| *h as f64 / *t as f64)
                .unwrap()
        };
        assert!((ratio("MY") - 0.523).abs() < 0.001);
        assert!((ratio("GB") - 0.257).abs() < 0.001);
        assert!((ratio("JO") - 0.068).abs() < 0.01);
    }

    #[test]
    fn attribution_split_sums_to_one() {
        let s = headline::DNS_ATTRIB_ISP + headline::DNS_ATTRIB_PUBLIC + headline::DNS_ATTRIB_OTHER;
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table7_ratios_sane() {
        for row in &TABLE7 {
            assert!(row.modified <= row.total, "{}", row.isp);
            assert!(!row.ratios.is_empty());
            assert!(row.ratios.iter().all(|r| (0.1..0.9).contains(r)));
        }
    }

    #[test]
    fn table8_total_near_paper_cert_count() {
        let total: u64 = TABLE8.iter().map(|r| r.nodes).sum();
        // The 13 issuers cover 93.6% of 4,540 replaced-cert nodes.
        assert!((4_100..=4_540).contains(&total), "total {total}");
    }

    #[test]
    fn table9_total_is_94_percent_of_monitored() {
        let total: u64 = TABLE9.iter().map(|(_, _, n, _, _)| n).sum();
        assert!((10_400..=11_500).contains(&total), "total {total}");
    }
}
