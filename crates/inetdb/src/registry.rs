//! The combined Internet registry: organizations, ASes, address space, and
//! the `ip → AS → organization → country` resolution chain of §3.1.
//!
//! This is the in-simulation equivalent of RouteViews (prefix → AS) plus
//! CAIDA's AS-organizations dataset (AS → org, org → country). The world
//! generator populates it; the analysis layer queries it — exactly the two
//! external datasets the paper consumes.

use crate::routeviews::{RibBuilder, RibSnapshot};
use crate::types::{Asn, CountryCode, Ipv4Net, OrgId};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use substrate::intern::{Symbol, SymbolTable};

/// An organization (ISP) record, equivalent to a CAIDA as2org entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Organization {
    /// Stable identifier.
    pub id: OrgId,
    /// Human-readable name (e.g. "TMnet", "TalkTalk").
    pub name: String,
    /// The name interned in the registry's label table: comparisons and
    /// grouping on the analysis side are u32 compares, not string walks.
    pub name_sym: Symbol,
    /// Country where the organization is registered. The paper's
    /// country-level statistics measure *AS registration*, not users; ours do
    /// the same.
    pub country: CountryCode,
}

/// An Autonomous System record.
#[derive(Debug, Clone)]
pub struct AsRecord {
    /// The AS number.
    pub asn: Asn,
    /// Operating organization.
    pub org: OrgId,
    /// Prefixes originated by this AS.
    pub prefixes: Vec<Ipv4Net>,
    /// Next host index to hand out from `prefixes` (addresses .1 upward).
    next_host: u64,
}

/// Builder/owner of the simulated Internet's address space and registry.
#[derive(Debug, Clone)]
pub struct InternetRegistry {
    orgs: BTreeMap<OrgId, Organization>,
    ases: BTreeMap<Asn, AsRecord>,
    next_org: u32,
    next_asn: u32,
    /// Next /16 block index to allocate (see `alloc_prefix`).
    next_block: u32,
    rib: Option<RibSnapshot>,
    /// Organization/ISP names and country labels, interned in registration
    /// order. Registration happens once, deterministically, at world
    /// construction; analysis-side consumers compare and group by
    /// [`Symbol`] and only resolve strings at the report boundary.
    labels: SymbolTable,
}

/// The Google DNS anycast source range: the paper empirically determined the
/// super proxy's resolver queries arrive from one of Google's anycasted
/// 8.8.8.8 servers in 74.125.0.0/16.
pub const GOOGLE_ANYCAST_NET: &str = "74.125.0.0/16";

/// Google's public resolver service address.
pub const GOOGLE_PUBLIC_DNS: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

impl Default for InternetRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl InternetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        InternetRegistry {
            orgs: BTreeMap::new(),
            ases: BTreeMap::new(),
            next_org: 1,
            next_asn: 1,
            next_block: 0,
            rib: None,
            labels: SymbolTable::new(),
        }
    }

    /// Register an organization.
    pub fn register_org(&mut self, name: &str, country: CountryCode) -> OrgId {
        let id = OrgId(self.next_org);
        self.next_org += 1;
        let name_sym = self.labels.intern(name);
        self.labels.intern(country.as_str());
        self.orgs.insert(
            id,
            Organization {
                id,
                name: name.to_string(),
                name_sym,
                country,
            },
        );
        id
    }

    /// The interned organization/country label table (registration order).
    pub fn labels(&self) -> &SymbolTable {
        &self.labels
    }

    /// Register an AS under `org` with a chosen ASN and `prefix_count`
    /// freshly allocated /16 prefixes.
    ///
    /// # Panics
    /// Panics if `org` is unknown or `asn` is already registered.
    pub fn register_as_with_asn(&mut self, asn: Asn, org: OrgId, prefix_count: usize) -> Asn {
        assert!(self.orgs.contains_key(&org), "unknown org {org}");
        assert!(
            !self.ases.contains_key(&asn),
            "ASN {asn} already registered"
        );
        self.next_asn = self.next_asn.max(asn.0 + 1);
        let prefixes: Vec<Ipv4Net> = (0..prefix_count).map(|_| self.alloc_prefix()).collect();
        self.ases.insert(
            asn,
            AsRecord {
                asn,
                org,
                prefixes,
                next_host: 1,
            },
        );
        self.rib = None; // invalidate snapshot
        asn
    }

    /// Register an AS under `org` with an auto-assigned ASN.
    pub fn register_as(&mut self, org: OrgId, prefix_count: usize) -> Asn {
        let asn = Asn(self.next_asn);
        self.next_asn += 1;
        self.register_as_with_asn(asn, org, prefix_count)
    }

    /// Register an AS that originates a *specific* prefix (used for
    /// well-known ranges like Google's 74.125.0.0/16).
    pub fn register_as_with_prefix(&mut self, org: OrgId, net: Ipv4Net) -> Asn {
        assert!(self.orgs.contains_key(&org), "unknown org {org}");
        let asn = Asn(self.next_asn);
        self.next_asn += 1;
        self.ases.insert(
            asn,
            AsRecord {
                asn,
                org,
                prefixes: vec![net],
                next_host: 1,
            },
        );
        self.rib = None;
        asn
    }

    /// Allocate a fresh /16 from the simulated address plan.
    ///
    /// Blocks are carved sequentially from 11.0.0.0 upward, skipping the
    /// ranges this workspace reserves for well-known entities (8/8 for
    /// public resolvers, 74.125/16 for Google anycast). The plan never
    /// collides because only this allocator hands out space.
    fn alloc_prefix(&mut self) -> Ipv4Net {
        loop {
            let block = self.next_block;
            self.next_block += 1;
            // Map block index to a /16: start at 11.0.0.0/16.
            let hi = 11 + (block >> 8);
            let mid = block & 0xff;
            assert!(hi < 224, "simulated address space exhausted");
            // Skip the reserved Google anycast range.
            if hi == 74 && mid == 125 {
                continue;
            }
            let addr = Ipv4Addr::new(hi as u8, mid as u8, 0, 0);
            return Ipv4Net::new(addr, 16);
        }
    }

    /// Hand out the next unused host address inside `asn`'s prefixes.
    ///
    /// # Panics
    /// Panics if the ASN is unknown or its space is exhausted.
    pub fn alloc_ip(&mut self, asn: Asn) -> Ipv4Addr {
        let rec = self.ases.get_mut(&asn).expect("unknown ASN");
        let per_prefix = rec.prefixes[0].size();
        let idx = rec.next_host;
        rec.next_host += 1;
        let prefix_idx = (idx / per_prefix) as usize;
        assert!(
            prefix_idx < rec.prefixes.len(),
            "address space of {asn} exhausted"
        );
        rec.prefixes[prefix_idx].nth(idx % per_prefix)
    }

    /// Organization lookup.
    pub fn org(&self, id: OrgId) -> Option<&Organization> {
        self.orgs.get(&id)
    }

    /// AS record lookup.
    pub fn as_record(&self, asn: Asn) -> Option<&AsRecord> {
        self.ases.get(&asn)
    }

    /// All registered ASNs.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.ases.keys().copied()
    }

    /// All registered organizations.
    pub fn orgs(&self) -> impl Iterator<Item = &Organization> {
        self.orgs.values()
    }

    /// Look an organization up by exact name (names are unique in practice
    /// in this registry; returns the first match).
    pub fn org_by_name(&self, name: &str) -> Option<&Organization> {
        self.orgs.values().find(|o| o.name == name)
    }

    /// All ASNs operated by an organization.
    pub fn asns_of_org(&self, org: OrgId) -> impl Iterator<Item = Asn> + '_ {
        self.ases
            .values()
            .filter(move |r| r.org == org)
            .map(|r| r.asn)
    }

    /// Build (or rebuild) the RIB snapshot after registration is complete.
    pub fn snapshot_rib(&mut self) {
        let mut b = RibBuilder::new();
        for rec in self.ases.values() {
            for &net in &rec.prefixes {
                b.announce(net, rec.asn);
            }
        }
        self.rib = Some(b.build());
    }

    fn rib(&self) -> &RibSnapshot {
        self.rib
            .as_ref()
            .expect("call snapshot_rib() after registering ASes")
    }

    /// `ip → ASN` via longest-prefix match (the RouteViews step).
    pub fn ip_to_asn(&self, ip: Ipv4Addr) -> Option<Asn> {
        self.rib().origin(ip)
    }

    /// `ASN → organization` (the CAIDA as2org step).
    pub fn asn_to_org(&self, asn: Asn) -> Option<&Organization> {
        self.ases.get(&asn).and_then(|r| self.orgs.get(&r.org))
    }

    /// `ASN → country` (via the operating organization's registration).
    pub fn country_of_asn(&self, asn: Asn) -> Option<CountryCode> {
        self.asn_to_org(asn).map(|o| o.country)
    }

    /// Full chain: `ip → country`.
    pub fn country_of_ip(&self, ip: Ipv4Addr) -> Option<CountryCode> {
        self.ip_to_asn(ip).and_then(|a| self.country_of_asn(a))
    }

    /// Full chain: `ip → organization`.
    pub fn org_of_ip(&self, ip: Ipv4Addr) -> Option<&Organization> {
        self.ip_to_asn(ip).and_then(|a| self.asn_to_org(a))
    }

    /// Number of registered ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s)
    }

    #[test]
    fn full_resolution_chain() {
        let mut reg = InternetRegistry::new();
        let org = reg.register_org("TMnet", cc("MY"));
        let asn = reg.register_as(org, 1);
        let ip = reg.alloc_ip(asn);
        reg.snapshot_rib();
        assert_eq!(reg.ip_to_asn(ip), Some(asn));
        assert_eq!(reg.asn_to_org(asn).unwrap().name, "TMnet");
        assert_eq!(reg.country_of_ip(ip), Some(cc("MY")));
    }

    #[test]
    fn one_org_many_ases() {
        let mut reg = InternetRegistry::new();
        let org = reg.register_org("Verizon", cc("US"));
        let a1 = reg.register_as(org, 1);
        let a2 = reg.register_as(org, 1);
        assert_ne!(a1, a2);
        reg.snapshot_rib();
        assert_eq!(
            reg.asn_to_org(a1).unwrap().id,
            reg.asn_to_org(a2).unwrap().id
        );
    }

    #[test]
    fn allocated_ips_are_unique_and_inside_as() {
        let mut reg = InternetRegistry::new();
        let org = reg.register_org("X", cc("DE"));
        let asn = reg.register_as(org, 2);
        let mut seen = std::collections::HashSet::new();
        reg.snapshot_rib();
        for _ in 0..1000 {
            let ip = reg.alloc_ip(asn);
            assert!(seen.insert(ip), "duplicate ip {ip}");
            assert_eq!(reg.ip_to_asn(ip), Some(asn));
        }
    }

    #[test]
    fn explicit_asn_registration() {
        let mut reg = InternetRegistry::new();
        let org = reg.register_org("Deutsche Telekom AG", cc("DE"));
        let asn = reg.register_as_with_asn(Asn(3320), org, 1);
        assert_eq!(asn, Asn(3320));
        // Auto-assignment continues above the explicit number.
        let next = reg.register_as(org, 1);
        assert!(next.0 > 3320);
    }

    #[test]
    fn well_known_prefix_registration() {
        let mut reg = InternetRegistry::new();
        let google = reg.register_org("Google", cc("US"));
        let ganet: Ipv4Net = GOOGLE_ANYCAST_NET.parse().unwrap();
        let gasn = reg.register_as_with_prefix(google, ganet);
        reg.snapshot_rib();
        let anycast_ip = reg.alloc_ip(gasn);
        assert!(ganet.contains(anycast_ip));
        assert_eq!(reg.org_of_ip(anycast_ip).unwrap().name, "Google");
    }

    #[test]
    fn allocator_never_hands_out_google_anycast() {
        let mut reg = InternetRegistry::new();
        let org = reg.register_org("bulk", cc("US"));
        // Allocate enough /16s to pass the 74.x block region.
        let ganet: Ipv4Net = GOOGLE_ANYCAST_NET.parse().unwrap();
        for _ in 0..300 {
            let asn = reg.register_as(org, 64);
            let rec = reg.as_record(asn).unwrap();
            for p in &rec.prefixes {
                assert_ne!(*p, ganet, "allocator handed out the Google range");
            }
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_asn_rejected() {
        let mut reg = InternetRegistry::new();
        let org = reg.register_org("X", cc("US"));
        reg.register_as_with_asn(Asn(7), org, 1);
        reg.register_as_with_asn(Asn(7), org, 1);
    }
}
