//! The paper-full study at scale 1.0 — the run the allocation overhaul
//! exists to unlock — plus an unconditional smoke-scale variant so CI
//! exercises this binary on every pass.
//!
//! Two jobs per scale, at workers ∈ {1, 2, 8}:
//!
//! 1. **Proof of identity** — the rendered tables + data-quality annex
//!    must be byte-identical at every worker count (the digest is
//!    asserted here, not just noted), at full paper scale, not only the
//!    small scales the workspace tests cover.
//! 2. **Proof of feasibility** — wall-clock, the allocator's live-bytes
//!    high-water mark (`peak_bytes`, the closest deterministic proxy for
//!    peak RSS), and allocs/probe are archived in `BENCH_fullscale.json`
//!    so the scale-1.0 cost is pinned in the trajectory.
//!
//! The full run is opt-in behind `TFT_BENCH_FULLSCALE=1` (it is minutes,
//! not seconds); the smoke scale runs unconditionally. `scripts/check.sh`
//! documents both stages.

#[path = "alloc_stats/mod.rs"]
mod alloc_stats;

use substrate::bench::Harness;
use substrate::json::Json;
use tft_core::{
    render_annex, render_tables, run_study_with, ExecOptions, StudyConfig, StudyReport,
};

#[global_allocator]
static GLOBAL: alloc_stats::CountingAlloc = alloc_stats::CountingAlloc;

/// The bench clock. Wall-clock timing is this binary's purpose for the
/// scale-1.0 run (a calibrated multi-sample `Harness::bench` loop would
/// multiply a minutes-long study); simulated paths use `SimTime` only.
mod clock {
    use std::time::Instant;

    pub(super) fn now() -> Instant {
        // tft-lint: allow(no-wall-clock, reason = "bench timing is wall-clock by definition; single-shot runs are too long for the harness's calibrated sampling loop")
        Instant::now()
    }
}

/// Worker counts the identity/feasibility sweep covers.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// FNV-1a over the rendered report, so the JSON archives a comparable
/// 64-bit digest instead of megabytes of tables.
fn digest64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Probes issued across all four experiments in one study run.
fn probes_issued(report: &StudyReport) -> u64 {
    (report.dns_data.samples_issued
        + report.http_data.samples_issued
        + report.https_data.samples_issued
        + report.monitor_data.samples_issued) as u64
}

/// Run the study at `scale` across [`WORKER_COUNTS`], assert the rendered
/// output is byte-identical, and note wall-clock / events / peak bytes
/// under the `label_` prefix.
fn sweep(h: &mut Harness, label: &str, scale: f64, seed: u64) {
    let cfg = StudyConfig::scaled(scale);
    let pristine = worldgen::build(&worldgen::paper_spec(scale, seed)).world;
    let mut baseline: Option<(u64, usize)> = None;
    for workers in WORKER_COUNTS {
        let mut world = pristine.clone();
        alloc_stats::reset();
        alloc_stats::counting_on();
        let t0 = clock::now();
        let report = run_study_with(&mut world, &cfg, &ExecOptions::with_workers(workers));
        let wall_ms = t0.elapsed().as_millis() as u64;
        alloc_stats::counting_off();
        let allocs = alloc_stats::total_events();
        let peak = alloc_stats::peak_bytes();
        let rendered = format!(
            "{}\n{}",
            render_tables(&report),
            render_annex(&report, &cfg)
        );
        let digest = digest64(&rendered);
        match baseline {
            None => baseline = Some((digest, rendered.len())),
            Some((d, len)) => {
                assert_eq!(
                    (digest, rendered.len()),
                    (d, len),
                    "[{label}] rendered report diverged at workers={workers}"
                );
            }
        }
        h.note(
            &format!("{label}_wall_ms_workers{workers}"),
            Json::uint(wall_ms),
        );
        h.note(
            &format!("{label}_alloc_events_workers{workers}"),
            Json::uint(allocs),
        );
        h.note(
            &format!("{label}_peak_bytes_workers{workers}"),
            Json::uint(peak),
        );
        if workers == 1 {
            let probes = probes_issued(&report);
            h.note(&format!("{label}_probes_issued"), Json::uint(probes));
            h.note(&format!("{label}_peak_bytes"), Json::uint(peak));
            if probes > 0 {
                let per_probe = allocs as f64 / probes as f64;
                h.note(&format!("{label}_allocs_per_probe"), Json::float(per_probe));
                eprintln!(
                    "[fullscale:{label}] scale {scale}: {allocs} events / {probes} probes = {per_probe:.1} allocs/probe, peak {peak} bytes, {wall_ms} ms"
                );
            }
        }
    }
    let (digest, _) = baseline.expect("sweep ran at least one worker count");
    h.note(
        &format!("{label}_report_digest"),
        Json::str(format!("{digest:016x}")),
    );
    eprintln!(
        "[fullscale:{label}] report digest {digest:016x} identical at workers {WORKER_COUNTS:?}"
    );
}

fn main() {
    let mut h = Harness::new("fullscale");
    alloc_stats::install_pool_observer();
    // Smoke scale: unconditional, so every CI pass proves this binary and
    // the identity assertion still work.
    sweep(&mut h, "smoke", 0.02, 0xF011);
    let full = std::env::var("TFT_BENCH_FULLSCALE")
        .map(|v| v == "1")
        .unwrap_or(false);
    h.note("fullscale_ran", Json::Bool(full));
    if full {
        // The paper-full run: scale 1.0, same seed family as the repro
        // binary's flagship configuration.
        sweep(&mut h, "full", 1.0, 0xBE7C);
    } else {
        eprintln!(
            "[fullscale] TFT_BENCH_FULLSCALE!=1: smoke scale only (set it for the scale-1.0 run)"
        );
    }
    h.finish();
}
