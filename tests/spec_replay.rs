//! Scenario files round-trip: a spec exported to JSON and replayed must
//! reproduce the original run byte-for-byte.

use tft::prelude::*;

#[test]
fn exported_spec_replays_identically() {
    let spec = paper_spec(0.003, 0x5EC);
    let json = tft::worldgen::to_json(&spec).expect("serializes");
    let replayed_spec = tft::worldgen::from_json(&json).expect("parses and validates");

    let run_tables = |spec: &tft::worldgen::WorldSpec| -> String {
        let mut built = build(spec);
        let cfg = StudyConfig::scaled(spec.scale);
        let report = run_study(&mut built.world, &cfg);
        render_tables(&report)
    };
    assert_eq!(
        run_tables(&spec),
        run_tables(&replayed_spec),
        "replayed spec must reproduce the exact tables"
    );
}

#[test]
fn spec_files_survive_disk() {
    let dir = std::env::temp_dir().join("tft-replay-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("paper-0003.json");
    let spec = paper_spec(0.003, 7);
    tft::worldgen::save(&spec, &path).unwrap();
    let loaded = tft::worldgen::load(&path).unwrap();
    assert_eq!(loaded.seed, spec.seed);
    assert_eq!(loaded.countries.len(), spec.countries.len());
    let a = build(&spec);
    let b = build(&loaded);
    assert_eq!(a.truth.dns_hijacked.len(), b.truth.dns_hijacked.len());
    std::fs::remove_file(&path).ok();
}
