//! # inetdb — the Internet registry substrate
//!
//! In-simulation equivalents of the external datasets the paper depends on
//! (§3.1):
//!
//! - **RouteViews** → [`routeviews::RibSnapshot`]: prefix → origin-AS
//!   longest-prefix matching over a binary [`trie::PrefixTrie`];
//! - **CAIDA AS-organizations** → [`registry::InternetRegistry`]: AS → org,
//!   org → country, plus the simulated world's address-space allocator;
//! - **Alexa Top Sites / university list** → [`rankings::Rankings`]: the
//!   HTTPS experiment's *popular* and *international* site classes.
//!
//! The analysis layer in `tft-core` performs the same three-level grouping
//! the paper does — AS level, organization (ISP) level, country level —
//! through this crate's query API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rankings;
pub mod registry;
pub mod routeviews;
pub mod trie;
pub mod types;

pub use rankings::Rankings;
pub use registry::{InternetRegistry, Organization, GOOGLE_ANYCAST_NET, GOOGLE_PUBLIC_DNS};
pub use routeviews::{RibBuilder, RibSnapshot};
pub use trie::PrefixTrie;
pub use types::{Asn, CountryCode, Ipv4Net, OrgId};
