//! # tft-core — the measurement study
//!
//! The paper's primary contribution, implemented over the simulated proxy
//! ecosystem: detect end-to-end connectivity violations in DNS, HTTP, and
//! HTTPS from >100k vantage points **without installing anything on them**,
//! using only an HTTP/S proxy service plus the logs of servers the study
//! controls.
//!
//! - [`crawl`]: country-proportional exit-node sampling with saturation
//!   detection (§3.2);
//! - [`dns_exp`]: the d₁/d₂ NXDOMAIN methodology (§4.1);
//! - [`http_exp`]: four-object content comparison with per-AS sampling
//!   (§5.1);
//! - [`https_exp`]: two-phase CONNECT certificate collection (§6.1);
//! - [`monitor_exp`]: unique-domain refetch detection (§7.1);
//! - [`analysis`]: country/ISP/public-resolver attribution, injection
//!   signatures, transcoding ratios, issuer grouping, entity
//!   fingerprinting;
//! - [`quality`]: probe-outcome taxonomy and the quarantine ledger —
//!   payloads failing integrity checks are excluded from violation
//!   analysis instead of miscounted as tampering;
//! - [`report`]: every table and figure, measured vs paper, plus the
//!   data-quality annex;
//! - [`scoring`]: precision/recall of the whole pipeline against the
//!   world's planted ground truth;
//! - [`ethics`]: the §3.4 guardrails (1 MB per node, domain allowlist),
//!   enforced mechanically.
//!
//! The code here sees only [`proxynet::World`]'s client API and the study's
//! own server logs — the same visibility the paper's authors had.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod checkpoint;
pub mod config;
pub mod crawl;
pub mod dns_exp;
pub mod ethics;
pub mod exec;
pub mod http_exp;
pub mod https_exp;
pub mod longitudinal;
pub mod monitor_exp;
pub mod obs;
pub mod quality;
pub mod report;
pub mod scoring;
pub mod smtp_exp;
pub mod study;

pub use checkpoint::{CheckpointError, StudyCheckpoint, CHECKPOINT_VERSION};
pub use config::StudyConfig;
pub use crawl::Sampler;
pub use exec::ExecOptions;
pub use quality::{DataQuality, ProbeOutcome, QualityCounts};
pub use report::annex::render_annex;
pub use scoring::{score_report, ScoreCard};
pub use study::{render_tables, run_study, run_study_with, StudyDriver, StudyReport, StudyStage};
