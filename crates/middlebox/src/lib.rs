//! # middlebox — models of every end-to-end violator the paper observes
//!
//! These are the *subjects* of the measurement study. Each model is
//! parameterized by the behaviours the paper documents, so the analysis
//! pipeline in `tft-core` can be scored on whether it rediscovers them from
//! raw observations:
//!
//! - [`dns`]: NXDOMAIN hijackers (§4) at four vectors — ISP resolvers,
//!   public resolvers, transparent proxies, end-host software — with
//!   landing-page content that carries the attribution signal;
//! - [`html`]: JavaScript injectors and filtering appliances (§5, Table 6);
//! - [`image`]: transparent image transcoders of mobile carriers (§5,
//!   Table 7), single- and multi-ratio;
//! - [`tls`]: TLS interceptors (§6, Table 8) — anti-virus, content filters,
//!   malware — with shared-key, invalid-cert and selectivity behaviours;
//! - [`monitor`]: content monitors (§7, Table 9 / Figure 5) with
//!   per-entity refetch delay distributions and source-address patterns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocker;
pub mod dns;
pub mod html;
pub mod image;
pub mod monitor;
pub mod smtp;
pub mod tls;

pub use blocker::ObjectBlocker;
pub use dns::{extract_urls, url_domain, HijackVector, JsFamily, NxdomainHijacker};
pub use html::{HtmlInjector, InjectionSignature};
pub use image::ImageTranscoder;
pub use monitor::{MonitorEntity, PlannedRefetch, RefetchModel, RefetchOffset, SourcePattern};
pub use smtp::SmtpInterceptor;
pub use tls::{InvalidCertPolicy, Selectivity, TlsInterceptor};
