//! Study orchestration: run all four experiments on a world and analyze
//! the results.

use crate::analysis;
use crate::config::StudyConfig;
use crate::obs::{DnsDataset, HttpDataset, HttpsDataset, MonitorDataset};
use crate::{dns_exp, http_exp, https_exp, monitor_exp};
use inetdb::{Asn, CountryCode};
use netsim::SimTime;
use proxynet::World;
use std::collections::BTreeSet;

/// Everything one full study run produces.
pub struct StudyReport {
    /// DNS experiment raw data.
    pub dns_data: DnsDataset,
    /// DNS analysis.
    pub dns: analysis::dns::DnsAnalysis,
    /// HTTP experiment raw data.
    pub http_data: HttpDataset,
    /// HTTP analysis.
    pub http: analysis::http::HttpAnalysis,
    /// HTTPS experiment raw data.
    pub https_data: HttpsDataset,
    /// HTTPS analysis.
    pub https: analysis::https::HttpsAnalysis,
    /// Monitoring experiment raw data.
    pub monitor_data: MonitorDataset,
    /// Monitoring analysis.
    pub monitor: analysis::monitor::MonitorAnalysis,
    /// Virtual time the study started.
    pub started: SimTime,
    /// Virtual time the study finished.
    pub finished: SimTime,
    /// Unique-node / AS / country tallies across experiments, computed
    /// against the public registry at collection time.
    pub coverage: Coverage,
}

/// Cross-experiment coverage (the Table 1 row).
#[derive(Debug, Default)]
pub struct Coverage {
    /// Unique zIDs across all experiments.
    pub nodes: usize,
    /// Unique exit ASes.
    pub ases: usize,
    /// Unique exit countries.
    pub countries: usize,
}

impl StudyReport {
    /// Unique nodes across experiments.
    pub fn unique_nodes(&self) -> usize {
        self.coverage.nodes
    }

    /// Unique ASes across experiments.
    pub fn unique_ases(&self) -> usize {
        self.coverage.ases
    }

    /// Unique countries across experiments.
    pub fn unique_countries(&self) -> usize {
        self.coverage.countries
    }
}

/// Run the full study: DNS, monitoring, HTTP, HTTPS (the paper overlapped
/// DNS with monitoring and ran HTTP/HTTPS in adjacent windows), then all
/// analyses.
///
/// ```
/// let mut built = worldgen::build(&worldgen::smoke_spec(7));
/// let cfg = tft_core::StudyConfig {
///     min_nodes_per_country: 5,
///     min_nodes_per_dns_server: 3,
///     ..tft_core::StudyConfig::default()
/// };
/// let report = tft_core::run_study(&mut built.world, &cfg);
/// assert!(report.dns.nodes > 100);
/// assert!(report.dns.hijacked > 0, "the smoke world plants one hijacker");
/// ```
pub fn run_study(world: &mut World, cfg: &StudyConfig) -> StudyReport {
    let started = world.now();

    let dns_data = dns_exp::run(world, cfg);
    let http_data = http_exp::run(world, cfg);
    let https_data = https_exp::run(world, cfg);
    let monitor_data = monitor_exp::run(world, cfg);

    let dns = analysis::dns::analyze(&dns_data, world, cfg);
    let http = analysis::http::analyze(&http_data, world, cfg);
    let https = analysis::https::analyze(&https_data, world, cfg);
    let monitor = analysis::monitor::analyze(&monitor_data, world, cfg);

    let mut zids: BTreeSet<&str> = BTreeSet::new();
    let mut ases: BTreeSet<Asn> = BTreeSet::new();
    let mut countries: BTreeSet<CountryCode> = BTreeSet::new();
    let add_ip = |ip: std::net::Ipv4Addr,
                  ases: &mut BTreeSet<Asn>,
                  countries: &mut BTreeSet<CountryCode>| {
        if let Some(a) = world.registry.ip_to_asn(ip) {
            ases.insert(a);
        }
        if let Some(c) = world.registry.country_of_ip(ip) {
            countries.insert(c);
        }
    };
    for o in &dns_data.observations {
        zids.insert(&o.zid.0);
        add_ip(o.node_ip, &mut ases, &mut countries);
    }
    for o in &http_data.observations {
        zids.insert(&o.zid.0);
        add_ip(o.node_ip, &mut ases, &mut countries);
    }
    for o in &https_data.observations {
        zids.insert(&o.zid.0);
        add_ip(o.exit_ip, &mut ases, &mut countries);
    }
    for o in &monitor_data.observations {
        zids.insert(&o.zid.0);
        add_ip(o.reported_exit_ip, &mut ases, &mut countries);
    }
    let coverage = Coverage {
        nodes: zids.len(),
        ases: ases.len(),
        countries: countries.len(),
    };

    StudyReport {
        dns_data,
        dns,
        http_data,
        http,
        https_data,
        https,
        monitor_data,
        monitor,
        started,
        finished: world.now(),
        coverage,
    }
}

/// Render every table into one report string.
pub fn render_tables(report: &StudyReport) -> String {
    use crate::report::tables;
    let mut s = String::new();
    s.push_str(&tables::table1(report));
    s.push_str(&tables::table2(report));
    s.push_str(&tables::table3(&report.dns));
    s.push_str(&tables::table4(&report.dns));
    s.push_str(&tables::table5(&report.dns));
    s.push_str(&tables::table6(&report.http));
    s.push_str(&tables::table7(&report.http));
    s.push_str(&tables::table8(&report.https));
    s.push_str(&tables::table9(&report.monitor));
    s
}
