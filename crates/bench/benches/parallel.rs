//! Scaling bench for the parallel study executor (`tft_core::exec`): the
//! same scale-0.1 campaign at workers ∈ {1, 2, 4, 8}.
//!
//! Output is byte-identical at every worker count (asserted by the
//! workspace determinism tests); this bench measures the only thing the
//! knob is allowed to change — wall-clock. `scripts/check.sh` runs it in
//! quick mode and archives `BENCH_parallel.json` so the speedup is tracked
//! across PRs.
//!
//! The binary also installs a counting `#[global_allocator]` and reports
//! **allocations per probe** for a single-worker run in the JSON `notes`.
//! That number is the ROADMAP allocation-overhaul metric: `tft-lint`'s
//! `hot-path-alloc` pass pushes it down (lazy trace formatting, reused
//! label scratch buffers), and this note pins each remediation's effect in
//! the archived trajectory.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use substrate::bench::Harness;
use substrate::json::Json;
use tft_core::{run_study_with, ExecOptions, StudyConfig, StudyReport};

/// `System` with an allocation-event counter. Counts `alloc` and growth
/// `realloc` calls — the events a hot-path `format!` or `.clone()` emits —
/// not bytes, because per-probe churn is what the lint pass targets.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Probes issued across all four experiments in one study run.
fn probes_issued(report: &StudyReport) -> u64 {
    (report.dns_data.samples_issued
        + report.http_data.samples_issued
        + report.https_data.samples_issued
        + report.monitor_data.samples_issued) as u64
}

fn main() {
    let mut h = Harness::new("parallel");
    let scale = 0.1;
    let cfg = StudyConfig::scaled(scale);
    // One pristine world, cloned per run: world construction is cheap
    // relative to the study, and every run must start from identical state.
    let pristine = worldgen::build(&worldgen::paper_spec(scale, 0xBE7C)).world;
    // One discarded run so the first measured worker count does not absorb
    // process-lifetime warmup (page faults, allocator growth). Quick mode
    // skips the harness's own warmup, so this keeps the comparison fair.
    {
        let mut world = pristine.clone();
        black_box(run_study_with(
            &mut world,
            &cfg,
            &ExecOptions::with_workers(1),
        ));
    }
    // Allocation accounting: one dedicated single-worker run between the
    // warmup and the timed loop, so the counter sees exactly one study
    // (clone of the pristine world included — that cost recurs per run).
    {
        let mut world = pristine.clone();
        ALLOC_EVENTS.store(0, Ordering::Relaxed);
        let report = run_study_with(&mut world, &cfg, &ExecOptions::with_workers(1));
        let allocs = ALLOC_EVENTS.load(Ordering::Relaxed);
        let probes = probes_issued(&report);
        drop(report);
        h.note("alloc_events_single_worker_run", Json::uint(allocs));
        h.note("probes_issued", Json::uint(probes));
        if probes > 0 {
            let per_probe = allocs as f64 / probes as f64;
            h.note("allocs_per_probe", Json::float(per_probe));
            eprintln!("[parallel] {allocs} allocation events / {probes} probes = {per_probe:.1} allocs/probe");
        }
    }
    for workers in [1usize, 2, 4, 8] {
        h.bench(&format!("run_study/scale{scale}/workers{workers}"), || {
            let mut world = pristine.clone();
            black_box(run_study_with(
                &mut world,
                &cfg,
                &ExecOptions::with_workers(workers),
            ))
        });
    }
    h.finish();
}
