//! Property-based tests: wire-format roundtrips and decoder robustness.

use dnswire::{decode, encode, DnsName, Message, QType, RData, Rcode, Record};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14})").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| DnsName::parse(&labels.join(".")).expect("generated labels are valid"))
}

fn arb_qtype() -> impl Strategy<Value = QType> {
    prop_oneof![
        Just(QType::A),
        Just(QType::Ns),
        Just(QType::Cname),
        Just(QType::Txt),
        Just(QType::Aaaa),
        Just(QType::Soa),
    ]
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<u32>().prop_map(|v| RData::A(Ipv4Addr::from(v))),
        any::<u128>().prop_map(|v| RData::Aaaa(Ipv6Addr::from(v))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        proptest::collection::vec(
            proptest::string::string_regex("[ -~]{0,40}").expect("regex"),
            0..3
        )
        .prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<u32>(), any::<u32>()).prop_map(
            |(mname, rname, serial, t)| RData::Soa {
                mname,
                rname,
                serial,
                refresh: t,
                retry: t / 2,
                expire: t.saturating_mul(2),
                minimum: 300,
            }
        ),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| Record {
        name,
        ttl,
        rdata,
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        arb_qtype(),
        proptest::collection::vec(arb_record(), 0..6),
        proptest::collection::vec(arb_record(), 0..3),
        prop_oneof![
            Just(Rcode::NoError),
            Just(Rcode::NxDomain),
            Just(Rcode::ServFail)
        ],
    )
        .prop_map(|(id, qname, qtype, answers, authority, rcode)| {
            let q = Message::query(id, qname, qtype);
            let mut m = Message::respond(&q, rcode, answers);
            m.authority = authority;
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on well-formed messages, including
    /// through the name-compression path.
    #[test]
    fn roundtrip(msg in arb_message()) {
        let bytes = encode(&msg).expect("encodable");
        let back = decode(&bytes).expect("decodable");
        prop_assert_eq!(back, msg);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    /// The decoder never panics on corrupted valid messages (single-octet
    /// mutations, the fault-injector model).
    #[test]
    fn decoder_total_on_corruption(msg in arb_message(), idx in any::<usize>(), flip in 1u8..) {
        let mut bytes = encode(&msg).expect("encodable");
        if !bytes.is_empty() {
            let i = idx % bytes.len();
            bytes[i] ^= flip;
            let _ = decode(&bytes);
        }
    }

    /// Truncation at every length errors or yields a message, never panics.
    #[test]
    fn decoder_total_on_truncation(msg in arb_message(), cut in 0.0f64..1.0) {
        let bytes = encode(&msg).expect("encodable");
        let cut = (bytes.len() as f64 * cut) as usize;
        let _ = decode(&bytes[..cut]);
    }

    /// Name parse/display roundtrip.
    #[test]
    fn name_roundtrip(name in arb_name()) {
        let s = name.to_string();
        prop_assert_eq!(DnsName::parse(&s).unwrap(), name);
    }
}
