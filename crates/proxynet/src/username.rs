//! Luminati username parameters.
//!
//! Luminati clients steer routing by appending parameters to their proxy
//! username: `-country-XX` selects the exit country, `-session-N` pins an
//! exit node for 60 seconds, and `-dns-remote` moves DNS resolution from
//! the super proxy to the exit node (§2.3).

use inetdb::CountryCode;
use std::fmt;

/// Parsed routing options carried in the proxy username.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UsernameOptions {
    /// Base customer name (before the first option).
    pub customer: String,
    /// Requested exit-node country.
    pub country: Option<CountryCode>,
    /// Session pin: requests with the same number within 60 s reuse the
    /// same exit node.
    pub session: Option<u64>,
    /// Resolve DNS at the exit node instead of the super proxy.
    pub dns_remote: bool,
}

/// Errors parsing a username.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UsernameError {
    /// Empty customer segment.
    EmptyCustomer,
    /// `-country-` not followed by a two-letter code.
    BadCountry(String),
    /// `-session-` not followed by a number.
    BadSession(String),
    /// Unrecognized option segment.
    UnknownOption(String),
}

impl fmt::Display for UsernameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsernameError::EmptyCustomer => write!(f, "empty customer name"),
            UsernameError::BadCountry(s) => write!(f, "bad country code: {s:?}"),
            UsernameError::BadSession(s) => write!(f, "bad session id: {s:?}"),
            UsernameError::UnknownOption(s) => write!(f, "unknown username option: {s:?}"),
        }
    }
}

impl std::error::Error for UsernameError {}

impl UsernameOptions {
    /// Options for a customer with no routing parameters.
    pub fn new(customer: &str) -> Self {
        UsernameOptions {
            customer: customer.to_string(),
            ..Default::default()
        }
    }

    /// Set the exit country.
    pub fn country(mut self, cc: CountryCode) -> Self {
        self.country = Some(cc);
        self
    }

    /// Pin a session.
    pub fn session(mut self, id: u64) -> Self {
        self.session = Some(id);
        self
    }

    /// Request remote (exit-node) DNS resolution.
    pub fn dns_remote(mut self) -> Self {
        self.dns_remote = true;
        self
    }

    /// Render as the wire username.
    pub fn to_username(&self) -> String {
        let mut s = self.customer.clone();
        if let Some(cc) = self.country {
            s.push_str(&format!("-country-{}", cc.as_str().to_ascii_lowercase()));
        }
        if let Some(id) = self.session {
            s.push_str(&format!("-session-{id}"));
        }
        if self.dns_remote {
            s.push_str("-dns-remote");
        }
        s
    }

    /// Parse a wire username.
    pub fn parse(username: &str) -> Result<Self, UsernameError> {
        let mut parts = username.split('-');
        let customer = parts.next().unwrap_or_default().to_string();
        if customer.is_empty() {
            return Err(UsernameError::EmptyCustomer);
        }
        let mut opts = UsernameOptions::new(&customer);
        let rest: Vec<&str> = parts.collect();
        let mut i = 0;
        while i < rest.len() {
            match rest[i] {
                "country" => {
                    let code = rest.get(i + 1).copied().unwrap_or_default();
                    opts.country = Some(
                        code.parse()
                            .map_err(|_| UsernameError::BadCountry(code.to_string()))?,
                    );
                    i += 2;
                }
                "session" => {
                    let id = rest.get(i + 1).copied().unwrap_or_default();
                    opts.session = Some(
                        id.parse()
                            .map_err(|_| UsernameError::BadSession(id.to_string()))?,
                    );
                    i += 2;
                }
                "dns" if rest.get(i + 1) == Some(&"remote") => {
                    opts.dns_remote = true;
                    i += 2;
                }
                other => return Err(UsernameError::UnknownOption(other.to_string())),
            }
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s)
    }

    #[test]
    fn roundtrip_all_options() {
        let opts = UsernameOptions::new("lum1")
            .country(cc("MY"))
            .session(429)
            .dns_remote();
        let u = opts.to_username();
        assert_eq!(u, "lum1-country-my-session-429-dns-remote");
        assert_eq!(UsernameOptions::parse(&u).unwrap(), opts);
    }

    #[test]
    fn roundtrip_plain() {
        let opts = UsernameOptions::new("cust");
        assert_eq!(UsernameOptions::parse("cust").unwrap(), opts);
    }

    #[test]
    fn roundtrip_each_single_option() {
        for opts in [
            UsernameOptions::new("c").country(cc("US")),
            UsernameOptions::new("c").session(1),
            UsernameOptions::new("c").dns_remote(),
        ] {
            assert_eq!(UsernameOptions::parse(&opts.to_username()).unwrap(), opts);
        }
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            UsernameOptions::parse(""),
            Err(UsernameError::EmptyCustomer)
        );
        assert!(matches!(
            UsernameOptions::parse("c-country-zzz"),
            Err(UsernameError::BadCountry(_))
        ));
        assert!(matches!(
            UsernameOptions::parse("c-session-abc"),
            Err(UsernameError::BadSession(_))
        ));
        assert!(matches!(
            UsernameOptions::parse("c-turbo"),
            Err(UsernameError::UnknownOption(_))
        ));
    }
}
