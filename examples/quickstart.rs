//! Quickstart: build a small calibrated world, run the DNS NXDOMAIN
//! experiment, and print the country hijack table.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tft::prelude::*;

fn main() {
    // A ~7k-node world: enough to see the headline result in seconds.
    // (Below scale ~0.005 the builder's keep-every-group-alive clamping
    // inflates small hijacking ISPs and distorts the rates.)
    let scale = 0.01;
    println!("building calibrated world (scale {scale})…");
    let mut built = build(&paper_spec(scale, 42));
    let cfg = StudyConfig::scaled(scale);

    println!("running the d1/d2 DNS experiment…");
    let data = tft::tft_core::dns_exp::run(&mut built.world, &cfg);
    let analysis = tft::tft_core::analysis::dns::analyze(&data, &built.world, &cfg);

    println!(
        "\nmeasured {} exit nodes via {} resolvers in {} countries",
        analysis.nodes, analysis.resolvers, analysis.countries
    );
    println!(
        "NXDOMAIN hijacked: {} nodes ({:.1}%; the paper found 4.8%)\n",
        analysis.hijacked,
        100.0 * analysis.hijacked as f64 / analysis.nodes.max(1) as f64
    );
    println!("top countries by hijack ratio:");
    for (i, row) in analysis.by_country.iter().take(8).enumerate() {
        println!(
            "  {:>2}. {}  {:>5.1}%  ({}/{} nodes)",
            i + 1,
            row.country,
            row.ratio() * 100.0,
            row.hijacked,
            row.total
        );
    }
    let (isp, public, other) = analysis.attribution.shares();
    println!(
        "\nattribution: ISP resolvers {:.0}%, public resolvers {:.0}%, path/end-host {:.0}%",
        isp * 100.0,
        public * 100.0,
        other * 100.0
    );
    println!("(paper: 89.6% / 7.7% / 2.7%)");
}
