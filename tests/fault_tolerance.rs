//! The measurement must survive an unreliable proxy network: node churn
//! and packet loss exercise the super proxy's retry machinery (the debug
//! headers are what keep the methodology sound under churn).

use tft::netsim::FaultInjector;
use tft::prelude::*;
use tft::proxynet::AttemptOutcome;
use tft::worldgen::spec::*;

fn lossy_spec() -> WorldSpec {
    WorldSpec {
        seed: 7,
        scale: 1.0,
        probe_apex: "lab.example".into(),
        countries: vec![CountrySpec {
            code: "XA".into(),
            has_rankings: true,
            isps: vec![IspSpec {
                flakiness: 0.10,
                ..IspSpec::clean("Flaky ISP", 500)
            }],
        }],
        public_resolvers: PublicResolverSpec {
            clean_servers: 5,
            services: vec![],
            hijacking_service_weight: 0.0,
        },
        endhost: EndhostSpec::default(),
        monitors: vec![],
        sites: SiteSpec::default(),
        campaign: Vec::new(),
    }
}

#[test]
fn study_completes_under_heavy_loss() {
    let mut built = build(&lossy_spec());
    // smoltcp's suggested starting point: 15% drop chance on the link.
    built.world.set_fault_injector(FaultInjector::lossy(0.15));
    let cfg = StudyConfig {
        min_nodes_per_country: 5,
        min_nodes_per_dns_server: 3,
        ..StudyConfig::default()
    };
    let data = tft::tft_core::dns_exp::run(&mut built.world, &cfg);
    assert!(
        data.observations.len() > 300,
        "only {} observations under loss",
        data.observations.len()
    );
    // Nothing should be (falsely) hijacked in a clean world.
    let hijacked = data
        .observations
        .iter()
        .filter(|o| matches!(o.outcome, tft::tft_core::obs::DnsOutcome::Hijacked { .. }))
        .count();
    assert_eq!(hijacked, 0, "loss must not fabricate hijacks");
}

#[test]
fn retries_show_up_in_debug_headers() {
    let mut built = build(&lossy_spec());
    built.world.set_fault_injector(FaultInjector::lossy(0.35));
    let apex = built.world.auth_apex().clone();
    let host = apex.child("retry-probe").expect("valid").to_string();
    let web_ip = built.world.web_ip();
    built
        .world
        .auth_server_mut()
        .zone_mut()
        .add_a(apex.child("retry-probe").expect("valid"), web_ip);
    built.world.web_server_mut().put(
        &host,
        "/",
        tft::httpwire::Response::ok("text/html", b"ok".to_vec()),
    );

    let mut saw_retry = false;
    let mut successes = 0;
    for session in 0..200 {
        let opts = UsernameOptions::new("fault-test").session(session);
        match built.world.proxy_get(&opts, &Uri::http(&host, "/")) {
            Ok(resp) => {
                successes += 1;
                if resp.debug.attempts.len() > 1 {
                    saw_retry = true;
                    // Every non-final attempt failed; the final succeeded.
                    for a in &resp.debug.attempts[..resp.debug.attempts.len() - 1] {
                        assert_ne!(a.outcome, AttemptOutcome::Success);
                    }
                    assert_eq!(
                        resp.debug.attempts.last().unwrap().outcome,
                        AttemptOutcome::Success
                    );
                    // The debug header round-trips.
                    let header = resp.headers.get("X-Hola-Timeline-Debug").unwrap();
                    assert_eq!(
                        tft::proxynet::TimelineDebug::parse(header).unwrap(),
                        resp.debug
                    );
                }
            }
            Err(ProxyError::AllRetriesFailed(debug)) => {
                assert_eq!(debug.attempts.len(), tft::proxynet::MAX_ATTEMPTS);
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(successes > 150, "retries should save most requests");
    assert!(saw_retry, "with 35% loss some requests must retry");
}

#[test]
fn offline_population_shrinks_but_does_not_break_sampling() {
    let mut built = build(&lossy_spec());
    // Take half the world offline.
    let ids: Vec<_> = built.world.node_ids().collect();
    for id in ids.iter().step_by(2) {
        built.world.node_mut(*id).online = false;
    }
    let cfg = StudyConfig {
        min_nodes_per_country: 5,
        ..StudyConfig::default()
    };
    let data = tft::tft_core::dns_exp::run(&mut built.world, &cfg);
    let unique: std::collections::HashSet<_> = data.observations.iter().map(|o| o.zid).collect();
    assert!(
        unique.len() <= ids.len() / 2 + 1,
        "measured {} nodes but only {} are online",
        unique.len(),
        ids.len() / 2
    );
    assert!(unique.len() > 150, "most online nodes still measurable");
}
