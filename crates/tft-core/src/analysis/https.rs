//! Certificate-replacement analysis (§6.2): which nodes saw replaced
//! chains, who issued the replacements, key-sharing behaviour, and the
//! invalid-certificate masking hazard.

use crate::config::StudyConfig;
use crate::obs::{HttpsDataset, SiteClass};
use certs::{exact_match, verify_chain, KeyId};
use inetdb::{Asn, CountryCode};
use proxynet::World;
use std::collections::{BTreeMap, BTreeSet};

/// One issuer row (Table 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssuerRow {
    /// Issuer common name on replaced certificates ("Empty" when blank).
    pub issuer: String,
    /// Nodes presenting it.
    pub nodes: usize,
    /// Nodes where every spoofed certificate carried one subject key.
    pub shared_key_nodes: usize,
    /// Nodes where an originally-invalid site came back with this same
    /// (host-trusted) issuer — the §6.2 masking hazard.
    pub masks_invalid_nodes: usize,
}

/// Full HTTPS analysis output.
#[derive(Debug, Default)]
pub struct HttpsAnalysis {
    /// Nodes measured.
    pub nodes: usize,
    /// Distinct node ASes.
    pub ases: usize,
    /// Distinct node countries.
    pub countries: usize,
    /// Nodes that saw at least one replaced certificate.
    pub replaced_nodes: usize,
    /// Nodes where some sites were replaced and others untouched
    /// (selective interception).
    pub selective_nodes: usize,
    /// Distinct issuer common names on replaced certificates.
    pub unique_issuers: usize,
    /// Issuer rows, most nodes first (Table 8).
    pub issuers: Vec<IssuerRow>,
    /// Share of ASes where more than 10% of measured nodes saw
    /// replacement (low ⇒ software, not networks, §6.2).
    pub ases_over_10pct: f64,
}

/// Run the analysis.
pub fn analyze(data: &HttpsDataset, world: &World, _cfg: &StudyConfig) -> HttpsAnalysis {
    let reg = &world.registry;
    let now = world.now();
    let mut out = HttpsAnalysis {
        nodes: data.observations.len(),
        ..Default::default()
    };
    let mut node_ases: BTreeSet<Asn> = BTreeSet::new();
    let mut node_countries: BTreeSet<CountryCode> = BTreeSet::new();
    let mut as_counts: BTreeMap<Asn, (usize, usize)> = BTreeMap::new();

    struct IssuerAgg {
        nodes: usize,
        shared_key_nodes: usize,
        masks_invalid_nodes: usize,
    }
    let mut issuers: BTreeMap<String, IssuerAgg> = BTreeMap::new();

    for obs in &data.observations {
        let asn = reg.ip_to_asn(obs.exit_ip).unwrap_or(Asn(0));
        node_ases.insert(asn);
        node_countries.insert(reg.country_of_ip(obs.exit_ip).unwrap_or(obs.country));
        let as_entry = as_counts.entry(asn).or_insert((0, 0));
        as_entry.1 += 1;

        // A probe is "replaced" when its class check fails: chain
        // validation for the public classes (the original chains are valid
        // by construction of the site population), exact identity for the
        // study's own invalid sites.
        let mut replaced_probes = Vec::new();
        let mut untouched = 0usize;
        for p in &obs.probes {
            let host = world.site_symbols.resolve(p.host);
            let replaced = match p.class {
                SiteClass::Popular | SiteClass::International => {
                    verify_chain(&p.chain, host, now, &world.root_store).is_err()
                }
                SiteClass::Invalid => {
                    let expected = world
                        .expected_chain(host)
                        .and_then(|c| c.first())
                        .expect("own site");
                    !exact_match(&p.chain, expected)
                }
            };
            if replaced {
                replaced_probes.push(p);
            } else {
                untouched += 1;
            }
        }
        if replaced_probes.is_empty() {
            continue;
        }
        out.replaced_nodes += 1;
        as_entry.0 += 1;
        if untouched > 0 {
            out.selective_nodes += 1;
        }

        // Issuer attribution: group by the leaf issuer CN.
        let mut node_issuers: BTreeSet<String> = BTreeSet::new();
        let mut keys_by_issuer: BTreeMap<String, BTreeSet<KeyId>> = BTreeMap::new();
        let mut invalid_replaced_issuers: BTreeSet<String> = BTreeSet::new();
        for p in &replaced_probes {
            let Some(leaf) = p.chain.first() else {
                continue;
            };
            let name = if leaf.issuer.common_name.is_empty() {
                "Empty".to_string()
            } else {
                leaf.issuer.common_name.clone()
            };
            node_issuers.insert(name.clone());
            keys_by_issuer
                .entry(name.clone())
                .or_default()
                .insert(leaf.subject_key);
            if p.class == SiteClass::Invalid {
                invalid_replaced_issuers.insert(name);
            }
        }
        for name in &node_issuers {
            let agg = issuers.entry(name.clone()).or_insert(IssuerAgg {
                nodes: 0,
                shared_key_nodes: 0,
                masks_invalid_nodes: 0,
            });
            agg.nodes += 1;
            let keys = &keys_by_issuer[name];
            let probes_with_issuer = replaced_probes
                .iter()
                .filter(|p| {
                    p.chain
                        .first()
                        .map(|l| {
                            let n = if l.issuer.common_name.is_empty() {
                                "Empty"
                            } else {
                                &l.issuer.common_name
                            };
                            n == name
                        })
                        .unwrap_or(false)
                })
                .count();
            if probes_with_issuer >= 2 && keys.len() == 1 {
                agg.shared_key_nodes += 1;
            }
            // Masking: the invalid site's replacement carries the *same*
            // issuer the product uses for valid sites — evidence the
            // trusted product root signs it and the browser stays silent
            // (§6.2). Products that re-sign invalid sites under a separate
            // "untrusted root" issuer are deliberately not masking.
            let valid_site_uses_issuer = replaced_probes.iter().any(|p| {
                p.class != SiteClass::Invalid
                    && p.chain
                        .first()
                        .map(|l| {
                            let n = if l.issuer.common_name.is_empty() {
                                "Empty"
                            } else {
                                &l.issuer.common_name
                            };
                            n == name
                        })
                        .unwrap_or(false)
            });
            if invalid_replaced_issuers.contains(name) && valid_site_uses_issuer {
                agg.masks_invalid_nodes += 1;
            }
        }
    }
    out.ases = node_ases.len();
    out.countries = node_countries.len();
    out.unique_issuers = issuers.len();
    out.issuers = issuers
        .into_iter()
        .map(|(issuer, a)| IssuerRow {
            issuer,
            nodes: a.nodes,
            shared_key_nodes: a.shared_key_nodes,
            masks_invalid_nodes: a.masks_invalid_nodes,
        })
        .collect();
    out.issuers
        .sort_by(|a, b| b.nodes.cmp(&a.nodes).then(a.issuer.cmp(&b.issuer)));

    let qualified: Vec<&(usize, usize)> = as_counts.values().filter(|(_, t)| *t >= 3).collect();
    if !qualified.is_empty() {
        let over = qualified
            .iter()
            .filter(|(r, t)| *r as f64 / *t as f64 > 0.10)
            .count();
        out.ases_over_10pct = over as f64 / qualified.len() as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{CertProbe, HttpsObservation};
    use crate::report::figures::demo_world;
    use certs::{CertAuthority, DistinguishedName};
    use netsim::SimRng;

    #[test]
    fn untouched_chains_are_not_flagged() {
        let world = demo_world();
        let node = world.node(proxynet::NodeId(0));
        let chain = world.expected_chain("demo-site.example").unwrap().to_vec();
        let data = HttpsDataset {
            observations: vec![HttpsObservation {
                zid: node.zid,
                country: node.country,
                exit_ip: node.ip,
                probes: vec![CertProbe {
                    host: world.site_symbols.lookup("demo-site.example").unwrap(),
                    class: SiteClass::Popular,
                    chain,
                }],
                escalated: false,
            }],
            skipped_unranked: 0,
            samples_issued: 1,
            quality: Default::default(),
        };
        let a = analyze(&data, &world, &StudyConfig::default());
        assert_eq!(a.replaced_nodes, 0);
        assert!(a.issuers.is_empty());
    }

    #[test]
    fn spoofed_chain_attributed_to_issuer_with_shared_key() {
        let world = demo_world();
        let node = world.node(proxynet::NodeId(1));
        let original = world.expected_chain("demo-site.example").unwrap().to_vec();
        let mut rng = SimRng::new(3);
        let mut av = CertAuthority::new_root(
            DistinguishedName::cn("Unit AV Root"),
            netsim::SimTime::EPOCH,
            &mut rng,
        );
        let key = certs::KeyId(99);
        let spoof_a = av.issue_spoof(&original[0], key, world.now(), false);
        let spoof_b = av.issue_spoof(&original[0], key, world.now(), false);
        let data = HttpsDataset {
            observations: vec![HttpsObservation {
                zid: node.zid,
                country: node.country,
                exit_ip: node.ip,
                probes: vec![
                    CertProbe {
                        host: world.site_symbols.lookup("demo-site.example").unwrap(),
                        class: SiteClass::Popular,
                        chain: vec![spoof_a, av.cert.clone()],
                    },
                    CertProbe {
                        host: world.site_symbols.lookup("demo-site.example").unwrap(),
                        class: SiteClass::International,
                        chain: vec![spoof_b, av.cert.clone()],
                    },
                ],
                escalated: true,
            }],
            skipped_unranked: 0,
            samples_issued: 1,
            quality: Default::default(),
        };
        let a = analyze(&data, &world, &StudyConfig::default());
        assert_eq!(a.replaced_nodes, 1);
        assert_eq!(a.issuers.len(), 1);
        assert_eq!(a.issuers[0].issuer, "Unit AV Root");
        assert_eq!(a.issuers[0].shared_key_nodes, 1, "same key on both spoofs");
        assert_eq!(a.issuers[0].masks_invalid_nodes, 0);
    }

    #[test]
    fn empty_issuer_renders_as_empty_label() {
        let world = demo_world();
        let node = world.node(proxynet::NodeId(0));
        let original = world.expected_chain("demo-site.example").unwrap().to_vec();
        let mut rng = SimRng::new(4);
        let mut anon =
            CertAuthority::new_root(DistinguishedName::cn(""), netsim::SimTime::EPOCH, &mut rng);
        let spoof = anon.issue_spoof(&original[0], certs::KeyId(1), world.now(), false);
        let data = HttpsDataset {
            observations: vec![HttpsObservation {
                zid: node.zid,
                country: node.country,
                exit_ip: node.ip,
                probes: vec![CertProbe {
                    host: world.site_symbols.lookup("demo-site.example").unwrap(),
                    class: SiteClass::Popular,
                    chain: vec![spoof, anon.cert.clone()],
                }],
                escalated: true,
            }],
            skipped_unranked: 0,
            samples_issued: 1,
            quality: Default::default(),
        };
        let a = analyze(&data, &world, &StudyConfig::default());
        assert_eq!(a.issuers[0].issuer, "Empty");
    }
}
