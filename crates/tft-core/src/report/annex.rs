//! The data-quality annex: how much evidence the faults ate.
//!
//! Under a chaos campaign, probes time out, arrive truncated, or get
//! quarantined by the integrity checks. The main tables silently shrink;
//! this annex makes the shrinkage auditable. For every experiment it
//! renders the per-country disposition ledger ([`crate::quality`]) and
//! warns when fault losses leave a country's delivered evidence below the
//! study's minimum-node threshold — the same bar §3.2 uses for claiming
//! per-country coverage.

use crate::config::StudyConfig;
use crate::quality::{DataQuality, QualityCounts};
use crate::study::StudyReport;
use std::fmt::Write as _;

/// Render the full annex: one section per experiment plus the coverage
/// warnings. Deterministic: the ledgers are `BTreeMap`-keyed.
pub fn render_annex(report: &StudyReport, cfg: &StudyConfig) -> String {
    let mut s = String::from("\n=== Annex A — data quality: probe dispositions per country ===\n");
    let sections: [(&str, &DataQuality); 4] = [
        ("DNS", &report.dns_data.quality),
        ("HTTP", &report.http_data.quality),
        ("HTTPS", &report.https_data.quality),
        ("monitoring", &report.monitor_data.quality),
    ];
    for (name, quality) in sections {
        render_section(&mut s, name, quality);
    }
    render_warnings(&mut s, cfg, &sections);
    s
}

fn render_section(s: &mut String, name: &str, quality: &DataQuality) {
    let totals = quality.totals();
    writeln!(s, "\n-- {name} --").unwrap();
    if quality.is_empty() {
        writeln!(s, "no probe dispositions recorded").unwrap();
        return;
    }
    writeln!(
        s,
        "{:<8} {:>7} {:>8} {:>9} {:>7} {:>6} {:>6} {:>7} | {:>9} {:>5}",
        "country",
        "ok",
        "retried",
        "attempts",
        "timeout",
        "trunc",
        "quar",
        "failed",
        "delivered",
        "lost"
    )
    .unwrap();
    for (cc, c) in &quality.per_country {
        // Clean countries collapse into the totals row; the annex is about
        // loss, not a second coverage table.
        if c.lost() == 0 && quality.per_country.len() > 1 {
            continue;
        }
        write_row(s, cc.as_str(), c);
    }
    write_row(s, "total", &totals);
    if totals.in_quarantine() > 0 {
        writeln!(
            s,
            "quarantined evidence excluded from violation analysis: {} probe(s)",
            totals.in_quarantine()
        )
        .unwrap();
    }
}

fn write_row(s: &mut String, label: &str, c: &QualityCounts) {
    writeln!(
        s,
        "{:<8} {:>7} {:>8} {:>9} {:>7} {:>6} {:>6} {:>7} | {:>9} {:>5}",
        label,
        c.ok,
        c.retried,
        c.retry_attempts,
        c.timed_out,
        c.truncated,
        c.quarantined,
        c.failed,
        c.delivered(),
        c.lost()
    )
    .unwrap();
}

fn render_warnings(s: &mut String, cfg: &StudyConfig, sections: &[(&str, &DataQuality); 4]) {
    let mut warned = false;
    for (name, quality) in sections {
        for (cc, c) in &quality.per_country {
            if c.lost() > 0 && c.delivered() < cfg.min_nodes_per_country {
                if !warned {
                    writeln!(s, "\n-- coverage warnings --").unwrap();
                    warned = true;
                }
                writeln!(
                    s,
                    "{name}: {} delivered {} probes (< {} minimum) after losing {} to faults — per-country claims unreliable",
                    cc.as_str(),
                    c.delivered(),
                    cfg.min_nodes_per_country,
                    c.lost()
                )
                .unwrap();
            }
        }
    }
    if !warned {
        writeln!(s, "\nno coverage warnings: fault losses left every measured country above the minimum-node threshold").unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::ProbeOutcome;
    use inetdb::CountryCode;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s)
    }

    fn sample_quality() -> DataQuality {
        let mut q = DataQuality::default();
        for _ in 0..12 {
            q.record(cc("US"), ProbeOutcome::Ok);
        }
        q.record(cc("IR"), ProbeOutcome::Ok);
        q.record(cc("IR"), ProbeOutcome::Truncated);
        q.record(cc("IR"), ProbeOutcome::TimedOut);
        q.record(cc("IR"), ProbeOutcome::Retried(2));
        q
    }

    #[test]
    fn section_hides_clean_countries_and_sums_totals() {
        let q = sample_quality();
        let mut s = String::new();
        render_section(&mut s, "DNS", &q);
        assert!(
            !s.contains("US "),
            "clean country must fold into totals:\n{s}"
        );
        assert!(s.contains("IR "), "lossy country must get a row:\n{s}");
        assert!(s.contains("quarantined evidence excluded"), "{s}");
        let totals = q.totals();
        assert_eq!(totals.delivered(), 14);
        assert_eq!(totals.lost(), 2);
    }

    #[test]
    fn warning_fires_only_below_threshold_with_losses() {
        let q = sample_quality();
        let empty = DataQuality::default();
        let sections = [
            ("DNS", &q),
            ("HTTP", &empty),
            ("HTTPS", &empty),
            ("monitoring", &empty),
        ];
        let mut cfg = StudyConfig::scaled(0.004);
        cfg.min_nodes_per_country = 5;
        let mut s = String::new();
        render_warnings(&mut s, &cfg, &sections);
        // IR delivered 2 (< 5) with losses → warned; US delivered 12 with
        // zero losses → silent even if a threshold were higher.
        assert!(s.contains("DNS: IR delivered 2"), "{s}");
        assert!(!s.contains("US"), "{s}");
    }

    #[test]
    fn empty_ledgers_render_a_clean_annex() {
        let empty = DataQuality::default();
        let sections = [
            ("DNS", &empty),
            ("HTTP", &empty),
            ("HTTPS", &empty),
            ("monitoring", &empty),
        ];
        let mut s = String::new();
        for (name, q) in sections {
            render_section(&mut s, name, q);
        }
        render_warnings(&mut s, &StudyConfig::scaled(0.004), &sections);
        assert!(s.contains("no probe dispositions recorded"));
        assert!(s.contains("no coverage warnings"));
    }
}
