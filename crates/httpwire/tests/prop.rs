//! Property-based tests: HTTP parse/serialize roundtrips and parser totality.

use httpwire::{chunked, Headers, Method, Request, Response, StatusCode, Target, Uri};
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9-]{0,15}").expect("regex")
}

fn arb_header_value() -> impl Strategy<Value = String> {
    // Visible ASCII without leading/trailing space (values are trimmed on
    // parse) and without CR/LF.
    proptest::string::string_regex("[!-~]([ -~]{0,30}[!-~])?").expect("regex")
}

fn arb_headers() -> impl Strategy<Value = Headers> {
    proptest::collection::vec((arb_token(), arb_header_value()), 0..8).prop_map(|pairs| {
        let mut h = Headers::new();
        for (n, v) in pairs {
            // Avoid framing headers; encode() manages those.
            if !n.eq_ignore_ascii_case("content-length")
                && !n.eq_ignore_ascii_case("transfer-encoding")
            {
                h.append(&n, &v);
            }
        }
        h
    })
}

fn arb_host() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9.-]{0,20}[a-z0-9])?").expect("regex")
}

fn arb_body() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn request_roundtrip_origin_form(
        host in arb_host(),
        path in proptest::string::string_regex("/[!-~&&[^ ]]{0,30}").expect("regex"),
        headers in arb_headers(),
        body in arb_body(),
    ) {
        let mut req = Request::origin_get(&host, &path);
        for (n, v) in headers.iter() {
            req.headers.append(n, v);
        }
        if !body.is_empty() {
            req.method = Method::Post;
            req.body = body;
        }
        let wire = req.encode();
        let (parsed, consumed) = Request::parse(&wire).unwrap();
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(parsed.method, req.method);
        prop_assert_eq!(parsed.target, req.target);
        prop_assert_eq!(parsed.body, req.body);
    }

    #[test]
    fn request_roundtrip_absolute_form(host in arb_host(), port in 1u16.., body in arb_body()) {
        let uri = Uri::parse(&format!("http://{host}:{port}/probe")).unwrap();
        let mut req = Request::proxy_get(uri.clone());
        req.body = body;
        let (parsed, _) = Request::parse(&req.encode()).unwrap();
        match parsed.target {
            Target::Absolute(u) => {
                prop_assert_eq!(u.effective_port(), uri.effective_port());
                prop_assert_eq!(u.host, uri.host);
            }
            other => prop_assert!(false, "wrong target form: {:?}", other),
        }
    }

    #[test]
    fn response_roundtrip(status in 100u16..600, headers in arb_headers(), body in arb_body()) {
        let mut resp = Response::new(StatusCode(status), body);
        resp.headers = headers;
        let wire = resp.encode();
        let (parsed, consumed) = Response::parse(&wire).unwrap();
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(parsed.status, resp.status);
        prop_assert_eq!(parsed.body, resp.body);
    }

    #[test]
    fn parsers_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::parse(&bytes);
        let _ = Response::parse(&bytes);
    }

    #[test]
    fn parsers_total_on_corruption(body in arb_body(), idx in any::<usize>(), flip in 1u8..) {
        let resp = Response::ok("application/octet-stream", body);
        let mut wire = resp.encode();
        let i = idx % wire.len();
        wire[i] ^= flip;
        let _ = Response::parse(&wire);
    }

    #[test]
    fn chunked_roundtrip(body in arb_body(), chunk in 1usize..64) {
        let encoded = chunked::encode(&body, chunk);
        let (decoded, consumed) = chunked::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, body);
        prop_assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn uri_roundtrip(host in arb_host(), port in 1u16.., path in proptest::string::string_regex("/[a-z0-9/._-]{0,20}").expect("regex")) {
        let s = format!("http://{host}:{port}{path}");
        let uri = Uri::parse(&s).unwrap();
        let again = Uri::parse(&uri.to_string()).unwrap();
        prop_assert_eq!(&uri, &again);
    }
}
