//! The study gateway: HTTP in, study results out.
//!
//! ## Request → queue → execute → cache → respond
//!
//! `POST /studies` takes a [`worldgen::WorldSpec`] as JSON. The spec is
//! validated, content-addressed (see [`crate::cache`]), and dispatched:
//!
//! - **cache hit** — a completed study with the same address exists: `200`
//!   with the full rendered body, no execution;
//! - **in-flight join** — the same address is queued or running: `202`
//!   pointing at the existing study (single-flight: concurrent identical
//!   submissions never execute twice);
//! - **admitted** — a free queue slot: `202` with the study's URL;
//! - **backpressure** — the queue is full: `429` with a `Retry-After`
//!   computed from the queued virtual work, so a well-behaved client's
//!   retry lands when a slot is actually plausible.
//!
//! `GET /studies/{id}` serves a running study's output **incrementally**:
//! sections appear as virtual stages complete, framed with chunked
//! transfer coding ([`httpwire::chunked::Encoder`]); once complete, the
//! full body is served with a content length.
//!
//! ## Virtual time
//!
//! The gateway never reads a wall clock. Every `handle` call carries the
//! caller's virtual `now`; queued studies execute on one virtual server in
//! FIFO order, each stage completing at a fixed virtual offset. The *real*
//! work (worldgen, experiment shards on [`substrate::pool`] workers) runs
//! lazily as virtual completion times pass. Worker count changes only
//! wall-clock, so identical request traces produce byte-identical
//! responses at any worker count — the workspace e2e test pins this at
//! workers 1, 2, and 8.

use crate::cache::{StudyCache, StudyKey, TierStats};
use crate::queue::BoundedFifo;
use httpwire::{chunked, Method, Request, Response, StatusCode, Target};
use netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use substrate::json::Json;
use tft_core::{
    render_annex, render_tables, ExecOptions, StudyCheckpoint, StudyConfig, StudyDriver, StudyStage,
};
use worldgen::WorldSpec;

/// Gateway tuning.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Worker threads for study execution (a wall-clock knob only).
    pub workers: usize,
    /// Maximum studies queued or running before `429`.
    pub queue_depth: usize,
    /// Tier-1 capacity (pristine worlds).
    pub world_cache: usize,
    /// Tier-2 capacity (rendered reports).
    pub report_cache: usize,
    /// Per-study virtual deadline, measured from admission. A study whose
    /// next stage would complete past the deadline is cancelled: its slot
    /// frees, its partial output is discarded, and `GET` answers `504` —
    /// never a partial or stale body. `None` (the default) disables it.
    pub study_deadline: Option<SimDuration>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 1,
            queue_depth: 8,
            world_cache: 8,
            report_cache: 8,
            study_deadline: None,
        }
    }
}

/// Virtual cost of building a world.
const COST_BUILD: SimDuration = SimDuration::from_millis(400);

/// Virtual cost of one study stage. Constants, not measurements: virtual
/// time models queueing, it does not profile the host.
fn stage_cost(stage: StudyStage) -> SimDuration {
    SimDuration::from_millis(match stage {
        StudyStage::Dns => 1500,
        StudyStage::Http => 1200,
        StudyStage::Https => 900,
        StudyStage::Monitor => 800,
        StudyStage::Analyze => 600,
        StudyStage::Done => 0,
    })
}

/// Everything a study costs on the virtual server, end to end.
fn total_cost() -> SimDuration {
    let mut d = COST_BUILD;
    for stage in [
        StudyStage::Dns,
        StudyStage::Http,
        StudyStage::Https,
        StudyStage::Monitor,
        StudyStage::Analyze,
    ] {
        d += stage_cost(stage);
    }
    d
}

/// Request counters, split by outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// All requests handled.
    pub requests: u64,
    /// POSTs served whole from the report cache.
    pub cache_hits: u64,
    /// POSTs deduplicated onto an in-flight study.
    pub joined: u64,
    /// POSTs admitted as new studies.
    pub accepted: u64,
    /// POSTs refused with `429`.
    pub rejected: u64,
    /// Requests refused with `400` (malformed HTTP, JSON, or spec).
    pub invalid: u64,
    /// GETs (and bad routes) answered `404`.
    pub not_found: u64,
    /// Worlds actually built (tier-1 misses that did the work).
    pub worlds_built: u64,
    /// Studies actually executed end to end (tier-2 misses that did the work).
    pub studies_executed: u64,
    /// Mid-study crashes (injected via [`Gateway::inject_crash_after`]).
    pub crashes: u64,
    /// Crashed studies resumed from their last stage-boundary checkpoint.
    pub recoveries: u64,
    /// Crashed studies that had to recompute from the start because their
    /// checkpoint did not restore (the slow self-healing path).
    pub recomputes: u64,
    /// Studies cancelled for exceeding the per-study deadline.
    pub deadline_cancelled: u64,
    /// Cached report bodies that failed digest verification (expelled,
    /// re-executed on resubmission, never served).
    pub integrity_failures: u64,
}

/// One queued-or-running study.
struct Job {
    spec: WorldSpec,
    /// Virtual completion time of each remaining step; the first entry is
    /// the world build, the rest are [`StudyDriver`] stages in order.
    pending: VecDeque<SimTime>,
    /// Populated by the build step; `None` *after* the build means the
    /// in-memory driver was lost to a crash and must be revived from
    /// `checkpoint` (or recomputed) before the next stage runs.
    driver: Option<StudyDriver>,
    /// Serialized [`StudyCheckpoint`] written after the build and after
    /// every completed stage — the crash-recovery anchor.
    checkpoint: Option<String>,
    /// Driver stages completed so far (the recompute fallback fast-forwards
    /// a fresh driver this many steps).
    stages_done: usize,
    /// Virtual cancellation time, from admission + `study_deadline`.
    deadline: Option<SimTime>,
    /// Chunk-framed body emitted so far (what an incremental GET serves).
    wire: Vec<u8>,
    /// Plain body emitted so far (what the cache stores at completion).
    body: Vec<u8>,
    enc: chunked::Encoder,
}

/// The gateway. One instance is one virtual server; see the module docs.
pub struct Gateway {
    cfg: GatewayConfig,
    cache: StudyCache,
    /// Admission-ordered keys of queued/running studies.
    active: BoundedFifo<StudyKey>,
    jobs: BTreeMap<StudyKey, Job>,
    finished: BTreeMap<StudyKey, SimTime>,
    cancelled: BTreeMap<StudyKey, SimTime>,
    /// One-shot fault seam: drop the running study's in-memory driver the
    /// next time this stage completes.
    crash_after: Option<StudyStage>,
    clock: SimTime,
    busy_until: SimTime,
    stats: GatewayStats,
}

impl Gateway {
    /// A fresh gateway at the virtual epoch.
    pub fn new(cfg: GatewayConfig) -> Gateway {
        Gateway {
            cache: StudyCache::new(cfg.world_cache, cfg.report_cache),
            active: BoundedFifo::new(cfg.queue_depth),
            jobs: BTreeMap::new(),
            finished: BTreeMap::new(),
            cancelled: BTreeMap::new(),
            crash_after: None,
            clock: SimTime::EPOCH,
            busy_until: SimTime::EPOCH,
            stats: GatewayStats::default(),
            cfg,
        }
    }

    /// Handle one raw HTTP request at virtual time `now`, returning the
    /// encoded response. Total: malformed input yields `400`, never a
    /// panic.
    pub fn handle(&mut self, raw: &[u8], now: SimTime) -> Vec<u8> {
        self.stats.requests += 1;
        self.advance_to(now);
        let Ok((req, _)) = Request::parse(raw) else {
            self.stats.invalid += 1;
            return plain(StatusCode::BAD_REQUEST, "malformed HTTP request\n").encode();
        };
        let response = match (&req.method, &req.target) {
            (Method::Post, Target::Origin(path)) if path == "/studies" => self.post_study(&req),
            (Method::Get, Target::Origin(path)) if path == "/healthz" => self.healthz(),
            (Method::Get, Target::Origin(path)) => match path.strip_prefix("/studies/") {
                Some(id) => self.get_study(id),
                None => self.route_not_found(),
            },
            _ => self.route_not_found(),
        };
        response.encode()
    }

    /// Arm the one-shot fault seam: the next time `stage` completes on any
    /// running study, its in-memory driver is dropped — exactly what a
    /// process crash at that boundary loses. The stage-boundary checkpoint
    /// survives, and the next stage revives the study from it.
    pub fn inject_crash_after(&mut self, stage: StudyStage) {
        self.crash_after = Some(stage);
    }

    /// Test/chaos seam: corrupt `key`'s cached report body in place (its
    /// sealed digest is left stale, so the next read detects and expels
    /// it). Returns false if nothing is cached under `key`.
    pub fn corrupt_cached_report(&mut self, key: &StudyKey) -> bool {
        self.cache.corrupt_report(key)
    }

    /// `GET /healthz`: liveness plus the counters an operator pages on,
    /// rendered as JSON. Always `200` — the body carries the judgement.
    fn healthz(&mut self) -> Response {
        let stats = self.stats();
        let tier = |t: TierStats| {
            Json::Obj(vec![
                ("hits".to_string(), Json::uint(t.hits)),
                ("misses".to_string(), Json::uint(t.misses)),
                ("evictions".to_string(), Json::uint(t.evictions)),
            ])
        };
        let doc = Json::Obj(vec![
            ("status".to_string(), Json::str("ok")),
            (
                "virtual_now_ms".to_string(),
                Json::uint(self.clock.as_millis()),
            ),
            (
                "busy_until_ms".to_string(),
                Json::uint(self.busy_until.as_millis()),
            ),
            (
                "queue".to_string(),
                Json::Obj(vec![
                    ("depth".to_string(), Json::uint(self.active.depth() as u64)),
                    ("len".to_string(), Json::uint(self.active.len() as u64)),
                    ("shed".to_string(), Json::uint(self.active.rejections())),
                ]),
            ),
            (
                "studies".to_string(),
                Json::Obj(vec![
                    ("requests".to_string(), Json::uint(stats.requests)),
                    ("accepted".to_string(), Json::uint(stats.accepted)),
                    ("joined".to_string(), Json::uint(stats.joined)),
                    ("cache_hits".to_string(), Json::uint(stats.cache_hits)),
                    ("rejected".to_string(), Json::uint(stats.rejected)),
                    ("invalid".to_string(), Json::uint(stats.invalid)),
                    ("executed".to_string(), Json::uint(stats.studies_executed)),
                    (
                        "deadline_cancelled".to_string(),
                        Json::uint(stats.deadline_cancelled),
                    ),
                ]),
            ),
            (
                "recovery".to_string(),
                Json::Obj(vec![
                    ("crashes".to_string(), Json::uint(stats.crashes)),
                    ("recoveries".to_string(), Json::uint(stats.recoveries)),
                    ("recomputes".to_string(), Json::uint(stats.recomputes)),
                    (
                        "integrity_failures".to_string(),
                        Json::uint(stats.integrity_failures),
                    ),
                ]),
            ),
            (
                "cache".to_string(),
                Json::Obj(vec![
                    ("worlds".to_string(), tier(self.cache.world_stats())),
                    ("reports".to_string(), tier(self.cache.report_stats())),
                ]),
            ),
        ]);
        let mut resp = Response::new(StatusCode::OK, doc.render_pretty().into_bytes());
        resp.headers.set("Content-Type", "application/json");
        resp
    }

    fn route_not_found(&mut self) -> Response {
        self.stats.not_found += 1;
        plain(StatusCode::NOT_FOUND, "no such route\n")
    }

    /// `POST /studies`: validate, address, and dispatch a spec.
    fn post_study(&mut self, req: &Request) -> Response {
        let spec = match std::str::from_utf8(&req.body)
            .map_err(|_| "spec body is not UTF-8".to_string())
            .and_then(|s| worldgen::from_json(s).map_err(|e| e.to_string()))
        {
            Ok(spec) => spec,
            Err(msg) => {
                self.stats.invalid += 1;
                return plain(StatusCode::BAD_REQUEST, &format!("invalid spec: {msg}\n"));
            }
        };
        let key = StudyKey::for_spec(&spec);
        let id = key.study_id();

        if let Some(body) = self.cache.report(&key) {
            // Terminal: the study already ran; serve it without executing.
            self.stats.cache_hits += 1;
            let mut resp = plain_body(StatusCode::OK, body.clone());
            resp.headers.set("X-Study-Id", &id);
            resp.headers.set("X-Cache", "hit");
            return resp;
        }
        if self.jobs.contains_key(&key) {
            // Single-flight: identical submission joins the in-flight study.
            self.stats.joined += 1;
            return self.accepted_response(&id, "joined");
        }
        if self.active.push(key).is_err() {
            // Shed: the queue refused the key (and counted the rejection).
            // Retry, not terminal: tell the client when a slot is plausible.
            self.stats.rejected += 1;
            let mut resp = plain(
                StatusCode::TOO_MANY_REQUESTS,
                &format!("queue full ({} studies pending)\n", self.active.len()),
            );
            resp.headers
                .set("Retry-After", &self.retry_after_secs().to_string());
            return resp;
        }

        // Admit: reserve the virtual server right after the current backlog.
        let start = self.clock.max(self.busy_until);
        let mut pending = VecDeque::with_capacity(6);
        let mut t = start + COST_BUILD;
        pending.push_back(t);
        for stage in [
            StudyStage::Dns,
            StudyStage::Http,
            StudyStage::Https,
            StudyStage::Monitor,
            StudyStage::Analyze,
        ] {
            t += stage_cost(stage);
            pending.push_back(t);
        }
        self.busy_until = t;
        self.cancelled.remove(&key); // resubmission of a cancelled study starts clean
        self.jobs.insert(
            key,
            Job {
                spec,
                pending,
                driver: None,
                checkpoint: None,
                stages_done: 0,
                deadline: self.cfg.study_deadline.map(|d| self.clock + d),
                wire: Vec::new(),
                body: Vec::new(),
                enc: chunked::Encoder::new(),
            },
        );
        self.stats.accepted += 1;
        self.accepted_response(&id, "miss")
    }

    fn accepted_response(&self, id: &str, cache_state: &str) -> Response {
        let mut resp = plain(
            StatusCode::ACCEPTED,
            &format!("study {id} accepted; fetch /studies/{id}\n"),
        );
        resp.headers.set("X-Study-Id", id);
        resp.headers.set("X-Cache", cache_state);
        resp.headers.set("Location", &format!("/studies/{id}"));
        resp
    }

    /// `GET /studies/{id}`: completed studies get the full body with a
    /// content length; running studies get the chunk frames emitted so far
    /// (a decodable snapshot — each poll sees strictly more).
    fn get_study(&mut self, id: &str) -> Response {
        let Some(key) = StudyKey::parse_id(id) else {
            self.stats.not_found += 1;
            return plain(StatusCode::NOT_FOUND, "malformed study id\n");
        };
        if let Some(at) = self.cancelled.get(&key) {
            // Terminal and honest: the partial output was discarded with
            // the job; a deadline overrun never serves half a study.
            let mut resp = plain(
                StatusCode::GATEWAY_TIMEOUT,
                &format!("study cancelled at {at}: exceeded deadline; resubmit to retry\n"),
            );
            resp.headers.set("X-Study-Id", id);
            return resp;
        }
        if let Some(job) = self.jobs.get(&key) {
            let mut wire = job.wire.clone();
            wire.extend_from_slice(b"0\r\n\r\n");
            let mut resp = Response::new(StatusCode::OK, wire);
            resp.headers.set("Content-Type", "text/plain");
            resp.headers.set("Transfer-Encoding", "chunked");
            resp.headers.set("X-Study-Id", id);
            resp.headers.set("X-Study-Complete", "false");
            return resp;
        }
        if let Some(body) = self.cache.peek_report(&key) {
            let mut resp = plain_body(StatusCode::OK, body.clone());
            resp.headers.set("X-Study-Id", id);
            resp.headers.set("X-Study-Complete", "true");
            return resp;
        }
        self.stats.not_found += 1;
        if self.finished.contains_key(&key) {
            // The study ran, but its cached body is gone — evicted, or
            // expelled after failing digest verification. Either way the
            // client gets an honest 404, never corrupt bytes; a POST of the
            // same spec re-executes.
            return plain(StatusCode::NOT_FOUND, "study result lost; resubmit\n");
        }
        plain(StatusCode::NOT_FOUND, "unknown study\n")
    }

    /// Move the virtual clock to `now` and run every step whose virtual
    /// completion time has passed. Jobs run strictly in admission order —
    /// the FIFO front gates everything behind it.
    ///
    /// Every step executes through the checkpointed driver: after the build
    /// and after each non-final stage, the driver's serialized
    /// [`StudyCheckpoint`] is written to the job, so a crash that loses the
    /// in-memory driver (see [`Gateway::inject_crash_after`]) costs at most
    /// one stage — the next step revives the study from its last
    /// checkpoint, or, if the checkpoint itself is unusable, recomputes the
    /// completed stages from scratch. Either path renders the same bytes.
    fn advance_to(&mut self, now: SimTime) {
        if now > self.clock {
            self.clock = now;
        }
        while let Some(&key) = self.active.front() {
            let Some(job) = self.jobs.get_mut(&key) else {
                // Defensive: an active key without a job is a bug, but the
                // gateway sheds it rather than wedging the whole queue.
                self.active.pop();
                continue;
            };
            while let Some(&end) = job.pending.front() {
                if end > self.clock || job.deadline.is_some_and(|d| end > d) {
                    break;
                }
                job.pending.pop_front();
                if job.driver.is_none() && job.checkpoint.is_none() {
                    // Build step: never executed anything yet.
                    let world = world_for(&mut self.cache, &mut self.stats, key, &job.spec);
                    let cfg = StudyConfig::scaled(job.spec.scale);
                    let driver =
                        StudyDriver::new(world, cfg, &ExecOptions::with_workers(self.cfg.workers));
                    job.checkpoint = seal(&driver, &job.spec);
                    job.driver = Some(driver);
                    let section = format!(
                        "# study {}\nstage build complete at {end}\n",
                        key.study_id()
                    );
                    emit(job, &section);
                    continue;
                }
                if job.driver.is_none() {
                    // The in-memory driver was lost mid-study: self-heal.
                    job.driver = Some(revive(
                        &mut self.cache,
                        &mut self.stats,
                        key,
                        job,
                        self.cfg.workers,
                    ));
                }
                let (stage, done) = {
                    let Some(driver) = job.driver.as_mut() else {
                        break; // unreachable: revive always yields a driver
                    };
                    let stage = driver.step();
                    (stage, driver.is_done())
                };
                job.stages_done += 1;
                let section = format!("stage {} complete at {end}\n", stage.label());
                emit(job, &section);
                if done {
                    let Some(driver) = job.driver.take() else {
                        break; // unreachable: borrowed as Some just above
                    };
                    let (report, _world) = driver.into_parts();
                    let cfg = StudyConfig::scaled(job.spec.scale);
                    let tail = format!(
                        "\n{}{}# end study {}\n",
                        render_tables(&report),
                        render_annex(&report, &cfg),
                        key.study_id()
                    );
                    emit(job, &tail);
                    job.wire.extend_from_slice(&job.enc.finish());
                    self.stats.studies_executed += 1;
                    self.cache.insert_report(key, job.body.clone());
                    self.finished.insert(key, end);
                } else {
                    // Persist the boundary before any crash can happen, so
                    // the checkpoint always reflects completed work.
                    job.checkpoint = job.driver.as_ref().and_then(|d| seal(d, &job.spec));
                    if self.crash_after == Some(stage) {
                        self.crash_after = None;
                        self.stats.crashes += 1;
                        job.driver = None;
                    }
                }
            }
            let Some(job) = self.jobs.get(&key) else {
                self.active.pop();
                continue;
            };
            if job.pending.is_empty() {
                self.jobs.remove(&key);
                self.active.pop();
            } else if job.deadline.is_some_and(|d| self.clock >= d) {
                // Deadline passed with work remaining: cancel. The job and
                // its partial output are discarded whole — a GET answers
                // 504, never a truncated body — and the slot frees for the
                // next admission. (The virtual server stays reserved as
                // scheduled; cancellation sheds the study, it does not
                // reflow the timetable.)
                let deadline = job.deadline.unwrap_or(self.clock);
                self.jobs.remove(&key);
                self.active.pop();
                self.cancelled.insert(key, deadline);
                self.stats.deadline_cancelled += 1;
            } else {
                break;
            }
        }
    }

    /// Seconds until the virtual backlog drains (the `Retry-After` value):
    /// at least 1, rounded up.
    fn retry_after_secs(&self) -> u64 {
        let backlog = self
            .busy_until
            .checked_since(self.clock)
            .unwrap_or(SimDuration::ZERO);
        backlog.as_millis().div_ceil(1000).max(1)
    }

    /// Request counters. `integrity_failures` is synced from the cache at
    /// read time so the snapshot is always current.
    pub fn stats(&self) -> GatewayStats {
        let mut stats = self.stats;
        stats.integrity_failures = self.cache.integrity_failures();
        stats
    }

    /// Cache counters, `(tier-1 worlds, tier-2 reports)`.
    pub fn cache_stats(&self) -> (TierStats, TierStats) {
        (self.cache.world_stats(), self.cache.report_stats())
    }

    /// Virtual completion time of a study that has finished.
    pub fn finished_at(&self, key: &StudyKey) -> Option<SimTime> {
        self.finished.get(key).copied()
    }

    /// The gateway's virtual clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// When the virtual server's current backlog drains.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// The worst-case virtual latency of a cold study admitted to an empty
    /// queue (used by clients to space their polls).
    pub fn cold_study_cost() -> SimDuration {
        total_cost()
    }
}

/// The pristine world for `key`: tier-1 cache hit, or build-and-cache.
fn world_for(
    cache: &mut StudyCache,
    stats: &mut GatewayStats,
    key: StudyKey,
    spec: &WorldSpec,
) -> proxynet::World {
    match cache.world(&key) {
        Some(world) => world,
        None => {
            let built = worldgen::build(spec).world;
            stats.worlds_built += 1;
            cache.insert_world(key, built.clone());
            built
        }
    }
}

/// Serialize a driver's stage-boundary checkpoint, or `None` if the study
/// is not checkpointable (completed, or a world with pending events).
fn seal(driver: &StudyDriver, spec: &WorldSpec) -> Option<String> {
    match driver.checkpoint(spec) {
        Ok(cp) => Some(cp.to_canonical_json()),
        Err(_) => None,
    }
}

/// Rebuild a crashed job's driver. Fast path: restore the last serialized
/// checkpoint against the pristine world (tier-1 cache, else rebuilt).
/// Slow path, if the checkpoint is missing or unusable: recompute — a
/// fresh driver fast-forwarded through the completed stages. Both paths
/// yield a driver whose remaining stages render byte-identical output
/// (checkpoint/restore determinism is pinned by `tests/recovery.rs`).
fn revive(
    cache: &mut StudyCache,
    stats: &mut GatewayStats,
    key: StudyKey,
    job: &Job,
    workers: usize,
) -> StudyDriver {
    let opts = ExecOptions::with_workers(workers);
    let world = world_for(cache, stats, key, &job.spec);
    let restored = job
        .checkpoint
        .as_deref()
        .and_then(|json| StudyCheckpoint::from_json_str(json).ok())
        .and_then(|cp| StudyDriver::restore_with_world(&cp, world.clone(), &opts).ok());
    match restored {
        Some(driver) => {
            stats.recoveries += 1;
            driver
        }
        None => {
            stats.recomputes += 1;
            let mut driver = StudyDriver::new(world, StudyConfig::scaled(job.spec.scale), &opts);
            for _ in 0..job.stages_done {
                driver.step();
            }
            driver
        }
    }
}

/// Append one section to a job's plain body and chunk-framed wire.
fn emit(job: &mut Job, section: &str) {
    job.body.extend_from_slice(section.as_bytes());
    job.wire
        .extend_from_slice(&job.enc.push(section.as_bytes()));
}

fn plain(status: StatusCode, text: &str) -> Response {
    plain_body(status, text.as_bytes().to_vec())
}

fn plain_body(status: StatusCode, body: Vec<u8>) -> Response {
    let mut resp = Response::new(status, body);
    resp.headers.set("Content-Type", "text/plain");
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post_spec(spec: &WorldSpec) -> Vec<u8> {
        let body = worldgen::to_json(spec).expect("spec renders");
        let mut req = Request {
            method: Method::Post,
            target: Target::Origin("/studies".into()),
            headers: httpwire::Headers::new(),
            body: body.into_bytes(),
        };
        req.headers.set("Host", "gateway");
        req.headers
            .set("Content-Length", &req.body.len().to_string());
        req.encode()
    }

    fn parse(raw: &[u8]) -> Response {
        Response::parse(raw).expect("gateway responses parse").0
    }

    #[test]
    fn malformed_http_and_bad_specs_get_400() {
        let mut gw = Gateway::new(GatewayConfig::default());
        let t = SimTime::EPOCH;
        assert_eq!(
            parse(&gw.handle(b"NONSENSE", t)).status,
            StatusCode::BAD_REQUEST
        );
        let mut req = Request::origin_get("gateway", "/studies");
        req.method = Method::Post;
        req.body = b"{not json".to_vec();
        req.headers.set("Content-Length", "9");
        assert_eq!(
            parse(&gw.handle(&req.encode(), t)).status,
            StatusCode::BAD_REQUEST
        );
        let mut bad_spec = worldgen::smoke_spec(1);
        bad_spec.scale = -1.0; // parses, fails validation
        let resp = parse(&gw.handle(&post_spec(&bad_spec), t));
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        assert_eq!(gw.stats().invalid, 3);
    }

    #[test]
    fn unknown_routes_and_ids_get_404() {
        let mut gw = Gateway::new(GatewayConfig::default());
        let t = SimTime::EPOCH;
        let get = |path: &str| Request::origin_get("gateway", path).encode();
        assert_eq!(
            parse(&gw.handle(&get("/nope"), t)).status,
            StatusCode::NOT_FOUND
        );
        assert_eq!(
            parse(&gw.handle(&get("/studies/not-a-real-id"), t)).status,
            StatusCode::NOT_FOUND
        );
        let id = StudyKey::for_spec(&worldgen::smoke_spec(1)).study_id();
        assert_eq!(
            parse(&gw.handle(&get(&format!("/studies/{id}")), t)).status,
            StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn admission_join_and_backpressure() {
        let mut gw = Gateway::new(GatewayConfig {
            queue_depth: 1,
            ..GatewayConfig::default()
        });
        let t = SimTime::EPOCH; // never advances: nothing executes
        let first = parse(&gw.handle(&post_spec(&worldgen::smoke_spec(1)), t));
        assert_eq!(first.status, StatusCode::ACCEPTED);
        assert_eq!(first.headers.get("X-Cache"), Some("miss"));
        let id = first.headers.get("X-Study-Id").expect("id header");
        assert_eq!(
            first.headers.get("Location").unwrap(),
            format!("/studies/{id}")
        );

        // Identical resubmission joins in-flight — no second slot consumed.
        let joined = parse(&gw.handle(&post_spec(&worldgen::smoke_spec(1)), t));
        assert_eq!(joined.status, StatusCode::ACCEPTED);
        assert_eq!(joined.headers.get("X-Cache"), Some("joined"));

        // A different spec finds the queue full: 429 + Retry-After covering
        // the backlog (5.4s of queued virtual work → 6s).
        let full = parse(&gw.handle(&post_spec(&worldgen::smoke_spec(2)), t));
        assert_eq!(full.status, StatusCode::TOO_MANY_REQUESTS);
        assert_eq!(full.headers.get("Retry-After"), Some("6"));
        let s = gw.stats();
        assert_eq!((s.accepted, s.joined, s.rejected), (1, 1, 1));
        assert_eq!(s.studies_executed, 0, "clock never moved");
    }

    #[test]
    fn incremental_get_grows_and_completes() {
        let mut gw = Gateway::new(GatewayConfig::default());
        let accept = parse(&gw.handle(&post_spec(&worldgen::smoke_spec(5)), SimTime::EPOCH));
        let id = accept.headers.get("X-Study-Id").expect("id").to_string();
        let get = Request::origin_get("gateway", &format!("/studies/{id}")).encode();

        // Mid-flight: chunked snapshot, strictly growing.
        let early = parse(&gw.handle(&get, SimTime::from_millis(500)));
        assert_eq!(early.headers.get("X-Study-Complete"), Some("false"));
        assert!(early.headers.is_chunked());
        let mid = parse(&gw.handle(&get, SimTime::from_millis(3_500)));
        assert!(
            mid.body.len() > early.body.len(),
            "later poll must have seen more stages"
        );
        assert!(String::from_utf8_lossy(&mid.body).contains("stage dns complete"));

        // Past the virtual end: complete, content-length framed, cached.
        let done = parse(&gw.handle(&get, SimTime::from_millis(10_000)));
        assert_eq!(done.headers.get("X-Study-Complete"), Some("true"));
        assert!(!done.headers.is_chunked());
        let text = String::from_utf8_lossy(&done.body);
        assert!(text.contains("Table 1"), "tables served");
        assert!(text.contains(&format!("# end study {id}")));
        assert_eq!(gw.stats().studies_executed, 1);

        // And the mid-flight snapshot (already de-chunked by the response
        // parser) was a strict prefix of the final body.
        assert!(done.body.starts_with(&mid.body));
        assert!(done.body.len() > mid.body.len());
    }

    /// Run one study to completion, optionally crashing after `crash`,
    /// returning the final body and the stats snapshot.
    fn run_one(crash: Option<StudyStage>) -> (Vec<u8>, GatewayStats) {
        let mut gw = Gateway::new(GatewayConfig::default());
        if let Some(stage) = crash {
            gw.inject_crash_after(stage);
        }
        let accept = parse(&gw.handle(&post_spec(&worldgen::smoke_spec(5)), SimTime::EPOCH));
        let id = accept.headers.get("X-Study-Id").expect("id").to_string();
        let get = Request::origin_get("gateway", &format!("/studies/{id}")).encode();
        let done = parse(&gw.handle(&get, SimTime::from_millis(10_000)));
        assert_eq!(done.headers.get("X-Study-Complete"), Some("true"));
        (done.body, gw.stats())
    }

    #[test]
    fn crash_after_any_stage_recovers_byte_identical() {
        let (clean, stats) = run_one(None);
        assert_eq!((stats.crashes, stats.recoveries), (0, 0));
        for stage in [
            StudyStage::Dns,
            StudyStage::Http,
            StudyStage::Https,
            StudyStage::Monitor,
        ] {
            let (body, stats) = run_one(Some(stage));
            assert_eq!(stats.crashes, 1, "crash after {stage:?} armed");
            assert_eq!(stats.recoveries, 1, "restored from checkpoint");
            assert_eq!(stats.recomputes, 0, "fast path, not recompute");
            assert_eq!(
                body, clean,
                "crash after {stage:?} changed the served bytes"
            );
        }
    }

    #[test]
    fn revive_without_checkpoint_recomputes_the_same_study() {
        // The slow self-healing path: no (usable) checkpoint, so revive
        // fast-forwards a fresh driver through the completed stages.
        let spec = worldgen::smoke_spec(5);
        let key = StudyKey::for_spec(&spec);
        let mut cache = StudyCache::new(2, 2);
        let mut stats = GatewayStats::default();
        let job = Job {
            spec: spec.clone(),
            pending: VecDeque::new(),
            driver: None,
            checkpoint: None,
            stages_done: 2,
            deadline: None,
            wire: Vec::new(),
            body: Vec::new(),
            enc: chunked::Encoder::new(),
        };
        let mut revived = revive(&mut cache, &mut stats, key, &job, 1);
        assert_eq!((stats.recoveries, stats.recomputes), (0, 1));
        revived.run_to_completion();
        let (report, _) = revived.into_parts();

        let cfg = StudyConfig::scaled(spec.scale);
        let mut reference = StudyDriver::new(
            worldgen::build(&spec).world,
            cfg,
            &ExecOptions::with_workers(1),
        );
        reference.run_to_completion();
        let (expected, _) = reference.into_parts();
        assert_eq!(render_tables(&report), render_tables(&expected));
    }

    #[test]
    fn corrupted_cached_report_is_never_served_and_reexecutes() {
        let mut gw = Gateway::new(GatewayConfig::default());
        let spec = worldgen::smoke_spec(5);
        let key = StudyKey::for_spec(&spec);
        let id = key.study_id();
        let get = Request::origin_get("gateway", &format!("/studies/{id}")).encode();

        gw.handle(&post_spec(&spec), SimTime::EPOCH);
        let done = parse(&gw.handle(&get, SimTime::from_millis(10_000)));
        assert_eq!(done.headers.get("X-Study-Complete"), Some("true"));

        assert!(gw.corrupt_cached_report(&key), "seam flips a cached byte");
        // The corrupt body is detected, expelled, and never served.
        let lost = parse(&gw.handle(&get, SimTime::from_millis(10_001)));
        assert_eq!(lost.status, StatusCode::NOT_FOUND);
        assert!(String::from_utf8_lossy(&lost.body).contains("result lost"));
        assert_eq!(gw.stats().integrity_failures, 1);

        // A resubmission is a miss: the study re-executes from scratch and
        // serves the same bytes as before the corruption.
        let resub = parse(&gw.handle(&post_spec(&spec), SimTime::from_millis(10_002)));
        assert_eq!(resub.status, StatusCode::ACCEPTED);
        let again = parse(&gw.handle(&get, SimTime::from_millis(30_000)));
        assert_eq!(again.headers.get("X-Study-Complete"), Some("true"));
        // Stage headers carry virtual completion times, which legitimately
        // differ across executions; the report itself must be identical.
        let report_of = |body: &[u8]| {
            let text = String::from_utf8_lossy(body).to_string();
            let at = text.find("=== Table 1").expect("report present");
            text[at..].to_string()
        };
        assert_eq!(
            report_of(&again.body),
            report_of(&done.body),
            "re-executed study must render the same report"
        );
        assert_eq!(gw.stats().studies_executed, 2);
    }

    #[test]
    fn deadline_cancels_with_504_and_discards_partial_output() {
        let mut gw = Gateway::new(GatewayConfig {
            study_deadline: Some(SimDuration::from_millis(2_000)),
            ..GatewayConfig::default()
        });
        let spec = worldgen::smoke_spec(5);
        let id = StudyKey::for_spec(&spec).study_id();
        let get = Request::origin_get("gateway", &format!("/studies/{id}")).encode();
        gw.handle(&post_spec(&spec), SimTime::EPOCH);

        // Deadline 2000ms admits the build (400) and DNS (1900) but not
        // HTTP (3100): past the deadline the study cancels whole.
        let resp = parse(&gw.handle(&get, SimTime::from_millis(5_000)));
        assert_eq!(resp.status, StatusCode::GATEWAY_TIMEOUT);
        let text = String::from_utf8_lossy(&resp.body).to_string();
        assert!(text.contains("exceeded deadline"), "honest 504: {text}");
        assert!(
            !text.contains("stage"),
            "no partial stage output may leak: {text}"
        );
        let stats = gw.stats();
        assert_eq!(stats.deadline_cancelled, 1);
        assert_eq!(stats.studies_executed, 0);

        // The slot freed: resubmission is admitted, not joined or rejected.
        let resub = parse(&gw.handle(&post_spec(&spec), SimTime::from_millis(5_001)));
        assert_eq!(resub.status, StatusCode::ACCEPTED);
        assert_eq!(resub.headers.get("X-Cache"), Some("miss"));
    }

    #[test]
    fn healthz_reports_shed_and_recovery_counters() {
        let mut gw = Gateway::new(GatewayConfig {
            queue_depth: 1,
            ..GatewayConfig::default()
        });
        let t = SimTime::EPOCH;
        gw.handle(&post_spec(&worldgen::smoke_spec(1)), t);
        gw.handle(&post_spec(&worldgen::smoke_spec(2)), t); // queue full: shed

        let resp = parse(&gw.handle(&Request::origin_get("gateway", "/healthz").encode(), t));
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get("Content-Type"), Some("application/json"));
        let doc = substrate::json::parse(std::str::from_utf8(&resp.body).expect("utf8"))
            .expect("healthz body is JSON");
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));
        let queue = doc.get("queue").expect("queue section");
        assert_eq!(queue.get("shed").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(queue.get("len").and_then(|v| v.as_u64()), Some(1));
        let recovery = doc.get("recovery").expect("recovery section");
        assert_eq!(
            recovery.get("integrity_failures").and_then(|v| v.as_u64()),
            Some(0)
        );
        // /healthz is not a study route: it must not count as a 404.
        assert_eq!(gw.stats().not_found, 0);
    }
}
