//! Longitudinal measurement — the paper's closing point (§9): the approach
//! is cheap enough to run **continuously**, "with the ability to see how
//! various types of violations evolve over time."
//!
//! An epoch is one full DNS experiment; between epochs the world keeps
//! living (and may change — ISPs deploy or retire hijacking appliances).
//! The trend analysis compares per-country hijack ratios across epochs.

use crate::analysis::dns::{analyze, DnsAnalysis};
use crate::config::StudyConfig;
use crate::dns_exp;
use inetdb::CountryCode;
use netsim::{SimDuration, SimTime};
use proxynet::World;
use std::collections::BTreeMap;

/// One epoch's summary.
#[derive(Debug)]
pub struct EpochSummary {
    /// Epoch index.
    pub epoch: usize,
    /// Virtual time the epoch started.
    pub started: SimTime,
    /// Full DNS analysis for the epoch.
    pub dns: DnsAnalysis,
}

impl EpochSummary {
    /// The epoch's overall hijack rate.
    pub fn hijack_rate(&self) -> f64 {
        self.dns.hijacked as f64 / self.dns.nodes.max(1) as f64
    }

    /// Per-country hijack ratios (countries above the reporting threshold).
    pub fn country_ratios(&self) -> BTreeMap<CountryCode, f64> {
        self.dns
            .by_country
            .iter()
            .map(|row| (row.country, row.ratio()))
            .collect()
    }
}

/// A detected change between the first and last epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Trend {
    /// Country.
    pub country: CountryCode,
    /// First-epoch hijack ratio.
    pub first: f64,
    /// Last-epoch hijack ratio.
    pub last: f64,
}

impl Trend {
    /// Signed change.
    pub fn delta(&self) -> f64 {
        self.last - self.first
    }
}

/// Run `epochs` DNS campaigns separated by `gap` of virtual time. After
/// each epoch (except the last), `between` may mutate the world — that is
/// where scenario scripts model operators changing behaviour.
pub fn run(
    world: &mut World,
    cfg: &StudyConfig,
    epochs: usize,
    gap: SimDuration,
    mut between: impl FnMut(&mut World, usize),
) -> Vec<EpochSummary> {
    assert!(epochs >= 1, "need at least one epoch");
    let mut out = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let started = world.now();
        let data = dns_exp::run(world, cfg);
        let dns = analyze(&data, world, cfg);
        out.push(EpochSummary {
            epoch,
            started,
            dns,
        });
        if epoch + 1 < epochs {
            between(world, epoch);
            world.advance(gap);
        }
    }
    out
}

/// Countries whose hijack ratio moved by more than `threshold` between the
/// first and last epoch, largest absolute change first.
pub fn trends(epochs: &[EpochSummary], threshold: f64) -> Vec<Trend> {
    let (Some(first), Some(last)) = (epochs.first(), epochs.last()) else {
        return Vec::new();
    };
    let a = first.country_ratios();
    let b = last.country_ratios();
    let mut out: Vec<Trend> = a
        .iter()
        .filter_map(|(cc, &ra)| {
            let rb = *b.get(cc)?;
            ((rb - ra).abs() > threshold).then_some(Trend {
                country: *cc,
                first: ra,
                last: rb,
            })
        })
        .collect();
    out.sort_by(|x, y| {
        y.delta()
            .abs()
            .partial_cmp(&x.delta().abs())
            .expect("finite deltas")
    });
    out
}

/// Render an epoch series as a small report.
pub fn render(epochs: &[EpochSummary]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("\n=== Longitudinal DNS hijacking (§9: violations over time) ===\n");
    for e in epochs {
        writeln!(
            s,
            "epoch {:>2} @ {:>12}: {:>6} nodes, {:>5} hijacked ({:.2}%)",
            e.epoch,
            e.started.to_string(),
            e.dns.nodes,
            e.dns.hijacked,
            e.hijack_rate() * 100.0
        )
        .unwrap();
    }
    for t in trends(epochs, 0.05) {
        writeln!(
            s,
            "trend: {} moved {:+.1} points ({:.1}% → {:.1}%)",
            t.country,
            t.delta() * 100.0,
            t.first * 100.0,
            t.last * 100.0
        )
        .unwrap();
    }
    s
}
