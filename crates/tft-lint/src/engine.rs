//! The pass framework: source-file model, diagnostics, inline suppression
//! handling, the workspace walker, and the runner.
//!
//! A lint is a type implementing [`Pass`]: an id, a scope predicate over
//! [`SourceFile`]s, and a per-file check emitting [`Diagnostic`]s with
//! file:line:col spans. The runner applies every pass to every in-scope
//! file, then resolves inline suppressions:
//!
//! ```text
//! // tft-lint: allow(no-wall-clock, reason = "bench timing is wall-clock by definition")
//! ```
//!
//! An allow comment suppresses matching diagnostics on its own line or the
//! line directly below it. The `reason` is mandatory — an allow without one
//! is itself a diagnostic (`allow-missing-reason`) — and allows are linted
//! for staleness: one that suppresses nothing produces `stale-allow`, and
//! one naming a pass that does not exist produces `unknown-lint-id`.

use crate::ast::{self, Ast};
use crate::baseline::Baseline;
use crate::callgraph::{CallGraph, Reachability};
use crate::lexer::{tokenize, TokKind, Token};
use crate::symbols::SymbolTable;
use std::fmt;
use std::path::{Path, PathBuf};
use substrate::pool;

/// Engine-level diagnostic id: an allow comment without a written reason.
pub const ALLOW_MISSING_REASON: &str = "allow-missing-reason";
/// Engine-level diagnostic id: an allow comment that suppressed nothing.
pub const STALE_ALLOW: &str = "stale-allow";
/// Engine-level diagnostic id: an allow naming a pass that does not exist.
pub const UNKNOWN_LINT_ID: &str = "unknown-lint-id";
/// Engine-level diagnostic id: an allow naming a real pass that cannot
/// fire in this file at all (its scope predicate excludes the file), so
/// the allow is dead on arrival.
pub const INAPPLICABLE_ALLOW: &str = "inapplicable-allow";

/// One finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Id of the pass that produced it.
    pub pass: String,
    /// Workspace-relative path (unix separators).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation ending in what to do about it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.pass, self.message
        )
    }
}

/// What kind of file a [`SourceFile`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A `.rs` file; `tokens` is populated.
    Rust,
    /// A `Cargo.toml` manifest; checked line-wise, `tokens` is empty.
    Manifest,
}

/// One file presented to the passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (e.g.
    /// `crates/dnswire/src/wire.rs`).
    pub rel_path: String,
    /// Owning crate name (`tft` for files of the root package).
    pub crate_name: String,
    /// File classification.
    pub kind: FileKind,
    /// Full text (lossy UTF-8).
    pub text: String,
    /// Token stream (empty for manifests).
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Build a Rust source file from text, tokenizing it.
    pub fn rust(rel_path: &str, crate_name: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            kind: FileKind::Rust,
            text: text.to_string(),
            tokens: tokenize(text),
        }
    }

    /// Build a manifest file from text.
    pub fn manifest(rel_path: &str, crate_name: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            kind: FileKind::Manifest,
            text: text.to_string(),
            tokens: Vec::new(),
        }
    }

    /// Token index ranges covered by `#[cfg(test)] mod … { … }` blocks, so
    /// passes can exempt unit-test code (tests may unwrap freely).
    pub fn test_mod_ranges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let toks = &self.tokens;
        let mut i = 0;
        while i < toks.len() {
            if self.match_texts(i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
                // Find the following `{` (skipping the `mod name` tokens)
                // and its matching close brace.
                let mut j = i + 7;
                while j < toks.len() && self.tok_text(j) != "{" {
                    j += 1;
                }
                if j < toks.len() {
                    let close = self.matching_close(j, "{", "}");
                    out.push((i, close));
                    i = close;
                    continue;
                }
            }
            i += 1;
        }
        out
    }

    /// The text of token `i` (empty string past the end).
    pub fn tok_text(&self, i: usize) -> &str {
        self.tokens.get(i).map(|t| t.text(&self.text)).unwrap_or("")
    }

    /// True if the code tokens starting at `i` match `texts` exactly
    /// (comments are *not* skipped; callers operate on code-token indices).
    pub fn match_texts(&self, i: usize, texts: &[&str]) -> bool {
        texts
            .iter()
            .enumerate()
            .all(|(k, want)| self.tok_text(i + k) == *want)
    }

    /// Index one past the token closing the bracket opened at `open_idx`
    /// (which must hold `open`). Returns `tokens.len()` when unbalanced.
    pub fn matching_close(&self, open_idx: usize, open: &str, close: &str) -> usize {
        let mut depth = 0i64;
        let mut i = open_idx;
        while i < self.tokens.len() {
            let t = self.tok_text(i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.tokens.len()
    }
}

/// One parsed `tft-lint: allow(…)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The suppressed pass id.
    pub id: String,
    /// The mandatory written reason (None / empty ⇒ `allow-missing-reason`).
    pub reason: Option<String>,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
}

/// Parse the allow directives of a file. For Rust files, only comment
/// tokens are inspected (an allow spelled inside a string literal is inert);
/// manifests are scanned line-wise for `#` comments.
pub fn parse_allows(file: &SourceFile) -> Vec<Allow> {
    let mut out = Vec::new();
    match file.kind {
        FileKind::Rust => {
            for t in &file.tokens {
                if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                    let text = t.text(&file.text);
                    // Doc comments (`///`, `//!`, `/**`, `/*!`) can't carry
                    // directives — they describe the syntax, as this one does.
                    let doc = text.starts_with("///")
                        || text.starts_with("//!")
                        || text.starts_with("/**")
                        || text.starts_with("/*!");
                    if doc {
                        continue;
                    }
                    if let Some(a) = parse_allow_text(text, t.line, t.col) {
                        out.push(a);
                    }
                }
            }
        }
        FileKind::Manifest => {
            for (i, raw) in file.text.lines().enumerate() {
                if let Some(hash) = raw.find('#') {
                    if let Some(a) = parse_allow_text(&raw[hash..], i as u32 + 1, hash as u32 + 1) {
                        out.push(a);
                    }
                }
            }
        }
    }
    out
}

/// Parse `… tft-lint: allow(<id>, reason = "…") …` out of one comment.
fn parse_allow_text(comment: &str, line: u32, col: u32) -> Option<Allow> {
    let marker = comment.find("tft-lint:")?;
    let rest = comment[marker..].strip_prefix("tft-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    // The id runs to the first `,` or `)`; the reason is the first quoted
    // string after `reason =`, so a `)` inside the reason text is fine.
    let id_end = rest.find([',', ')'])?;
    let id = rest.get(..id_end)?.trim();
    let reason = rest
        .get(id_end..)
        .and_then(|t| t.strip_prefix(','))
        .map(|t| t.trim_start())
        .and_then(|t| t.strip_prefix("reason"))
        .map(|t| t.trim_start())
        .and_then(|t| t.strip_prefix('='))
        .map(|t| t.trim_start())
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.find('"').and_then(|q| t.get(..q)).map(str::to_string));
    if id.is_empty() {
        return None;
    }
    Some(Allow {
        id: id.to_string(),
        reason: reason.filter(|r| !r.trim().is_empty()),
        line,
        col,
    })
}

/// The workspace-wide analysis bundle the call-graph passes consume:
/// per-file ASTs, the symbol table over them, the conservative call graph,
/// and reachability from the annotated roots. Built once per run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Symbol table (owns the per-file [`Ast`]s, parallel to the file list).
    pub table: SymbolTable,
    /// Call graph over the table's fn ids.
    pub graph: CallGraph,
    /// Hot-root / wire-entry reachability with witness attribution.
    pub reach: Reachability,
}

impl Analysis {
    /// Parse every Rust file (in parallel on `workers` threads — parsing
    /// dominates analysis cost) and build the graph layers on top.
    pub fn build(files: &[SourceFile], workers: usize) -> Analysis {
        let asts: Vec<Ast> = pool::par_map(workers.max(1), (0..files.len()).collect(), |i| {
            if files[i].kind == FileKind::Rust {
                ast::parse(&files[i])
            } else {
                Ast::default()
            }
        });
        let table = SymbolTable::from_asts(files, asts);
        let graph = CallGraph::build(&table, files);
        let reach = Reachability::compute(&table, &graph);
        Analysis {
            table,
            graph,
            reach,
        }
    }
}

/// A lint pass. `Sync` because the engine shares the pass list across the
/// parallel per-file workers; passes are stateless unit structs in
/// practice.
pub trait Pass: Sync {
    /// Stable kebab-case id, used in diagnostics and allow comments.
    fn id(&self) -> &'static str;
    /// One-line description for `--list` and the JSON report.
    fn description(&self) -> &'static str;
    /// Scope predicate: does this pass inspect `file` at all?
    fn applies(&self, file: &SourceFile) -> bool;
    /// Inspect one in-scope file.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
    /// Inspect the workspace as a whole (after per-file checks); default
    /// no-op. Used for invariants that span files, e.g. manifest counts.
    fn check_workspace(&self, _files: &[SourceFile], _out: &mut Vec<Diagnostic>) {}
    /// Inspect the call-graph analysis (after per-file checks); default
    /// no-op. The graph passes (`hot-path-alloc`, `pool-shared-mut`,
    /// `unchecked-arith-reachable`) live here.
    fn check_analysis(
        &self,
        _files: &[SourceFile],
        _analysis: &Analysis,
        _out: &mut Vec<Diagnostic>,
    ) {
    }
}

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving (non-suppressed, non-baselined) diagnostics, sorted by
    /// position.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics silenced by a reasoned allow.
    pub suppressed: usize,
    /// Diagnostics absorbed by the pinned baseline.
    pub baselined: usize,
    /// Files inspected.
    pub files_scanned: usize,
}

impl Report {
    /// True when the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// The engine: a pass list, a worker count, an optional baseline, and the
/// runner.
pub struct Engine {
    passes: Vec<Box<dyn Pass>>,
    workers: usize,
    baseline: Option<Baseline>,
}

impl Engine {
    /// An engine with an explicit pass list (single-worker, no baseline).
    pub fn new(passes: Vec<Box<dyn Pass>>) -> Engine {
        Engine {
            passes,
            workers: 1,
            baseline: None,
        }
    }

    /// The standard pass set (all eight workspace invariants).
    pub fn with_default_passes() -> Engine {
        Engine::new(crate::passes::default_passes())
    }

    /// Set the worker count for the parallel per-file stages. A pure
    /// throughput knob: the report is byte-identical for any value
    /// (`tests/determinism.rs` pins workers 1/2/8).
    pub fn with_workers(mut self, workers: usize) -> Engine {
        self.workers = workers.max(1);
        self
    }

    /// Attach a pinned baseline (see [`crate::baseline`]).
    pub fn with_baseline(mut self, baseline: Baseline) -> Engine {
        self.baseline = Some(baseline);
        self
    }

    /// The registered passes.
    pub fn passes(&self) -> &[Box<dyn Pass>] {
        &self.passes
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run over an explicit file set (the self-test entry point: fixtures
    /// are in-memory [`SourceFile`]s, no disk layout required).
    pub fn run_files(&self, files: &[SourceFile]) -> Report {
        let mut report = Report {
            files_scanned: files.len(),
            ..Report::default()
        };

        // Workspace analysis (parallel parse), then per-file passes in
        // parallel. par_map returns results in item order, so flattening
        // yields the same diagnostic sequence at any worker count; the
        // final position sort makes the order canonical regardless.
        let analysis = Analysis::build(files, self.workers);
        let per_file: Vec<Vec<Diagnostic>> =
            pool::par_map(self.workers, (0..files.len()).collect(), |i| {
                let file = &files[i];
                let mut out = Vec::new();
                for pass in &self.passes {
                    if pass.applies(file) {
                        pass.check(file, &mut out);
                    }
                }
                out
            });
        let mut raw: Vec<Diagnostic> = per_file.into_iter().flatten().collect();
        for pass in &self.passes {
            pass.check_workspace(files, &mut raw);
            pass.check_analysis(files, &analysis, &mut raw);
        }

        // Suppression resolution, per file.
        for file in files {
            let allows = parse_allows(file);
            let mut used = vec![false; allows.len()];
            let known_id =
                |id: &str| self.passes.iter().any(|p| p.id() == id) || id == ALLOW_MISSING_REASON;
            for diag in raw.iter_mut().filter(|d| d.file == file.rel_path) {
                for (k, a) in allows.iter().enumerate() {
                    let anchored = a.line == diag.line || a.line + 1 == diag.line;
                    if anchored && a.id == diag.pass && a.reason.is_some() {
                        used[k] = true;
                        // Mark by clearing the pass id; filtered below.
                        diag.pass.clear();
                        report.suppressed += 1;
                        break;
                    }
                }
            }
            for (k, a) in allows.iter().enumerate() {
                if a.reason.is_none() {
                    raw.push(Diagnostic {
                        pass: ALLOW_MISSING_REASON.into(),
                        file: file.rel_path.clone(),
                        line: a.line,
                        col: a.col,
                        message: format!(
                            "allow({}) has no reason; write `tft-lint: allow({}, reason = \"…\")`",
                            a.id, a.id
                        ),
                    });
                } else if !known_id(&a.id) {
                    raw.push(Diagnostic {
                        pass: UNKNOWN_LINT_ID.into(),
                        file: file.rel_path.clone(),
                        line: a.line,
                        col: a.col,
                        message: format!("allow({}) names no registered pass", a.id),
                    });
                } else if !used[k] {
                    // Dead allow. Distinguish "the pass can never fire
                    // here" (scope predicate excludes the file) from "in
                    // scope but no trigger on the anchored lines".
                    let inapplicable = self
                        .passes
                        .iter()
                        .find(|p| p.id() == a.id)
                        .is_some_and(|p| !p.applies(file));
                    if inapplicable {
                        raw.push(Diagnostic {
                            pass: INAPPLICABLE_ALLOW.into(),
                            file: file.rel_path.clone(),
                            line: a.line,
                            col: a.col,
                            message: format!(
                                "allow({}) names a pass whose scope excludes this file; \
                                 it can never fire here — delete the allow",
                                a.id
                            ),
                        });
                    } else {
                        raw.push(Diagnostic {
                            pass: STALE_ALLOW.into(),
                            file: file.rel_path.clone(),
                            line: a.line,
                            col: a.col,
                            message: format!(
                                "allow({}) suppresses nothing on this or the next line; delete it",
                                a.id
                            ),
                        });
                    }
                }
            }
        }

        let mut diagnostics: Vec<Diagnostic> =
            raw.into_iter().filter(|d| !d.pass.is_empty()).collect();
        diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.pass).cmp(&(&b.file, b.line, b.col, &b.pass))
        });
        if let Some(baseline) = &self.baseline {
            report.baselined = baseline.apply(&mut diagnostics);
        }
        report.diagnostics = diagnostics;
        report
    }

    /// Walk the workspace rooted at `root` and run every pass.
    pub fn run(&self, root: &Path) -> std::io::Result<Report> {
        let files = workspace_files(root)?;
        Ok(self.run_files(&files))
    }
}

/// Collect the workspace's lintable files: the root and per-crate
/// `Cargo.toml` manifests, and every `.rs` file under the conventional
/// source roots (`src`, `tests`, `examples`, `benches`), skipping `target`
/// and hidden directories.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let read = |p: &Path| -> std::io::Result<String> {
        Ok(String::from_utf8_lossy(&std::fs::read(p)?).into_owned())
    };

    let push_manifest = |path: PathBuf, crate_name: String, out: &mut Vec<SourceFile>| {
        if let Ok(text) = read(&path) {
            out.push(SourceFile::manifest(&rel(root, &path), &crate_name, &text));
        }
    };
    push_manifest(root.join("Cargo.toml"), "tft".into(), &mut out);

    let mut crate_dirs: Vec<(PathBuf, String)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let dir = entry.path();
            if dir.join("Cargo.toml").is_file() {
                let name = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                push_manifest(dir.join("Cargo.toml"), name.clone(), &mut out);
                crate_dirs.push((dir, name));
            }
        }
    }
    crate_dirs.push((root.to_path_buf(), "tft".into()));

    for (dir, name) in &crate_dirs {
        for sub in ["src", "tests", "examples", "benches"] {
            let top = dir.join(sub);
            if !top.is_dir() {
                continue;
            }
            let mut stack = vec![top];
            while let Some(d) = stack.pop() {
                let Ok(entries) = std::fs::read_dir(&d) else {
                    continue;
                };
                let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
                paths.sort();
                for p in paths {
                    let fname = p.file_name().map(|n| n.to_string_lossy().into_owned());
                    let hidden = fname.as_deref().is_some_and(|n| n.starts_with('.'));
                    if p.is_dir() {
                        if !hidden && fname.as_deref() != Some("target") {
                            stack.push(p);
                        }
                    } else if !hidden && p.extension().is_some_and(|e| e == "rs") {
                        if let Ok(text) = read(&p) {
                            out.push(SourceFile::rust(&rel(root, &p), name, &text));
                        }
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parsing_full_form() {
        let a = parse_allow_text(
            r#"// tft-lint: allow(no-wall-clock, reason = "bench timing")"#,
            7,
            3,
        )
        .expect("parses");
        assert_eq!(a.id, "no-wall-clock");
        assert_eq!(a.reason.as_deref(), Some("bench timing"));
        assert_eq!((a.line, a.col), (7, 3));
    }

    #[test]
    fn allow_parsing_without_reason() {
        let a = parse_allow_text("// tft-lint: allow(seed-discipline)", 1, 1).expect("parses");
        assert_eq!(a.id, "seed-discipline");
        assert_eq!(a.reason, None);
        // An empty reason string counts as missing.
        let b = parse_allow_text(r#"# tft-lint: allow(x, reason = "  ")"#, 1, 1).expect("parses");
        assert_eq!(b.reason, None);
    }

    #[test]
    fn non_allow_comments_are_ignored() {
        assert_eq!(parse_allow_text("// plain comment", 1, 1), None);
        assert_eq!(parse_allow_text("// tft-lint: allow()", 1, 1), None);
    }

    #[test]
    fn test_mod_ranges_cover_the_block() {
        let f = SourceFile::rust(
            "x.rs",
            "c",
            "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap(); }\n}\nfn c() {}",
        );
        let ranges = f.test_mod_ranges();
        assert_eq!(ranges.len(), 1);
        let (s, e) = ranges[0];
        let covered: Vec<&str> = (s..e).map(|i| f.tok_text(i)).collect();
        assert!(covered.contains(&"unwrap"));
        assert!(!covered.contains(&"c"));
    }
}
