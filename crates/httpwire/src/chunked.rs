//! Chunked transfer coding (RFC 7230 §4.1).

/// Errors decoding a chunked body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// Input ended before the final zero-size chunk.
    Truncated,
    /// A chunk-size line was not valid hex.
    BadSize,
    /// A chunk was not terminated by CRLF.
    MissingCrlf,
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::Truncated => write!(f, "chunked body truncated"),
            ChunkError::BadSize => write!(f, "bad chunk size line"),
            ChunkError::MissingCrlf => write!(f, "chunk missing CRLF terminator"),
        }
    }
}

impl std::error::Error for ChunkError {}

/// Encode `body` as chunked transfer coding with chunks of at most
/// `chunk_size` bytes.
///
/// # Panics
/// Panics if `chunk_size` is zero.
// tft-lint: hot-root — runs on every chunked response body
pub fn encode(body: &[u8], chunk_size: usize) -> Vec<u8> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut out = Vec::with_capacity(body.len() + 32);
    for chunk in body.chunks(chunk_size) {
        out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        out.extend_from_slice(chunk);
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"0\r\n\r\n");
    out
}

/// Streaming counterpart of [`encode`]: frame body pieces as they become
/// available, without buffering the whole body first.
///
/// Each [`push`](Encoder::push) emits one chunk frame for the bytes handed
/// to it (empty pushes emit nothing — a zero-sized chunk would read as the
/// terminator); [`finish`](Encoder::finish) emits the `0\r\n\r\n`
/// terminator. The concatenated output of any push segmentation decodes to
/// the concatenated inputs, which the round-trip tests below pin against
/// the hardened [`decode`].
///
/// ```
/// use httpwire::chunked::{decode, Encoder};
/// let mut enc = Encoder::new();
/// let mut wire = enc.push(b"hel");
/// wire.extend_from_slice(&enc.push(b"lo"));
/// wire.extend_from_slice(&enc.finish());
/// assert_eq!(decode(&wire).unwrap().0, b"hello");
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    finished: bool,
}

impl Encoder {
    /// A fresh encoder with no frames emitted yet.
    pub fn new() -> Encoder {
        Encoder { finished: false }
    }

    /// Frame `piece` as a single chunk. Returns the wire bytes to append
    /// to the stream; an empty `piece` produces no bytes.
    ///
    /// # Panics
    /// Panics if called after [`finish`](Encoder::finish) — the terminator
    /// is final, and bytes after it would corrupt the framing.
    pub fn push(&mut self, piece: &[u8]) -> Vec<u8> {
        assert!(!self.finished, "push after finish corrupts the stream");
        if piece.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(piece.len() + 20);
        out.extend_from_slice(format!("{:x}\r\n", piece.len()).as_bytes());
        out.extend_from_slice(piece);
        out.extend_from_slice(b"\r\n");
        out
    }

    /// Emit the zero-size terminator chunk, ending the stream. Idempotent:
    /// a second call returns no bytes.
    pub fn finish(&mut self) -> Vec<u8> {
        if self.finished {
            return Vec::new();
        }
        self.finished = true;
        b"0\r\n\r\n".to_vec()
    }

    /// Whether [`finish`](Encoder::finish) has been called.
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

/// Decode a chunked body. Returns `(body, bytes_consumed)`.
// tft-lint: hot-root — runs on every chunked response body
// tft-lint: wire-entry — parses untrusted bytes
pub fn decode(input: &[u8]) -> Result<(Vec<u8>, usize), ChunkError> {
    let mut body = Vec::new();
    let mut pos = 0;
    loop {
        let rest = input.get(pos..).ok_or(ChunkError::Truncated)?;
        let line_len = find_crlf(rest).ok_or(ChunkError::Truncated)?;
        let size_line = rest.get(..line_len).ok_or(ChunkError::Truncated)?;
        // Ignore chunk extensions after ';'.
        let size_str = size_line.split(|&b| b == b';').next().unwrap_or_default();
        let size_str = std::str::from_utf8(size_str)
            .map_err(|_| ChunkError::BadSize)?
            .trim();
        if size_str.is_empty() {
            return Err(ChunkError::BadSize);
        }
        // The declared size is attacker-controlled: all offset arithmetic
        // below is checked so `ffffffffffffffff\r\n` can't overflow.
        let size = usize::from_str_radix(size_str, 16).map_err(|_| ChunkError::BadSize)?;
        pos += line_len + 2;
        if size == 0 {
            // Trailer section: we support only the empty trailer.
            let end = pos.checked_add(2).ok_or(ChunkError::Truncated)?;
            return match input.get(pos..end) {
                Some(b"\r\n") => Ok((body, end)),
                Some(_) => Err(ChunkError::MissingCrlf),
                None => Err(ChunkError::Truncated),
            };
        }
        let data_end = pos.checked_add(size).ok_or(ChunkError::Truncated)?;
        let crlf_end = data_end.checked_add(2).ok_or(ChunkError::Truncated)?;
        let chunk = input.get(pos..data_end).ok_or(ChunkError::Truncated)?;
        match input.get(data_end..crlf_end) {
            Some(b"\r\n") => {}
            Some(_) => return Err(ChunkError::MissingCrlf),
            None => return Err(ChunkError::Truncated),
        }
        body.extend_from_slice(chunk);
        pos = crlf_end;
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let body = b"The quick brown fox jumps over the lazy dog".to_vec();
        for chunk_size in [1, 3, 7, 1024] {
            let encoded = encode(&body, chunk_size);
            let (decoded, consumed) = decode(&encoded).unwrap();
            assert_eq!(decoded, body);
            assert_eq!(consumed, encoded.len());
        }
    }

    #[test]
    fn empty_body() {
        let encoded = encode(b"", 8);
        assert_eq!(encoded, b"0\r\n\r\n");
        let (decoded, consumed) = decode(&encoded).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(consumed, 5);
    }

    #[test]
    fn trailing_bytes_not_consumed() {
        let mut encoded = encode(b"hi", 8);
        encoded.extend_from_slice(b"NEXT MESSAGE");
        let (decoded, consumed) = decode(&encoded).unwrap();
        assert_eq!(decoded, b"hi");
        assert_eq!(&encoded[consumed..], b"NEXT MESSAGE");
    }

    #[test]
    fn chunk_extension_ignored() {
        let raw = b"2;ext=1\r\nhi\r\n0\r\n\r\n";
        let (decoded, _) = decode(raw).unwrap();
        assert_eq!(decoded, b"hi");
    }

    #[test]
    fn truncation_detected() {
        let encoded = encode(b"hello world", 4);
        for cut in 0..encoded.len() {
            match decode(&encoded[..cut]) {
                Err(_) => {}
                Ok((_, consumed)) => assert!(consumed <= cut),
            }
        }
        assert_eq!(decode(b"5\r\nhel"), Err(ChunkError::Truncated));
    }

    #[test]
    fn bad_size_rejected() {
        assert_eq!(decode(b"zz\r\n\r\n"), Err(ChunkError::BadSize));
        assert_eq!(decode(b"\r\n\r\n"), Err(ChunkError::BadSize));
    }

    #[test]
    fn missing_crlf_rejected() {
        assert_eq!(decode(b"2\r\nhiXX0\r\n\r\n"), Err(ChunkError::MissingCrlf));
    }

    #[test]
    fn streaming_encoder_roundtrips_any_segmentation() {
        let body = b"incremental tables, then the annex, then done";
        for step in [1, 2, 5, 11, body.len()] {
            let mut enc = Encoder::new();
            let mut wire = Vec::new();
            for piece in body.chunks(step) {
                wire.extend_from_slice(&enc.push(piece));
            }
            wire.extend_from_slice(&enc.finish());
            let (decoded, consumed) = decode(&wire).unwrap();
            assert_eq!(decoded, body, "step {step}");
            assert_eq!(consumed, wire.len(), "step {step}");
        }
    }

    #[test]
    fn streaming_encoder_matches_whole_body_encode() {
        // One push per fixed-size chunk is exactly the batch encoding.
        let body = b"the two encoders agree on the wire";
        let mut enc = Encoder::new();
        let mut wire = Vec::new();
        for piece in body.chunks(7) {
            wire.extend_from_slice(&enc.push(piece));
        }
        wire.extend_from_slice(&enc.finish());
        assert_eq!(wire, encode(body, 7));
    }

    #[test]
    fn streaming_encoder_skips_empty_pieces() {
        // A zero-length chunk frame would read as the terminator; empty
        // pushes must emit nothing rather than end the stream early.
        let mut enc = Encoder::new();
        let mut wire = enc.push(b"");
        assert!(wire.is_empty());
        wire.extend_from_slice(&enc.push(b"tail"));
        wire.extend_from_slice(&enc.push(b""));
        wire.extend_from_slice(&enc.finish());
        let (decoded, _) = decode(&wire).unwrap();
        assert_eq!(decoded, b"tail");
    }

    #[test]
    fn streaming_encoder_finish_is_idempotent() {
        let mut enc = Encoder::new();
        assert!(!enc.is_finished());
        assert_eq!(enc.finish(), b"0\r\n\r\n");
        assert!(enc.is_finished());
        assert!(enc.finish().is_empty());
    }

    #[test]
    #[should_panic(expected = "push after finish")]
    fn streaming_encoder_rejects_push_after_finish() {
        let mut enc = Encoder::new();
        let _ = enc.finish();
        let _ = enc.push(b"late");
    }

    #[test]
    fn streaming_prefix_decodes_incrementally() {
        // The serving pattern: a client that has only the frames emitted so
        // far (no terminator) sees Truncated, and sees the full body the
        // moment finish() lands.
        let mut enc = Encoder::new();
        let mut wire = enc.push(b"partial ");
        assert_eq!(decode(&wire), Err(ChunkError::Truncated));
        wire.extend_from_slice(&enc.push(b"results"));
        assert_eq!(decode(&wire), Err(ChunkError::Truncated));
        wire.extend_from_slice(&enc.finish());
        assert_eq!(decode(&wire).unwrap().0, b"partial results");
    }
}
