//! # proxynet — the proxy-service ecosystem
//!
//! A faithful behavioural model of the measurement substrate the paper
//! rents: a Luminati-like P2P proxy service plus the surrounding Internet,
//! all running on `netsim`'s deterministic clock.
//!
//! - [`node`]: exit nodes (Hola peers) with platform eligibility, resolver
//!   configuration, churn, and installed violating software;
//! - [`username`]: the `-country-XX` / `-session-N` / `-dns-remote`
//!   username parameters;
//! - [`session`]: 60-second session stickiness;
//! - [`client`]: responses, `X-Hola-Timeline-Debug` timelines, errors;
//! - [`resilience`]: per-request deadlines, retry backoff, and per-node /
//!   per-ISP circuit breakers (all off by default);
//! - [`servers`]: the measurement web server (request log!), origin sites,
//!   landing servers;
//! - [`world`] / [`flows`]: the [`World`] runtime and the request flows of
//!   Figures 1–4 — super-proxy DNS pre-check, exit selection, up-to-five
//!   retries with per-attempt debug records, remote DNS with hijack
//!   semantics, in-path response modification, CONNECT-to-443 tunnels with
//!   TLS interception, and monitor refetch scheduling.
//!
//! ## The visibility boundary
//!
//! The measurement client sees **only** what [`World::proxy_get`] /
//! [`World::proxy_connect_tls`] return plus the logs of its own servers
//! ([`World::auth_server`], [`World::web_server`]). Ground-truth accessors
//! ([`World::node`], [`World::monitor_entities`]) exist for world
//! construction and scoring and are off-limits to analysis code — the same
//! epistemic position the paper's authors were in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod flows;
pub mod node;
pub mod resilience;
pub mod servers;
pub mod session;
pub mod smtp_flow;
pub mod username;
pub mod world;

pub use client::{
    Attempt, AttemptOutcome, ChainDamage, ProxyError, ProxyResponse, TimelineDebug, TlsProbeResult,
};
pub use flows::MAX_ATTEMPTS;
pub use node::{ExitNode, HostSoftware, NodeId, Platform, ResolverChoice, ZId};
pub use resilience::{CircuitBreakerConfig, CircuitBreakers, RetryPolicy};
pub use servers::{OriginSite, WebLogEntry, WebServer};
pub use session::{SessionTable, SESSION_TTL};
pub use smtp_flow::{MailSite, SmtpProbeResult};
pub use username::{UsernameError, UsernameOptions};
pub use world::{EvidenceMark, IspHttp, ResolverDef, World, DEFAULT_REQUEST_DEADLINE};
