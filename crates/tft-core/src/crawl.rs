//! Exit-node sampling (§3.2).
//!
//! Luminati does not allow enumerating exit nodes; the paper iterates:
//! pick a country in proportion to the exit counts Luminati reports there,
//! pick a fresh random session number, and measure whichever node answers —
//! stopping when the rate of *new* zIDs drops off (the network is dynamic,
//! so "all nodes" is never reached).

use inetdb::CountryCode;
use netsim::rng::RngExt;
use netsim::SimRng;
use proxynet::ZId;
use std::collections::{HashSet, VecDeque};

/// Country-proportional session sampler with saturation detection.
#[derive(Debug)]
pub struct Sampler {
    countries: Vec<CountryCode>,
    cumulative: Vec<u64>,
    total_weight: u64,
    rng: SimRng,
    next_session: u64,
    seen: HashSet<ZId>,
    window: VecDeque<bool>,
    window_size: usize,
    min_new: usize,
    samples_issued: usize,
}

impl Sampler {
    /// Build from the service's reported per-country exit counts.
    ///
    /// # Panics
    /// Panics if `reported` is empty or all-zero.
    pub fn new(
        reported: &[(CountryCode, usize)],
        rng: SimRng,
        window_size: usize,
        min_new: usize,
    ) -> Self {
        let mut countries = Vec::with_capacity(reported.len());
        let mut cumulative = Vec::with_capacity(reported.len());
        let mut acc = 0u64;
        for (cc, n) in reported {
            if *n == 0 {
                continue;
            }
            acc += *n as u64;
            countries.push(*cc);
            cumulative.push(acc);
        }
        assert!(acc > 0, "no exit nodes reported anywhere");
        Sampler {
            countries,
            cumulative,
            total_weight: acc,
            rng,
            next_session: 1,
            seen: HashSet::new(),
            window: VecDeque::new(),
            window_size,
            min_new,
            samples_issued: 0,
        }
    }

    /// Start session numbering at `base` instead of 1. The parallel
    /// executor gives each shard a disjoint session range so merged
    /// evidence logs never show two shards reusing one session id.
    pub fn with_session_base(mut self, base: u64) -> Self {
        self.next_session = base;
        self
    }

    /// Next `(country, session)` pair to probe.
    pub fn next_probe(&mut self) -> (CountryCode, u64) {
        let x = self.rng.random_range(0..self.total_weight);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        let session = self.next_session;
        self.next_session += 1;
        self.samples_issued += 1;
        (self.countries[idx], session)
    }

    /// Record the zID a probe reached. Returns true if it was new.
    pub fn record(&mut self, zid: &ZId) -> bool {
        let new = self.seen.insert(*zid);
        self.window.push_back(new);
        if self.window.len() > self.window_size {
            self.window.pop_front();
        }
        new
    }

    /// Record a probe that failed to reach any node.
    pub fn record_miss(&mut self) {
        self.window.push_back(false);
        if self.window.len() > self.window_size {
            self.window.pop_front();
        }
    }

    /// True when the discovery rate over the window has collapsed.
    pub fn saturated(&self) -> bool {
        self.window.len() >= self.window_size
            && self.window.iter().filter(|&&b| b).count() < self.min_new
    }

    /// Whether this zID has been seen before.
    pub fn seen(&self, zid: &ZId) -> bool {
        self.seen.contains(zid)
    }

    /// Unique nodes discovered.
    pub fn unique_nodes(&self) -> usize {
        self.seen.len()
    }

    /// Total probes issued.
    pub fn samples_issued(&self) -> usize {
        self.samples_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s)
    }

    fn sampler(counts: &[(&str, usize)]) -> Sampler {
        let reported: Vec<(CountryCode, usize)> = counts.iter().map(|(c, n)| (cc(c), *n)).collect();
        Sampler::new(&reported, SimRng::new(5), 50, 5)
    }

    #[test]
    fn sampling_is_roughly_proportional() {
        let mut s = sampler(&[("US", 9000), ("MY", 1000)]);
        let mut us = 0;
        let n = 5_000;
        for _ in 0..n {
            let (c, _) = s.next_probe();
            if c == cc("US") {
                us += 1;
            }
        }
        let frac = us as f64 / n as f64;
        assert!((0.87..0.93).contains(&frac), "US fraction {frac}");
    }

    #[test]
    fn sessions_are_unique() {
        let mut s = sampler(&[("US", 10)]);
        let a = s.next_probe().1;
        let b = s.next_probe().1;
        assert_ne!(a, b);
    }

    #[test]
    fn zero_weight_countries_never_sampled() {
        let mut s = sampler(&[("US", 100), ("KP", 0)]);
        for _ in 0..1000 {
            assert_eq!(s.next_probe().0, cc("US"));
        }
    }

    #[test]
    fn saturation_triggers_when_discovery_dries_up() {
        let mut s = sampler(&[("US", 10)]);
        // Discover 10 distinct nodes, then keep hitting them.
        for i in 0..10 {
            assert!(s.record(&ZId(i as u64)));
        }
        assert!(!s.saturated(), "window not yet full");
        for i in 0..60 {
            s.record(&ZId((i % 10) as u64));
        }
        assert!(s.saturated());
        assert_eq!(s.unique_nodes(), 10);
    }

    #[test]
    fn fresh_discoveries_defer_saturation() {
        let mut s = sampler(&[("US", 10)]);
        for i in 0..200 {
            s.record(&ZId(i as u64));
        }
        assert!(!s.saturated(), "constant discovery never saturates");
    }

    #[test]
    #[should_panic(expected = "no exit nodes")]
    fn empty_report_panics() {
        sampler(&[]);
    }
}
