//! A bounded FIFO job queue with explicit backpressure.
//!
//! The gateway runs studies on a single virtual server, so admission order
//! *is* execution order: first-in, first-out, no priorities, no reordering.
//! Depth is bounded and the queue **refuses** work when full — the caller
//! turns [`QueueFull`] into `429 Too Many Requests` with a `Retry-After`
//! derived from the queued virtual work, instead of buffering unboundedly.

use std::collections::VecDeque;

/// Returned by [`BoundedFifo::push`] when the queue is at capacity. Carries
/// the rejected item back so the caller still owns it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueFull<T>(pub T);

/// A FIFO queue that holds at most `depth` items.
#[derive(Debug)]
pub struct BoundedFifo<T> {
    depth: usize,
    items: VecDeque<T>,
    /// Pushes refused at capacity — the queue's own honest record of shed
    /// load, surfaced through [`BoundedFifo::rejections`] so overload is
    /// visible even if the caller forgets to count.
    rejected: u64,
}

impl<T> BoundedFifo<T> {
    /// An empty queue admitting at most `depth` items.
    ///
    /// # Panics
    /// Panics if `depth` is zero — a gateway that can accept nothing is a
    /// misconfiguration, not a backpressure policy.
    pub fn new(depth: usize) -> BoundedFifo<T> {
        assert!(depth > 0, "queue depth must be positive");
        BoundedFifo {
            depth,
            items: VecDeque::with_capacity(depth),
            rejected: 0,
        }
    }

    /// Append `item`, or return it inside [`QueueFull`] if at capacity
    /// (counted in [`BoundedFifo::rejections`]).
    pub fn push(&mut self, item: T) -> Result<(), QueueFull<T>> {
        if self.items.len() >= self.depth {
            self.rejected += 1;
            return Err(QueueFull(item));
        }
        self.items.push_back(item);
        Ok(())
    }

    /// Pushes refused because the queue was full, since construction.
    pub fn rejections(&self) -> u64 {
        self.rejected
    }

    /// The item that has waited longest, if any.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Remove and return the item that has waited longest.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if another [`push`](BoundedFifo::push) would be refused.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.depth
    }

    /// The configured maximum depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Iterate in queue (admission) order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = BoundedFifo::new(3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.front(), Some(&1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_returns_the_item() {
        let mut q = BoundedFifo::new(2);
        q.push("a").unwrap();
        q.push("b").unwrap();
        assert!(q.is_full());
        assert_eq!(q.push("c"), Err(QueueFull("c")));
        // Draining one slot re-admits.
        assert_eq!(q.pop(), Some("a"));
        assert!(q.push("c").is_ok());
        assert_eq!(q.rejections(), 1, "exactly the one refused push counted");
    }

    #[test]
    #[should_panic(expected = "queue depth must be positive")]
    fn zero_depth_is_rejected() {
        let _ = BoundedFifo::<u8>::new(0);
    }
}
