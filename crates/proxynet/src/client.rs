//! The Luminati-client-facing API surface: responses, debug headers, and
//! errors.

use crate::node::ZId;
use certs::Certificate;
use httpwire::{Headers, StatusCode};
use std::fmt;

/// Why one exit-node attempt failed (recorded in the debug header so the
/// client can tell a node-went-offline retry from a real answer — §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The attempt succeeded.
    Success,
    /// The exit node was offline.
    Offline,
    /// The exit node's residential link dropped the exchange.
    Flaked,
    /// The exit node's DNS resolution failed with NXDOMAIN — for the DNS
    /// experiment this *is* the signal that the node's resolver did not
    /// hijack (§4.1 step 3).
    DnsError,
    /// The exchange stalled past the per-request deadline.
    TimedOut,
    /// The node (or its whole ISP) was skipped because its circuit breaker
    /// was open.
    CircuitOpen,
    /// An outcome token this client version does not recognize. Produced
    /// only by [`TimelineDebug::parse`]: a newer proxy version emitting a
    /// new token must not erase the rest of the attempt evidence.
    Unknown,
}

impl fmt::Display for AttemptOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttemptOutcome::Success => "success",
            AttemptOutcome::Offline => "offline",
            AttemptOutcome::Flaked => "conn_failed",
            AttemptOutcome::DnsError => "dns_error",
            AttemptOutcome::TimedOut => "timeout",
            AttemptOutcome::CircuitOpen => "circuit_open",
            AttemptOutcome::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// One exit-node attempt in the debug timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attempt {
    /// The exit node's persistent id.
    pub zid: ZId,
    /// What happened.
    pub outcome: AttemptOutcome,
}

/// The parsed `X-Hola-Timeline-Debug` information.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimelineDebug {
    /// All exit nodes tried, in order, with per-attempt outcomes.
    pub attempts: Vec<Attempt>,
}

impl TimelineDebug {
    /// The zID of the node that produced the final answer (the last
    /// attempt).
    pub fn final_zid(&self) -> Option<&ZId> {
        self.attempts.last().map(|a| &a.zid)
    }

    /// Render as the header value: one `String` built in place, not a
    /// per-attempt `format!` pile joined at the end.
    pub fn to_header_value(&self) -> String {
        use std::fmt::Write as _;
        // "z" + 16 hex digits + "=" + outcome token + separator.
        let mut out = String::with_capacity(self.attempts.len() * 32);
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}={}", a.zid, a.outcome);
        }
        out
    }

    /// Parse from a header value. A structurally broken entry (no `=`, or
    /// a zID spelled in anything but the proxy's canonical form) still
    /// fails the whole parse, but an *unrecognized outcome token* maps to
    /// [`AttemptOutcome::Unknown`]: one new token from a newer proxy
    /// version must not erase the rest of the attempt evidence.
    pub fn parse(value: &str) -> Option<TimelineDebug> {
        let mut attempts = Vec::new();
        for part in value.split(',').filter(|p| !p.is_empty()) {
            let (zid, outcome) = part.split_once('=')?;
            let outcome = match outcome {
                "success" => AttemptOutcome::Success,
                "offline" => AttemptOutcome::Offline,
                "conn_failed" => AttemptOutcome::Flaked,
                "dns_error" => AttemptOutcome::DnsError,
                "timeout" => AttemptOutcome::TimedOut,
                "circuit_open" => AttemptOutcome::CircuitOpen,
                _ => AttemptOutcome::Unknown,
            };
            attempts.push(Attempt {
                zid: ZId::parse(zid)?,
                outcome,
            });
        }
        Some(TimelineDebug { attempts })
    }
}

/// A successful proxied HTTP response.
#[derive(Debug, Clone)]
pub struct ProxyResponse {
    /// Origin status code.
    pub status: StatusCode,
    /// Response headers, including `X-Hola-Timeline-Debug`.
    pub headers: Headers,
    /// Response body as delivered through the tunnel (possibly modified in
    /// flight — detecting that is the whole experiment).
    pub body: Vec<u8>,
    /// Parsed debug timeline.
    pub debug: TimelineDebug,
    /// The exit node's public address as the service reports it (Luminati
    /// exposes this; §7.2.1's VPN detection compares it against the source
    /// address seen by the origin).
    pub exit_ip: std::net::Ipv4Addr,
}

/// Client-observable transport damage to a TLS handshake: the handshake
/// bytes arrived mangled, so the chain could not be decoded cleanly. The
/// analysis layer quarantines damaged probes instead of scoring them as
/// certificate replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainDamage {
    /// Handshake bytes corrupted in flight; the chain failed to decode.
    Garbled,
    /// Handshake delivery stopped early; the chain is incomplete.
    Truncated,
}

/// A successful CONNECT + TLS-handshake certificate probe.
#[derive(Debug, Clone)]
pub struct TlsProbeResult {
    /// The certificate chain presented through the tunnel (leaf first).
    pub chain: Vec<Certificate>,
    /// Debug timeline (final zID identifies the exit node).
    pub debug: TimelineDebug,
    /// The exit node's public address as the service reports it.
    pub exit_ip: std::net::Ipv4Addr,
    /// Transport damage observed while decoding the handshake, if any.
    /// `Some` means `chain` is untrustworthy evidence.
    pub damaged: Option<ChainDamage>,
}

/// Proxy-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyError {
    /// The super proxy's own resolution of the request host failed — it
    /// refuses to forward (the reason the d₂ trick needs a
    /// source-conditional zone, §4.1).
    SuperProxyDnsFailure,
    /// No online exit node matches the requested country.
    NoExitAvailable,
    /// All retry attempts failed; the timeline lists each.
    AllRetriesFailed(TimelineDebug),
    /// The exit node received NXDOMAIN and could not connect. For the DNS
    /// experiment this is the *good* outcome: no hijacking.
    ExitDnsFailure(TimelineDebug),
    /// CONNECT to a port other than 443 (Luminati only tunnels 443, §2.3).
    PortNotAllowed(u16),
    /// CONNECT target address has no listener.
    ConnectionRefused,
    /// The per-request deadline (the paper's 20 s budget) elapsed before
    /// any attempt completed; the timeline lists what was tried.
    DeadlineExceeded(TimelineDebug),
    /// Every candidate exit had an open circuit breaker — the request
    /// failed fast without burning the retry budget on a black hole.
    CircuitOpen(TimelineDebug),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::SuperProxyDnsFailure => write!(f, "super proxy DNS resolution failed"),
            ProxyError::NoExitAvailable => write!(f, "no exit node available"),
            ProxyError::AllRetriesFailed(d) => {
                write!(f, "all {} attempts failed", d.attempts.len())
            }
            ProxyError::ExitDnsFailure(_) => write!(f, "exit node DNS resolution failed"),
            ProxyError::PortNotAllowed(p) => write!(f, "CONNECT to port {p} not allowed"),
            ProxyError::ConnectionRefused => write!(f, "connection refused"),
            ProxyError::DeadlineExceeded(d) => {
                write!(
                    f,
                    "request deadline exceeded after {} attempt(s)",
                    d.attempts.len()
                )
            }
            ProxyError::CircuitOpen(d) => {
                write!(
                    f,
                    "all exits circuit-open ({} candidate(s) skipped)",
                    d.attempts.len()
                )
            }
        }
    }
}

impl std::error::Error for ProxyError {}

impl ProxyError {
    /// The debug timeline attached to this error, if any.
    pub fn debug(&self) -> Option<&TimelineDebug> {
        match self {
            ProxyError::AllRetriesFailed(d)
            | ProxyError::ExitDnsFailure(d)
            | ProxyError::DeadlineExceeded(d)
            | ProxyError::CircuitOpen(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_header_roundtrip() {
        let d = TimelineDebug {
            attempts: vec![
                Attempt {
                    zid: ZId(0xaaaa),
                    outcome: AttemptOutcome::Offline,
                },
                Attempt {
                    zid: ZId(0xbbbb),
                    outcome: AttemptOutcome::Success,
                },
            ],
        };
        let v = d.to_header_value();
        assert_eq!(v, "z000000000000aaaa=offline,z000000000000bbbb=success");
        assert_eq!(TimelineDebug::parse(&v).unwrap(), d);
        assert_eq!(d.final_zid(), Some(&ZId(0xbbbb)));
    }

    #[test]
    fn timeline_parse_rejects_structural_garbage() {
        assert!(TimelineDebug::parse("no-equals-here").is_none());
        assert!(TimelineDebug::parse("z000000000000000a=success,no-equals-here").is_none());
        // A zID spelled in anything but the canonical form is garbage too.
        assert!(TimelineDebug::parse("za=success").is_none());
        assert_eq!(TimelineDebug::parse("").unwrap(), TimelineDebug::default());
    }

    #[test]
    fn unknown_outcome_token_does_not_erase_the_timeline() {
        // Regression: an unrecognized token used to bail the whole parse,
        // discarding every attempt's evidence. It must map to Unknown and
        // keep the rest of the timeline intact.
        let header = format!(
            "{}=offline,{}=exploded,{}=success",
            ZId(0xa),
            ZId(0xb),
            ZId(0xc)
        );
        let parsed =
            TimelineDebug::parse(&header).expect("one new token must not erase attempt evidence");
        assert_eq!(parsed.attempts.len(), 3);
        assert_eq!(parsed.attempts[0].outcome, AttemptOutcome::Offline);
        assert_eq!(parsed.attempts[1].outcome, AttemptOutcome::Unknown);
        assert_eq!(parsed.attempts[2].outcome, AttemptOutcome::Success);
        assert_eq!(parsed.final_zid(), Some(&ZId(0xc)));
        // Unknown re-renders as the literal "unknown" token and survives a
        // second round trip.
        let rendered = parsed.to_header_value();
        assert_eq!(
            rendered,
            format!(
                "{}=offline,{}=unknown,{}=success",
                ZId(0xa),
                ZId(0xb),
                ZId(0xc)
            )
        );
        assert_eq!(TimelineDebug::parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn new_outcome_tokens_roundtrip() {
        let d = TimelineDebug {
            attempts: vec![
                Attempt {
                    zid: ZId(0xa),
                    outcome: AttemptOutcome::CircuitOpen,
                },
                Attempt {
                    zid: ZId(0xb),
                    outcome: AttemptOutcome::TimedOut,
                },
            ],
        };
        let v = d.to_header_value();
        assert_eq!(v, format!("{}=circuit_open,{}=timeout", ZId(0xa), ZId(0xb)));
        assert_eq!(TimelineDebug::parse(&v).unwrap(), d);
    }

    #[test]
    fn error_debug_accessor() {
        let d = TimelineDebug {
            attempts: vec![Attempt {
                zid: ZId(1),
                outcome: AttemptOutcome::DnsError,
            }],
        };
        assert!(ProxyError::ExitDnsFailure(d.clone()).debug().is_some());
        assert!(ProxyError::DeadlineExceeded(d.clone()).debug().is_some());
        assert!(ProxyError::CircuitOpen(d.clone()).debug().is_some());
        assert!(ProxyError::SuperProxyDnsFailure.debug().is_none());
        assert!(ProxyError::PortNotAllowed(80).debug().is_none());
    }
}
