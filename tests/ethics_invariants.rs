//! The §3.4 commitments, checked as system-level invariants: probe traffic
//! only ever targets study-controlled or allowlisted hosts, and no single
//! node serves more than the per-node byte cap.

use tft::prelude::*;
use tft::tft_core::ethics::DomainAllowlist;

#[test]
fn all_dns_queries_target_study_domains_or_allowlisted_sites() {
    let mut built = build(&paper_spec(0.004, 0xE7C5));
    let cfg = StudyConfig::scaled(0.004);
    let _ = run_study(&mut built.world, &cfg);

    let mut allow = DomainAllowlist::new();
    allow.allow_suffix(&built.world.auth_apex().to_string());
    for country in built.world.rankings.countries().collect::<Vec<_>>() {
        let sites: Vec<String> = built
            .world
            .rankings
            .top_sites(country, 20)
            .map(|s| s.to_vec())
            .unwrap_or_default();
        for s in sites {
            allow.allow_exact(&s);
        }
    }
    for u in built.world.rankings.universities().to_vec() {
        allow.allow_exact(&u);
    }

    // Every query our authoritative server ever saw is for a study domain.
    for q in built.world.auth_server().log() {
        assert!(
            allow.permits(&q.qname.to_string()),
            "query for non-study domain {}",
            q.qname
        );
    }
    // Every web request is for a study domain (hosts on our web server are
    // all under the apex).
    for e in built.world.web_server().log() {
        assert!(
            allow.permits(&e.host),
            "web request for non-study host {}",
            e.host
        );
    }
}

#[test]
fn http_experiment_stays_under_per_node_cap() {
    // The four objects total ~309 KB; with the identification fetch a node
    // measured in both phases stays well under 1 MB. Verify the strongest
    // observable proxy: total billing never exceeds nodes × cap.
    let mut built = build(&paper_spec(0.004, 0xCAB));
    let cfg = StudyConfig::scaled(0.004);
    let data = tft::tft_core::http_exp::run(&mut built.world, &cfg);
    let billed = built.world.bytes_billed(&cfg.customer);
    let measured: std::collections::HashSet<_> = data.observations.iter().map(|o| o.zid).collect();
    assert!(
        billed <= (measured.len() as u64 + data.samples_issued as u64) * cfg.per_node_byte_cap,
        "billing {billed} exceeds cap envelope"
    );
    // Per-observation check: no node's recorded transfers exceed the cap.
    for obs in &data.observations {
        let bytes: usize = obs.results.iter().map(|r| r.received_len).sum();
        assert!(
            bytes as u64 <= cfg.per_node_byte_cap,
            "node {} received {bytes} bytes",
            obs.zid
        );
    }
}

#[test]
fn allowlist_blocks_sensitive_domains() {
    let mut allow = DomainAllowlist::new();
    allow.allow_suffix("tft-probe.example");
    for host in [
        "bank.example",
        "health-records.example",
        "tft-probe.example.evil.example",
    ] {
        assert!(!allow.permits(host), "{host} must not be permitted");
    }
}
