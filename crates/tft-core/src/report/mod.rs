//! Rendering: every numbered table and figure of the paper, regenerated
//! from measured data with the paper's values alongside.

pub mod annex;
pub mod csv;
pub mod figures;
pub mod tables;
