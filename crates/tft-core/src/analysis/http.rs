//! HTTP modification analysis (§5.2): HTML injection signatures and their
//! attribution, mobile image transcoding, and JS/CSS replacement.

use crate::config::StudyConfig;
use crate::obs::{HttpDataset, ProbeObject};
use inetdb::{Asn, CountryCode};
use middlebox::extract_urls;
use proxynet::World;
use std::collections::{BTreeMap, BTreeSet};

/// One injected-signature row (Table 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureRow {
    /// The signature (URL or keyword).
    pub signature: String,
    /// Nodes where it appeared.
    pub nodes: usize,
    /// Distinct node countries.
    pub countries: usize,
    /// Distinct node ASes.
    pub ases: usize,
}

/// One image-transcoding AS row (Table 7).
#[derive(Debug, Clone, PartialEq)]
pub struct ImageRow {
    /// AS number.
    pub asn: Asn,
    /// Operating ISP.
    pub isp: String,
    /// Country.
    pub country: CountryCode,
    /// Nodes with modified images.
    pub modified: usize,
    /// Nodes measured in the AS.
    pub total: usize,
    /// Distinct compression ratios observed (2 dp).
    pub ratios: Vec<f64>,
}

impl ImageRow {
    /// Modified share.
    pub fn mod_ratio(&self) -> f64 {
        self.modified as f64 / self.total as f64
    }

    /// True when the AS compresses at several operating points
    /// (Table 7's "M").
    pub fn multi_ratio(&self) -> bool {
        self.ratios.len() > 1
    }
}

/// Replaced-object summary (JS and CSS).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplacedSummary {
    /// Nodes with the object replaced.
    pub nodes: usize,
    /// …of which the replacement was an error/block page or empty.
    pub error_or_empty: usize,
}

/// Full HTTP analysis output.
#[derive(Debug, Default)]
pub struct HttpAnalysis {
    /// Nodes measured (with at least the HTML object).
    pub nodes: usize,
    /// Distinct node ASes.
    pub ases: usize,
    /// Distinct node countries.
    pub countries: usize,
    /// Nodes with modified HTML (before block-page filtering).
    pub html_modified: usize,
    /// …of which were block pages ("bandwidth exceeded", "blocked").
    pub html_block_pages: usize,
    /// …leaving genuine injections.
    pub html_injected: usize,
    /// Injection signatures, most common first (Table 6).
    pub signatures: Vec<SignatureRow>,
    /// ASes where essentially all nodes receive injected content (the
    /// ISP-appliance case, e.g. NetSpark on Internet Rimon).
    pub isp_level_injection_ases: Vec<(Asn, String, f64)>,
    /// Nodes with modified images.
    pub image_modified: usize,
    /// Image rows (Table 7), sorted by modified share descending.
    pub image_rows: Vec<ImageRow>,
    /// JS replacement summary.
    pub js: ReplacedSummary,
    /// CSS replacement summary.
    pub css: ReplacedSummary,
}

fn is_block_page(body: &[u8]) -> bool {
    if body.is_empty() {
        return true;
    }
    let text = String::from_utf8_lossy(body).to_ascii_lowercase();
    text.contains("bandwidth") || text.contains("blocked") || text.contains("exceeded")
}

/// Extract candidate injection signatures from a modified HTML body: new
/// script URLs, new `var NAME` declarations, and new meta names relative to
/// the reference page.
pub fn extract_signatures(original: &[u8], modified: &[u8]) -> Vec<String> {
    let orig_urls: BTreeSet<String> = extract_urls(original).into_iter().collect();
    let mut sigs = Vec::new();
    for url in extract_urls(modified) {
        if orig_urls.contains(&url) {
            continue;
        }
        let stripped = url
            .trim_start_matches("http://")
            .trim_start_matches("https://")
            .trim_end_matches("/inject.js")
            .to_string();
        if !stripped.is_empty() {
            sigs.push(stripped);
        }
    }
    let orig_text = String::from_utf8_lossy(original).into_owned();
    let text = String::from_utf8_lossy(modified);
    for token in find_tokens(&text, "var ", &[';', ' ', '=']) {
        if !orig_text.contains(&format!("var {token}")) {
            sigs.push(format!("var {token};"));
        }
    }
    for token in find_tokens(&text, "<meta name=\"", &['"']) {
        if !orig_text.contains(&format!("<meta name=\"{token}")) {
            sigs.push(token);
        }
    }
    sigs.sort();
    sigs.dedup();
    sigs
}

/// Find identifier-ish tokens following `prefix`, terminated by any byte in
/// `stops`.
fn find_tokens(text: &str, prefix: &str, stops: &[char]) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(prefix) {
        let after = &rest[pos + prefix.len()..];
        let end = after
            .char_indices()
            .find(|(_, c)| stops.contains(c) || c.is_whitespace())
            .map(|(i, _)| i)
            .unwrap_or(after.len());
        let token = &after[..end];
        if !token.is_empty()
            && token
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            out.push(token.to_string());
        }
        rest = &rest[pos + prefix.len()..];
    }
    out
}

/// Run the analysis.
pub fn analyze(data: &HttpDataset, world: &World, cfg: &StudyConfig) -> HttpAnalysis {
    let reg = &world.registry;
    let mut out = HttpAnalysis {
        nodes: data.observations.len(),
        ..Default::default()
    };
    let mut node_ases: BTreeSet<Asn> = BTreeSet::new();
    let mut node_countries: BTreeSet<CountryCode> = BTreeSet::new();

    struct SigAgg {
        nodes: usize,
        ases: BTreeSet<Asn>,
        countries: BTreeSet<CountryCode>,
    }
    let mut sig_aggs: BTreeMap<String, SigAgg> = BTreeMap::new();
    // AS → (injected nodes, measured nodes) for ISP-level attribution.
    let mut as_injection: BTreeMap<Asn, (usize, usize)> = BTreeMap::new();
    // AS → (modified, total, ratios) for images.
    struct ImgAgg {
        modified: usize,
        total: usize,
        ratios: BTreeSet<u64>,
    }
    let mut img_aggs: BTreeMap<Asn, ImgAgg> = BTreeMap::new();

    for obs in &data.observations {
        let asn = reg.ip_to_asn(obs.node_ip).unwrap_or(Asn(0));
        let cc = reg.country_of_ip(obs.node_ip);
        node_ases.insert(asn);
        if let Some(cc) = cc {
            node_countries.insert(cc);
        }
        let mut injected_here = false;
        for r in &obs.results {
            match r.object {
                ProbeObject::Html => {
                    as_injection.entry(asn).or_insert((0, 0)).1 += 1;
                    if let Some(body) = &r.modified_body {
                        out.html_modified += 1;
                        if is_block_page(body) {
                            out.html_block_pages += 1;
                            continue;
                        }
                        out.html_injected += 1;
                        injected_here = true;
                        let original = crate::http_exp::object_body_ref(ProbeObject::Html);
                        for sig in extract_signatures(original, body) {
                            let agg = sig_aggs.entry(sig).or_insert(SigAgg {
                                nodes: 0,
                                ases: BTreeSet::new(),
                                countries: BTreeSet::new(),
                            });
                            agg.nodes += 1;
                            agg.ases.insert(asn);
                            if let Some(cc) = cc {
                                agg.countries.insert(cc);
                            }
                        }
                    }
                }
                ProbeObject::Jpeg => {
                    let agg = img_aggs.entry(asn).or_insert(ImgAgg {
                        modified: 0,
                        total: 0,
                        ratios: BTreeSet::new(),
                    });
                    agg.total += 1;
                    if r.modified_body.is_some() {
                        agg.modified += 1;
                        out.image_modified += 1;
                        let ratio = r.received_len as f64 / r.original_len as f64;
                        agg.ratios.insert((ratio * 100.0).round() as u64);
                    }
                }
                ProbeObject::Js => {
                    if let Some(body) = &r.modified_body {
                        out.js.nodes += 1;
                        if is_block_page(body) {
                            out.js.error_or_empty += 1;
                        }
                    }
                }
                ProbeObject::Css => {
                    if let Some(body) = &r.modified_body {
                        out.css.nodes += 1;
                        if is_block_page(body) {
                            out.css.error_or_empty += 1;
                        }
                    }
                }
            }
        }
        if injected_here {
            as_injection.entry(asn).or_insert((0, 0)).0 += 1;
        }
    }
    out.ases = node_ases.len();
    out.countries = node_countries.len();

    out.signatures = sig_aggs
        .into_iter()
        .map(|(signature, a)| SignatureRow {
            signature,
            nodes: a.nodes,
            countries: a.countries.len(),
            ases: a.ases.len(),
        })
        .collect();
    out.signatures
        .sort_by(|a, b| b.nodes.cmp(&a.nodes).then(a.signature.cmp(&b.signature)));

    out.isp_level_injection_ases = as_injection
        .iter()
        .filter(|(_, (_inj, total))| *total >= cfg.min_nodes_per_as)
        .filter(|(_, (inj, total))| *inj as f64 / *total as f64 > 0.9)
        .map(|(&asn, (inj, total))| {
            let name = reg
                .asn_to_org(asn)
                .map(|o| o.name.clone())
                .unwrap_or_else(|| "unknown".into());
            (asn, name, *inj as f64 / *total as f64)
        })
        .collect();

    out.image_rows = img_aggs
        .into_iter()
        .filter(|(_, a)| a.modified > 0 && a.total >= cfg.min_nodes_per_as)
        .map(|(asn, a)| {
            let org = reg.asn_to_org(asn);
            let mut ratios: Vec<f64> = a.ratios.iter().map(|&r| r as f64 / 100.0).collect();
            ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
            ImageRow {
                asn,
                isp: org
                    .map(|o| o.name.clone())
                    .unwrap_or_else(|| "unknown".into()),
                country: org.map(|o| o.country).unwrap_or(CountryCode::new("ZZ")),
                modified: a.modified,
                total: a.total,
                ratios,
            }
        })
        .collect();
    out.image_rows.sort_by(|a, b| {
        b.mod_ratio()
            .partial_cmp(&a.mod_ratio())
            .expect("finite")
            .then(a.asn.cmp(&b.asn))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_page_detection() {
        assert!(is_block_page(b""));
        assert!(is_block_page(b"<h1>509 Bandwidth Limit Exceeded</h1>"));
        assert!(is_block_page(b"This site is BLOCKED by policy"));
        assert!(!is_block_page(b"<html>regular page</html>"));
    }

    #[test]
    fn signature_extraction_urls() {
        let orig = b"<html><body><a href=\"http://ours.example/x\">x</a></body></html>";
        let modified = b"<html><body><a href=\"http://ours.example/x\">x</a>\
            <script src=\"http://d36mw5gp02ykm5.cloudfront.example/inject.js\"></script></body></html>";
        let sigs = extract_signatures(orig, modified);
        assert_eq!(sigs, vec!["d36mw5gp02ykm5.cloudfront.example"]);
    }

    #[test]
    fn signature_extraction_keywords_and_meta() {
        let orig = b"<html><head></head><body><script>var existing;</script></body></html>";
        let modified = b"<html><head><meta name=\"NetsparkQuiltingResult\" content=\"f\"/></head>\
            <body><script>var existing;</script><script>var oiasudoj; /*x*/</script></body></html>";
        let sigs = extract_signatures(orig, modified);
        assert!(sigs.contains(&"var oiasudoj;".to_string()), "{sigs:?}");
        assert!(
            sigs.contains(&"NetsparkQuiltingResult".to_string()),
            "{sigs:?}"
        );
        assert!(!sigs.iter().any(|s| s.contains("existing")));
    }

    #[test]
    fn signature_extraction_full_path_urls() {
        let orig = b"<html></html>";
        let modified = b"<html><script src=\"http://jswrite.example/script1.js\"></script></html>";
        let sigs = extract_signatures(orig, modified);
        assert_eq!(sigs, vec!["jswrite.example/script1.js"]);
    }

    #[test]
    fn token_finder_rejects_non_identifiers() {
        let toks = find_tokens("var a=1; var b ; var $bad;", "var ", &[';', ' ', '=']);
        assert!(toks.contains(&"a".to_string()));
        assert!(toks.contains(&"b".to_string()));
        assert!(!toks.iter().any(|t| t.contains('$')));
    }
}
