//! SMTP relayed through an arbitrary-traffic VPN — the paper's future-work
//! extension (§3.4: "we could extend our methodologies for VPNs that allow
//! arbitrary traffic to be sent, enabling us to capture end-to-end
//! connectivity violations in protocols like SMTP").
//!
//! Luminati itself only tunnels port 443; this flow models the
//! *hypothetical* VPN service the paper sketches: same peer population and
//! session semantics, but raw TCP to port 25. In-path SMTP interceptors
//! (STARTTLS strippers) operate per access AS, like the other in-path
//! middleboxes.

use crate::client::{Attempt, AttemptOutcome, ProxyError, TimelineDebug};
use crate::node::NodeId;
use crate::username::UsernameOptions;
use crate::world::World;
use certs::Certificate;
use inetdb::Asn;
use middlebox::SmtpInterceptor;
use netsim::rng::RngExt;
use netsim::TraceCategory;
use smtpwire::{Capabilities, Command, MailServer, Reply};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A third-party mail server in the world.
#[derive(Debug, Clone)]
pub struct MailSite {
    /// MX hostname.
    pub host: String,
    /// Server address (port 25).
    pub ip: Ipv4Addr,
    /// The server model.
    pub server: MailServer,
    /// Certificate chain presented after STARTTLS.
    pub chain: Vec<Certificate>,
}

/// What one SMTP probe through one exit node observed.
#[derive(Debug, Clone)]
pub struct SmtpProbeResult {
    /// The 220 banner as received (possibly rewritten in path).
    pub banner: Reply,
    /// The EHLO reply as received (possibly stripped in path).
    pub ehlo: Reply,
    /// Capabilities parsed from the received EHLO reply.
    pub capabilities: Capabilities,
    /// Reply to STARTTLS, when the probe attempted the upgrade.
    pub starttls_reply: Option<Reply>,
    /// Certificate chain observed after a successful upgrade.
    pub tls_chain: Option<Vec<Certificate>>,
    /// Debug timeline (final zID identifies the exit node).
    pub debug: TimelineDebug,
    /// The exit node's address as reported by the service.
    pub exit_ip: Ipv4Addr,
}

/// World-side SMTP state, kept separate so the HTTP/S core stays untouched.
#[derive(Debug, Clone, Default)]
pub struct SmtpPlane {
    pub(crate) sites_by_ip: HashMap<Ipv4Addr, MailSite>,
    pub(crate) sites_by_host: HashMap<String, Ipv4Addr>,
    pub(crate) isp_interceptors: HashMap<Asn, SmtpInterceptor>,
}

impl World {
    /// Register a mail server.
    pub fn add_mail_site(&mut self, site: MailSite) {
        self.smtp.sites_by_host.insert(site.host.clone(), site.ip);
        self.smtp.sites_by_ip.insert(site.ip, site);
    }

    /// The address of a registered mail host.
    pub fn mail_site_address(&self, host: &str) -> Option<Ipv4Addr> {
        self.smtp.sites_by_host.get(host).copied()
    }

    /// All registered mail hosts.
    pub fn mail_hosts(&self) -> impl Iterator<Item = &str> {
        self.smtp.sites_by_host.keys().map(|s| s.as_str())
    }

    /// Install an in-path SMTP interceptor for an AS.
    pub fn set_isp_smtp(&mut self, asn: Asn, interceptor: SmtpInterceptor) {
        self.smtp.isp_interceptors.insert(asn, interceptor);
    }

    /// Ground-truth SMTP interceptor lookup (scoring only).
    pub fn isp_smtp_of(&self, asn: Asn) -> Option<&SmtpInterceptor> {
        self.smtp.isp_interceptors.get(&asn)
    }

    /// Relay an SMTP capability probe to `target:25` through an exit node
    /// of the hypothetical arbitrary-traffic VPN. Runs banner → EHLO →
    /// (STARTTLS if advertised) → QUIT, all through the node's access
    /// network and any interceptor sitting in it.
    pub fn vpn_relay_smtp(
        &mut self,
        opts: &UsernameOptions,
        target: Ipv4Addr,
    ) -> Result<SmtpProbeResult, ProxyError> {
        let t0 = self.now();
        let mut rng = self.rng.fork_indexed("latency-smtp", t0.as_millis());
        let l = self.latencies;
        self.trace.record_with(t0, TraceCategory::Client, || {
            format!("client relays SMTP probe to {target}:25 via VPN")
        });
        let mut debug = TimelineDebug::default();
        let mut tried: Vec<NodeId> = Vec::new();
        let mut t = t0 + l.client_to_super.sample(&mut rng);
        for attempt in 0..self.max_attempts {
            let node_id = if attempt == 0 {
                match self.pick_first(opts, t) {
                    Some(id) => id,
                    None => return Err(ProxyError::NoExitAvailable),
                }
            } else {
                match self.pick_exit(opts, &tried) {
                    Some(id) => id,
                    None => break,
                }
            };
            tried.push(node_id);
            let node = &self.nodes[node_id.0 as usize];
            let zid = node.zid;
            let t_exit = t + l.super_to_exit.sample(&mut rng);
            if !node.online {
                debug.attempts.push(Attempt {
                    zid,
                    outcome: AttemptOutcome::Offline,
                });
                t = t_exit + l.super_to_exit.sample(&mut rng);
                continue;
            }
            if matches!(self.fault.judge(&mut rng), netsim::FaultVerdict::Drop)
                || (node.flakiness > 0.0 && rng.random_bool(node.flakiness))
            {
                debug.attempts.push(Attempt {
                    zid,
                    outcome: AttemptOutcome::Flaked,
                });
                t = t_exit + l.super_to_exit.sample(&mut rng);
                continue;
            }
            let asn = node.asn;
            let exit_ip = node.ip;
            let Some(site) = self.smtp.sites_by_ip.get(&target).cloned() else {
                return Err(ProxyError::ConnectionRefused);
            };
            let mitm = self.smtp.isp_interceptors.get(&asn).cloned();
            let t_origin = t_exit + l.exit_to_origin.sample(&mut rng);
            self.trace.record_with(t_origin, TraceCategory::Origin, || {
                format!("mail server {} answers SMTP probe", site.host)
            });

            // Banner. Replies travel as real wire text either way: each is
            // rendered through the shard's reused scratch buffer and
            // re-parsed, exercising the codec without a per-reply String.
            let mut text = std::mem::take(&mut self.scratch.smtp_text);
            let (banner, ehlo, capabilities, starttls_reply, tls_chain) = {
                let mut filter = |cmd: Option<&Command>, reply: Reply| -> Reply {
                    reply.to_text_into(&mut text);
                    let reply = Reply::parse(&text).expect("server replies are well-formed");
                    match &mitm {
                        Some(m) => m.filter_reply(cmd, reply),
                        None => reply,
                    }
                };
                let banner = filter(None, site.server.banner());
                // EHLO.
                let ehlo_cmd = Command::Ehlo("probe.tft.example".to_string());
                let ehlo = filter(Some(&ehlo_cmd), site.server.handle(&ehlo_cmd));
                let capabilities = Capabilities::from_ehlo(&ehlo);
                // STARTTLS, if advertised end-to-end.
                let (starttls_reply, tls_chain) = if capabilities.starttls {
                    let cmd = Command::StartTls;
                    let absorbed = mitm.as_ref().map(|m| m.absorbs(&cmd)).unwrap_or(false);
                    let reply = if absorbed {
                        filter(Some(&cmd), Reply::new(220, "unused"))
                    } else {
                        filter(Some(&cmd), site.server.handle(&cmd))
                    };
                    let chain = (reply.code == 220).then(|| site.chain.clone());
                    (Some(reply), chain)
                } else {
                    (None, None)
                };
                (banner, ehlo, capabilities, starttls_reply, tls_chain)
            };
            self.scratch.smtp_text = text;

            debug.attempts.push(Attempt {
                zid,
                outcome: AttemptOutcome::Success,
            });
            let t_back = t_origin
                + l.exit_to_origin.sample(&mut rng)
                + l.super_to_exit.sample(&mut rng)
                + l.client_to_super.sample(&mut rng);
            if let Some(sid) = opts.session {
                self.sessions.touch(&opts.customer, sid, node_id, t_back);
            }
            *self.bytes_billed.entry(opts.customer.clone()).or_insert(0) += 512;
            self.advance_to(t_back);
            return Ok(SmtpProbeResult {
                banner,
                ehlo,
                capabilities,
                starttls_reply,
                tls_chain,
                debug,
                exit_ip,
            });
        }
        Err(ProxyError::AllRetriesFailed(debug))
    }
}
