//! # httpwire — HTTP/1.1 implemented from scratch
//!
//! The HTTP plane of the reproduction:
//!
//! - [`uri`]: absolute URIs (`http://host/path`), the proxy request form;
//! - [`headers`]: case-insensitive, order-preserving header map;
//! - [`request`]: requests in origin, absolute, and authority (CONNECT)
//!   forms — the super proxy receives absolute-form GETs and CONNECTs to
//!   port 443, origin servers receive origin-form GETs;
//! - [`response`]: responses with content-length, chunked, and
//!   close-delimited body framing;
//! - [`chunked`]: the chunked transfer coding, including a streaming
//!   [`chunked::Encoder`] for serving bodies incrementally;
//! - [`status`]: status codes.
//!
//! The HTTP-modification experiment (§5) compares bodies byte-for-byte, so
//! parsing and serialization must be exact; the parsers are total (no
//! panics on arbitrary input), which the property tests enforce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunked;
pub mod conn;
pub mod headers;
mod parse;
pub mod request;
pub mod response;
pub mod status;
pub mod uri;

pub use conn::RequestStream;
pub use headers::Headers;
pub use parse::ParseError;
pub use request::{Method, Request, Target};
pub use response::Response;
pub use status::StatusCode;
pub use uri::{Scheme, Uri, UriError};
