//! Scaling bench for the parallel study executor (`tft_core::exec`): the
//! same scale-0.1 campaign at workers ∈ {1, 2, 4, 8, 16, 32}.
//!
//! Output is byte-identical at every worker count (asserted by the
//! workspace determinism tests); this bench measures the only thing the
//! knob is allowed to change — wall-clock. `scripts/check.sh` runs it in
//! quick mode, archives `BENCH_parallel.json` so the speedup is tracked
//! across PRs, and fails the build if the workers-8 median regresses past
//! the workers-1 median on a machine with the cores to know better.
//!
//! The binary also installs a counting `#[global_allocator]` and reports
//! **allocations per probe** in the JSON `notes`. That number is the
//! ROADMAP allocation-overhaul metric: `tft-lint`'s `hot-path-alloc` pass
//! pushes it down, and this note pins each remediation's effect in the
//! archived trajectory.
//!
//! ## The observer effect, and why counting is gated
//!
//! The first version of this bench counted every allocation event into a
//! single `AtomicU64` — including during the timed runs. One shared,
//! contended cache line hit ~230M times per study run taxes precisely the
//! configurations the bench exists to showcase: with 8 workers on 8 cores,
//! every allocation bounces the counter line across cores, and the
//! "scaling" curve measured the *instrument*, not the executor. The
//! counter is therefore (a) **gated** — timed runs pay one relaxed load of
//! a read-shared flag, never a write — and (b) **sharded** into
//! cache-line-padded per-thread slots for the dedicated accounting runs,
//! so even those don't serialize on one line. Accounting runs are separate
//! from timed runs and record their per-worker-count event totals in the
//! notes (`alloc_events_workers{N}`), which doubles as evidence that the
//! work itself is worker-count-invariant.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use substrate::bench::Harness;
use substrate::json::Json;
use tft_core::{run_study_with, ExecOptions, StudyConfig, StudyReport};

/// Shard count for the event counter. More than any worker count the bench
/// drives *cores* at (threads share slots round-robin beyond this), enough
/// that concurrent counting threads virtually never share a line.
const COUNTER_SHARDS: usize = 16;

/// One counter alone on its cache line, so shards never false-share.
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

/// Whether allocation events are being counted. Off during timed runs:
/// the only cost the instrument may impose there is a relaxed load of
/// this flag — a read-shared line, never written mid-run.
static COUNTING: AtomicBool = AtomicBool::new(false);

/// Per-thread-assigned counter shards (see [`COUNTER_SHARDS`]).
static SHARDS: [PaddedCounter; COUNTER_SHARDS] =
    [const { PaddedCounter(AtomicU64::new(0)) }; COUNTER_SHARDS];

/// Next shard to hand to a counting thread that doesn't have one yet.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// This thread's shard index; `usize::MAX` until first counted event.
    /// Const-initialized `Cell` so the TLS access itself never allocates
    /// (the allocator must not re-enter itself).
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Count one allocation event into this thread's shard.
#[inline]
fn count_event() {
    MY_SHARD.with(|slot| {
        let mut k = slot.get();
        if k == usize::MAX {
            k = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            slot.set(k);
        }
        SHARDS[k].0.fetch_add(1, Ordering::Relaxed);
    });
}

/// Sum of all shards. Only meaningful while no one is counting.
fn total_events() -> u64 {
    SHARDS.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
}

/// Zero all shards.
fn reset_events() {
    for c in &SHARDS {
        c.0.store(0, Ordering::Relaxed);
    }
}

/// `System` with a gated, sharded allocation-event counter. Counts `alloc`
/// and growth `realloc` calls — the events a hot-path `format!` or
/// `.clone()` emits — not bytes, because per-probe churn is what the lint
/// pass targets.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            count_event();
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            count_event();
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Worker counts the bench sweeps, for both accounting and timing.
const WORKER_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Probes issued across all four experiments in one study run.
fn probes_issued(report: &StudyReport) -> u64 {
    (report.dns_data.samples_issued
        + report.http_data.samples_issued
        + report.https_data.samples_issued
        + report.monitor_data.samples_issued) as u64
}

fn main() {
    let mut h = Harness::new("parallel");
    let scale = 0.1;
    let cfg = StudyConfig::scaled(scale);
    // One pristine world, cloned per run: world construction is cheap
    // relative to the study, and every run must start from identical state.
    let pristine = worldgen::build(&worldgen::paper_spec(scale, 0xBE7C)).world;
    // One discarded run so the first measured worker count does not absorb
    // process-lifetime warmup (page faults, allocator growth). Quick mode
    // skips the harness's own warmup, so this keeps the comparison fair.
    {
        let mut world = pristine.clone();
        black_box(run_study_with(
            &mut world,
            &cfg,
            &ExecOptions::with_workers(1),
        ));
    }
    // Allocation accounting: one dedicated counted run per worker count,
    // all before the timed loop. The per-worker totals land in the notes —
    // near-identical numbers across worker counts are direct evidence the
    // parallel executor does the same work regardless of the knob.
    for workers in WORKER_COUNTS {
        let mut world = pristine.clone();
        reset_events();
        COUNTING.store(true, Ordering::Relaxed);
        let report = run_study_with(&mut world, &cfg, &ExecOptions::with_workers(workers));
        COUNTING.store(false, Ordering::Relaxed);
        let allocs = total_events();
        h.note(
            &format!("alloc_events_workers{workers}"),
            Json::uint(allocs),
        );
        if workers == 1 {
            let probes = probes_issued(&report);
            h.note("alloc_events_single_worker_run", Json::uint(allocs));
            h.note("probes_issued", Json::uint(probes));
            if probes > 0 {
                let per_probe = allocs as f64 / probes as f64;
                h.note("allocs_per_probe", Json::float(per_probe));
                eprintln!("[parallel] {allocs} allocation events / {probes} probes = {per_probe:.1} allocs/probe");
            }
        }
    }
    for workers in WORKER_COUNTS {
        h.bench(&format!("run_study/scale{scale}/workers{workers}"), || {
            let mut world = pristine.clone();
            black_box(run_study_with(
                &mut world,
                &cfg,
                &ExecOptions::with_workers(workers),
            ))
        });
    }
    h.finish();
}
