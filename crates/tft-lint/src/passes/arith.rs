//! `unchecked-arith-reachable`: overflow discipline propagated through the
//! call graph from wire-parser entry points.
//!
//! PR 3 made the wire parsers overflow-safe at their surface (the chunked
//! decoder bug). But a helper three calls deep still does `len * count`
//! on attacker-influenced lengths, and a per-file pass cannot see that the
//! helper is reachable from `decode(&[u8])`. This pass can: any function
//! reachable from a `// tft-lint: wire-entry` annotation is *tainted*, and
//! inside it the pass flags
//!
//! - bare binary `+` / `*` (and `+=` / `*=`) — use `checked_add` /
//!   `checked_mul` / `saturating_*` / `wrapping_*` as appropriate;
//! - `as` casts to narrowing integer targets (`u8`/`u16`/`u32` and signed
//!   counterparts) — use `try_from` so truncation is an error, not a
//!   silent wrap.
//!
//! Over-approximation note: the engine has no types, so float math,
//! pointer-sized indexing arithmetic, and provably-in-range sums fire too.
//! Keep wire-reachable helpers small and checked, or carry a reasoned
//! allow explaining the range argument.

use super::in_src;
use crate::ast::value_ending;
use crate::engine::{Analysis, Diagnostic, FileKind, Pass, SourceFile};
use crate::lexer::TokKind;

/// Flag unchecked arithmetic in wire-entry-reachable functions.
pub struct UncheckedArithReachable;

/// Integer types an `as` cast can silently truncate into.
const NARROW_TARGETS: [&str; 6] = ["i16", "i32", "i8", "u16", "u32", "u8"];

impl Pass for UncheckedArithReachable {
    fn id(&self) -> &'static str {
        "unchecked-arith-reachable"
    }

    fn description(&self) -> &'static str {
        "forbid bare +/* and narrowing `as` casts in functions reachable from a \
         `// tft-lint: wire-entry` annotation; use checked/saturating ops and try_from"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.kind == FileKind::Rust && in_src(file)
    }

    fn check(&self, _file: &SourceFile, _out: &mut Vec<Diagnostic>) {}

    fn check_analysis(&self, files: &[SourceFile], analysis: &Analysis, out: &mut Vec<Diagnostic>) {
        let table = &analysis.table;
        for id in 0..table.len() {
            let Some(root) = analysis.reach.wire[id] else {
                continue;
            };
            let node = table.node(id);
            let file = &files[table.fns[id].file];
            if node.in_test_mod || !self.applies(file) {
                continue;
            }
            let Some((body_start, body_end)) = node.body else {
                continue;
            };
            let via = if root == id {
                "is an annotated wire entry".to_string()
            } else {
                format!("is reachable from wire entry {}", table.label(files, root))
            };
            let body: Vec<usize> = (body_start..body_end.min(file.tokens.len()))
                .filter(|&i| {
                    !matches!(
                        file.tokens[i].kind,
                        TokKind::LineComment | TokKind::BlockComment
                    )
                })
                .collect();
            let text = |w: usize| -> &str {
                body.get(w)
                    .map(|&i| file.tokens[i].text(&file.text))
                    .unwrap_or("")
            };
            for w in 0..body.len() {
                let t = &file.tokens[body[w]];
                let cur = t.text(&file.text);
                match cur {
                    "+" | "*" => {
                        // Binary iff the previous token can end a value
                        // (separates `a * b` from deref `*p`, `a + b` from
                        // unary plus-less paths, and `use x::*`). Compound
                        // assignment (`+=`) is caught one token earlier,
                        // so skip when `=` follows.
                        if text(w + 1) == "=" {
                            let prev_ident = w > 0
                                && body
                                    .get(w - 1)
                                    .is_some_and(|&i| file.tokens[i].kind == TokKind::Ident);
                            if prev_ident {
                                out.push(self.diag(
                                    file,
                                    t.line,
                                    t.col,
                                    &format!(
                                    "unchecked `{cur}=` and `{}` {via}; lengths and counts from \
                                     the wire overflow — use checked_{} / saturating_{}",
                                    node.name, op_name(cur), op_name(cur)
                                ),
                                ));
                            }
                            continue;
                        }
                        let prev_ends_value = w > 0
                            && body.get(w - 1).is_some_and(|&i| {
                                let p = &file.tokens[i];
                                value_ending(p.kind, p.text(&file.text))
                            });
                        if prev_ends_value {
                            out.push(self.diag(
                                file,
                                t.line,
                                t.col,
                                &format!(
                                "unchecked `{cur}` and `{}` {via}; lengths and counts from the \
                                 wire overflow — use checked_{} / saturating_{}",
                                node.name, op_name(cur), op_name(cur)
                            ),
                            ));
                        }
                    }
                    "as" => {
                        let target = text(w + 1);
                        if NARROW_TARGETS.contains(&target) {
                            out.push(self.diag(
                                file,
                                t.line,
                                t.col,
                                &format!(
                                    "`as {target}` narrows silently and `{}` {via}; use \
                                 {target}::try_from so truncation is an error",
                                    node.name
                                ),
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

fn op_name(op: &str) -> &'static str {
    if op == "+" {
        "add"
    } else {
        "mul"
    }
}

impl UncheckedArithReachable {
    fn diag(&self, file: &SourceFile, line: u32, col: u32, message: &str) -> Diagnostic {
        Diagnostic {
            pass: self.id().into(),
            file: file.rel_path.clone(),
            line,
            col,
            message: message.to_string(),
        }
    }
}
