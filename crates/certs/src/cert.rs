//! Certificate data model.
//!
//! A deliberately simplified X.509: enough structure for everything the
//! paper's HTTPS experiment reads — subject/issuer distinguished names
//! (the *Issuer Common Name* is the primary attribution signal of Table 8),
//! validity windows, subject-alternative names, CA flags, and a key identity
//! that models signatures (`signed by K` ⇔ `issuer_key == K`). Real
//! cryptography is substituted away: the paper never verifies signatures
//! cryptographically either — it runs `openssl verify` chain logic, which
//! this crate reimplements over simulated keys.

use netsim::SimTime;
use std::fmt;
use substrate::json::{FromJson, Json, JsonError, ToJson};
use substrate::json_struct;

/// A (simulated) public key identity. Two certificates carrying the same
/// `KeyId` "share a public key" — the observation the paper makes about
/// anti-virus products reusing one key for every spoofed certificate on a
/// host (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u64);

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key:{:016x}", self.0)
    }
}

/// A distinguished name (the subset of RDNs the analysis reads).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DistinguishedName {
    /// Common Name (CN) — for leaf certs usually the hostname; for issuers
    /// the product or CA name ("Avast Web/Mail Shield Root", …).
    pub common_name: String,
    /// Organization (O).
    pub organization: Option<String>,
    /// Country (C).
    pub country: Option<String>,
}

impl DistinguishedName {
    /// A DN with only a common name.
    pub fn cn(common_name: &str) -> Self {
        DistinguishedName {
            common_name: common_name.to_string(),
            organization: None,
            country: None,
        }
    }

    /// A DN with CN and O.
    pub fn cn_o(common_name: &str, organization: &str) -> Self {
        DistinguishedName {
            common_name: common_name.to_string(),
            organization: Some(organization.to_string()),
            country: None,
        }
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CN={}", self.common_name)?;
        if let Some(o) = &self.organization {
            write!(f, ", O={o}")?;
        }
        if let Some(c) = &self.country {
            write!(f, ", C={c}")?;
        }
        Ok(())
    }
}

/// A certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Serial number (unique per issuer in well-formed PKIs).
    pub serial: u64,
    /// Subject distinguished name.
    pub subject: DistinguishedName,
    /// Issuer distinguished name.
    pub issuer: DistinguishedName,
    /// The subject's public key.
    pub subject_key: KeyId,
    /// The key that signed this certificate.
    pub issuer_key: KeyId,
    /// Start of validity.
    pub not_before: SimTime,
    /// End of validity.
    pub not_after: SimTime,
    /// Subject alternative names (DNS names; wildcards allowed).
    pub san: Vec<String>,
    /// CA flag (basicConstraints).
    pub is_ca: bool,
}

impl Certificate {
    /// True if this certificate is self-signed (issuer == subject and the
    /// key signed itself).
    pub fn is_self_signed(&self) -> bool {
        self.issuer == self.subject && self.issuer_key == self.subject_key
    }

    /// True if `now` is inside the validity window.
    pub fn is_time_valid(&self, now: SimTime) -> bool {
        self.not_before <= now && now <= self.not_after
    }

    /// True if `hostname` matches the CN or any SAN entry, with single-label
    /// wildcard support (`*.example.com` matches `a.example.com` but not
    /// `a.b.example.com` or `example.com`).
    pub fn matches_hostname(&self, hostname: &str) -> bool {
        let host = hostname.to_ascii_lowercase();
        std::iter::once(self.subject.common_name.as_str())
            .chain(self.san.iter().map(|s| s.as_str()))
            .any(|pattern| host_matches(&pattern.to_ascii_lowercase(), &host))
    }

    /// A stable fingerprint over all fields, for exact-identity comparison
    /// (the invalid-site check in §6.1 compares certificates exactly).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(&self.serial.to_be_bytes());
        eat(self.subject.to_string().as_bytes());
        eat(self.issuer.to_string().as_bytes());
        eat(&self.subject_key.0.to_be_bytes());
        eat(&self.issuer_key.0.to_be_bytes());
        eat(&self.not_before.as_millis().to_be_bytes());
        eat(&self.not_after.as_millis().to_be_bytes());
        for s in &self.san {
            eat(s.as_bytes());
        }
        eat(&[self.is_ca as u8]);
        h
    }
}

impl ToJson for KeyId {
    fn to_json(&self) -> Json {
        Json::uint(self.0)
    }
}

impl FromJson for KeyId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u64()
            .map(KeyId)
            .ok_or_else(|| JsonError::shape("KeyId: expected unsigned integer"))
    }
}

json_struct!(DistinguishedName {
    common_name,
    organization: None,
    country: None,
});

json_struct!(Certificate {
    serial,
    subject,
    issuer,
    subject_key,
    issuer_key,
    not_before,
    not_after,
    san,
    is_ca,
});

fn host_matches(pattern: &str, host: &str) -> bool {
    if let Some(suffix) = pattern.strip_prefix("*.") {
        // Exactly one extra label on the left.
        match host.split_once('.') {
            Some((first_label, rest)) => !first_label.is_empty() && rest == suffix,
            None => false,
        }
    } else {
        pattern == host
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    fn cert(cn: &str, san: &[&str]) -> Certificate {
        Certificate {
            serial: 1,
            subject: DistinguishedName::cn(cn),
            issuer: DistinguishedName::cn("Test CA"),
            subject_key: KeyId(1),
            issuer_key: KeyId(2),
            not_before: SimTime::EPOCH,
            not_after: SimTime::EPOCH + SimDuration::from_days(365),
            san: san.iter().map(|s| s.to_string()).collect(),
            is_ca: false,
        }
    }

    #[test]
    fn exact_hostname_match() {
        let c = cert("www.example.com", &[]);
        assert!(c.matches_hostname("www.example.com"));
        assert!(c.matches_hostname("WWW.EXAMPLE.COM"));
        assert!(!c.matches_hostname("example.com"));
    }

    #[test]
    fn san_match() {
        let c = cert("cdn.example.net", &["www.example.com", "example.com"]);
        assert!(c.matches_hostname("example.com"));
        assert!(c.matches_hostname("www.example.com"));
        assert!(!c.matches_hostname("mail.example.com"));
    }

    #[test]
    fn wildcard_matches_one_label_only() {
        let c = cert("*.example.com", &[]);
        assert!(c.matches_hostname("a.example.com"));
        assert!(!c.matches_hostname("a.b.example.com"));
        assert!(!c.matches_hostname("example.com"));
    }

    #[test]
    fn time_validity() {
        let c = cert("x", &[]);
        assert!(c.is_time_valid(SimTime::EPOCH));
        assert!(c.is_time_valid(SimTime::EPOCH + SimDuration::from_days(364)));
        assert!(!c.is_time_valid(SimTime::EPOCH + SimDuration::from_days(366)));
    }

    #[test]
    fn self_signed_detection() {
        let mut c = cert("x", &[]);
        assert!(!c.is_self_signed());
        c.issuer = c.subject.clone();
        c.issuer_key = c.subject_key;
        assert!(c.is_self_signed());
    }

    #[test]
    fn fingerprint_distinguishes_fields() {
        let a = cert("x", &[]);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.serial = 2;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.san.push("extra.example".into());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn dn_display() {
        let dn = DistinguishedName {
            common_name: "Avast Web/Mail Shield Root".into(),
            organization: Some("Avast".into()),
            country: Some("CZ".into()),
        };
        assert_eq!(
            dn.to_string(),
            "CN=Avast Web/Mail Shield Root, O=Avast, C=CZ"
        );
    }
}
