//! End-to-end tests of the proxy flows against a hand-built mini-world.

use certs::{DistinguishedName, RootStore};
use dnswire::{server::inetdb_net::Net, AnswerOverride, DnsName};
use httpwire::{Response, StatusCode, Uri};
use inetdb::{CountryCode, InternetRegistry};
use middlebox::{
    monitor::profiles, HijackVector, InvalidCertPolicy, JsFamily, MonitorEntity, NxdomainHijacker,
    Selectivity, SourcePattern, TlsInterceptor,
};
use netsim::{SimDuration, SimRng, SimTime};
use proxynet::{
    AttemptOutcome, ExitNode, NodeId, Platform, ProxyError, ResolverChoice, ResolverDef,
    UsernameOptions, World,
};
use std::net::Ipv4Addr;

fn cc(s: &str) -> CountryCode {
    CountryCode::new(s)
}

fn name(s: &str) -> DnsName {
    DnsName::parse(s).unwrap()
}

/// A small world: one US ISP with a clean resolver, one MY ISP whose
/// resolver hijacks NXDOMAIN, our measurement servers, and a handful of
/// nodes.
struct Mini {
    world: World,
    clean_resolver: Ipv4Addr,
    hijack_resolver: Ipv4Addr,
    landing_ip: Ipv4Addr,
}

fn mini_world() -> Mini {
    let mut reg = InternetRegistry::new();
    let google = reg.register_org("Google", cc("US"));
    let ganet = inetdb::GOOGLE_ANYCAST_NET.parse().unwrap();
    let gasn = reg.register_as_with_prefix(google, ganet);

    let us_org = reg.register_org("CleanNet US", cc("US"));
    let us_asn = reg.register_as(us_org, 1);
    let my_org = reg.register_org("TMnet", cc("MY"));
    let my_asn = reg.register_as(my_org, 1);
    let meas_org = reg.register_org("Measurement Lab", cc("US"));
    let meas_asn = reg.register_as(meas_org, 1);

    let clean_resolver = reg.alloc_ip(us_asn);
    let hijack_resolver = reg.alloc_ip(my_asn);
    let landing_ip = reg.alloc_ip(my_asn);
    let web_ip = reg.alloc_ip(meas_asn);
    let anycast: Vec<Ipv4Addr> = (0..4).map(|_| reg.alloc_ip(gasn)).collect();

    let node_ips: Vec<(Ipv4Addr, inetdb::Asn, &str)> = vec![
        (reg.alloc_ip(us_asn), us_asn, "US"),
        (reg.alloc_ip(us_asn), us_asn, "US"),
        (reg.alloc_ip(my_asn), my_asn, "MY"),
        (reg.alloc_ip(my_asn), my_asn, "MY"),
    ];
    reg.snapshot_rib();

    let mut rng = SimRng::new(77);
    let (roots, _cas) = RootStore::os_x_like(5, SimTime::EPOCH, &mut rng);
    let mut world = World::new(42, name("tft-probe.example"), web_ip, anycast, reg, roots);

    world.add_resolver(ResolverDef {
        ip: clean_resolver,
        asn: us_asn,
        hijacker: None,
    });
    let hijacker = NxdomainHijacker::new(
        HijackVector::IspResolver,
        vec!["http://midascdn.nervesis.example/assist".into()],
        landing_ip,
        JsFamily::Custom,
    );
    world.add_resolver(ResolverDef {
        ip: hijack_resolver,
        asn: my_asn,
        hijacker: Some(hijacker.clone()),
    });
    world.add_landing(landing_ip, hijacker);

    for (i, (ip, asn, country)) in node_ips.into_iter().enumerate() {
        let resolver = if country == "US" {
            ResolverChoice::Isp(clean_resolver)
        } else {
            ResolverChoice::Isp(hijack_resolver)
        };
        world.add_node(ExitNode::new(
            NodeId(i as u32),
            ip,
            asn,
            cc(country),
            Platform::Windows,
            resolver,
        ));
    }
    Mini {
        world,
        clean_resolver,
        hijack_resolver,
        landing_ip,
    }
}

/// Provision d1 (resolves for everyone) and d2 (NXDOMAIN except to the
/// super proxy's Google resolver) exactly as §4.1 describes.
fn provision_probe_pair(world: &mut World, tag: &str) -> (String, String) {
    let d1 = format!("d1-{tag}.tft-probe.example");
    let d2 = format!("d2-{tag}.tft-probe.example");
    let web_ip = world.web_ip();
    let zone = world.auth_server_mut().zone_mut();
    zone.add_a(name(&d1), web_ip);
    zone.add_a(name(&d2), web_ip);
    world.auth_server_mut().set_override(
        name(&d2),
        AnswerOverride::NxdomainUnlessFrom(vec![Net::new(Ipv4Addr::new(74, 125, 0, 0), 16)]),
    );
    world.web_server_mut().put(
        &d1,
        "/",
        Response::ok("text/html", b"<html>probe</html>".to_vec()),
    );
    world.web_server_mut().put(
        &d2,
        "/",
        Response::ok("text/html", b"<html>probe</html>".to_vec()),
    );
    (d1, d2)
}

#[test]
fn d1_reveals_exit_node_resolver_and_ip() {
    let mut m = mini_world();
    let (d1, _) = provision_probe_pair(&mut m.world, "a");
    let opts = UsernameOptions::new("lab")
        .country(cc("US"))
        .session(1)
        .dns_remote();
    let resp = m
        .world
        .proxy_get(&opts, &Uri::http(&d1, "/"))
        .expect("d1 fetch succeeds");
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(resp.body, b"<html>probe</html>");
    let zid = *resp.debug.final_zid().unwrap();

    // Our DNS log shows two queries: the super proxy's (from Google
    // anycast) and the exit node's resolver.
    let dname = name(&d1);
    let sources: Vec<Ipv4Addr> = m
        .world
        .auth_server()
        .queries_for(&dname)
        .map(|q| q.src)
        .collect();
    assert_eq!(sources.len(), 2);
    assert_eq!(sources[0], m.world.super_proxy_dns_src());
    assert_eq!(sources[1], m.clean_resolver);

    // Our web log shows the exit node's IP.
    let hits: Vec<_> = m.world.web_server().requests_for_host(&d1).collect();
    assert_eq!(hits.len(), 1);
    let node_ip = hits[0].src;
    let gt_node = m
        .world
        .node_ids()
        .map(|id| m.world.node(id))
        .find(|n| n.ip == node_ip)
        .expect("observed IP belongs to a node");
    assert_eq!(&gt_node.zid, &zid);
    assert_eq!(gt_node.country, cc("US"));
}

#[test]
fn d2_unhijacked_node_reports_dns_error() {
    let mut m = mini_world();
    let (d1, d2) = provision_probe_pair(&mut m.world, "b");
    let opts = UsernameOptions::new("lab")
        .country(cc("US"))
        .session(7)
        .dns_remote();
    let first = m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
    let zid1 = *first.debug.final_zid().unwrap();

    match m.world.proxy_get(&opts, &Uri::http(&d2, "/")) {
        Err(ProxyError::ExitDnsFailure(debug)) => {
            // Same session → same exit node, and the failure is attributed
            // to it in the timeline.
            assert_eq!(debug.final_zid().unwrap(), &zid1);
            assert_eq!(
                debug.attempts.last().unwrap().outcome,
                AttemptOutcome::DnsError
            );
        }
        other => panic!("expected ExitDnsFailure, got {other:?}"),
    }
    // The exit node's resolver *did* query us and got NXDOMAIN.
    let srcs: Vec<Ipv4Addr> = m
        .world
        .auth_server()
        .queries_for(&name(&d2))
        .map(|q| q.src)
        .collect();
    assert!(srcs.contains(&m.clean_resolver));
}

#[test]
fn d2_hijacked_node_returns_assist_content() {
    let mut m = mini_world();
    let (d1, d2) = provision_probe_pair(&mut m.world, "c");
    let opts = UsernameOptions::new("lab")
        .country(cc("MY"))
        .session(9)
        .dns_remote();
    m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
    let resp = m
        .world
        .proxy_get(&opts, &Uri::http(&d2, "/"))
        .expect("hijacked fetch yields content, not an error");
    assert_eq!(resp.status, StatusCode::OK);
    let urls = middlebox::extract_urls(&resp.body);
    assert!(
        urls.iter().any(|u| u.contains("midascdn.nervesis.example")),
        "hijack page links to the assist service, got {urls:?}"
    );
    let _ = m.hijack_resolver;
    let _ = m.landing_ip;
}

#[test]
fn super_proxy_refuses_unresolvable_domains() {
    let mut m = mini_world();
    // d2-style name without the super-proxy exemption: NXDOMAIN for all.
    let d = "never-provisioned.tft-probe.example";
    let opts = UsernameOptions::new("lab").dns_remote();
    assert_eq!(
        m.world.proxy_get(&opts, &Uri::http(d, "/")).err(),
        Some(ProxyError::SuperProxyDnsFailure)
    );
}

#[test]
fn session_pins_same_node_within_ttl_and_expires() {
    let mut m = mini_world();
    let (d1, _) = provision_probe_pair(&mut m.world, "d");
    let opts = UsernameOptions::new("lab").country(cc("US")).session(42);
    let a = m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
    let b = m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
    assert_eq!(a.debug.final_zid(), b.debug.final_zid());

    // After 60+ seconds of inactivity the pin is gone; with only two US
    // nodes the new pick may coincide, so instead assert the table forgot.
    m.world.advance(SimDuration::from_secs(61));
    let c = m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
    assert!(c.debug.final_zid().is_some());
}

#[test]
fn offline_node_triggers_retry_with_debug_trail() {
    let mut m = mini_world();
    let (d1, _) = provision_probe_pair(&mut m.world, "e");
    // Pin a session to a node, then take it offline.
    let opts = UsernameOptions::new("lab").country(cc("US")).session(5);
    let first = m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
    let zid1 = *first.debug.final_zid().unwrap();
    let node_id = m
        .world
        .node_ids()
        .find(|id| m.world.node(*id).zid == zid1)
        .unwrap();
    m.world.node_mut(node_id).online = false;

    let second = m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
    assert!(
        second.debug.attempts.len() >= 2,
        "expected a retry trail, got {:?}",
        second.debug
    );
    assert_eq!(second.debug.attempts[0].zid, zid1);
    assert_eq!(second.debug.attempts[0].outcome, AttemptOutcome::Offline);
    assert_eq!(
        second.debug.attempts.last().unwrap().outcome,
        AttemptOutcome::Success
    );
    assert_ne!(second.debug.final_zid().unwrap(), &zid1);
}

#[test]
fn country_selection_is_honored() {
    let mut m = mini_world();
    let (d1, _) = provision_probe_pair(&mut m.world, "f");
    for _ in 0..10 {
        let opts = UsernameOptions::new("lab").country(cc("MY"));
        let resp = m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
        let zid = *resp.debug.final_zid().unwrap();
        let node = m
            .world
            .node_ids()
            .map(|id| m.world.node(id))
            .find(|n| n.zid == zid)
            .unwrap();
        assert_eq!(node.country, cc("MY"));
    }
}

#[test]
fn unknown_country_yields_no_exit() {
    let mut m = mini_world();
    let (d1, _) = provision_probe_pair(&mut m.world, "g");
    let opts = UsernameOptions::new("lab").country(cc("JP"));
    assert_eq!(
        m.world.proxy_get(&opts, &Uri::http(&d1, "/")).err(),
        Some(ProxyError::NoExitAvailable)
    );
}

#[test]
fn billing_accumulates_body_bytes() {
    let mut m = mini_world();
    let (d1, _) = provision_probe_pair(&mut m.world, "h");
    let opts = UsernameOptions::new("payer").country(cc("US"));
    assert_eq!(m.world.bytes_billed("payer"), 0);
    m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
    assert_eq!(
        m.world.bytes_billed("payer"),
        b"<html>probe</html>".len() as u64
    );
}

#[test]
fn connect_restricted_to_port_443() {
    let mut m = mini_world();
    let opts = UsernameOptions::new("lab");
    assert_eq!(
        m.world
            .proxy_connect_tls(&opts, Ipv4Addr::new(1, 2, 3, 4), 80, "x")
            .err(),
        Some(ProxyError::PortNotAllowed(80))
    );
}

#[test]
fn tls_interception_replaces_chain_only_on_infected_nodes() {
    let mut m = mini_world();
    // Build an HTTPS origin site signed by a public root.
    let mut rng = SimRng::new(9);
    let now = m.world.now();
    let (roots2, mut cas) = RootStore::os_x_like(1, SimTime::EPOCH, &mut rng);
    // Merge the extra CA into the world's store by re-creating the world is
    // overkill; instead sign with a CA whose root we add to a fresh store.
    let leaf = cas[0].issue_leaf("top1.us.example", now, &mut rng);
    let chain = vec![leaf, cas[0].cert.clone()];
    let site_ip = Ipv4Addr::new(198, 51, 100, 44);
    m.world.add_origin_site(proxynet::OriginSite {
        host: "top1.us.example".into(),
        ip: site_ip,
        http_body: b"<html>top</html>".to_vec(),
        chain: chain.clone(),
        chain_valid: true,
    });
    let _ = roots2;

    // Clean node first.
    let opts = UsernameOptions::new("lab").country(cc("US")).session(77);
    let clean = m
        .world
        .proxy_connect_tls(&opts, site_ip, 443, "top1.us.example")
        .unwrap();
    assert_eq!(
        clean.chain[0].fingerprint(),
        chain[0].fingerprint(),
        "clean node passes the original chain"
    );

    // Infect every US node with a Kaspersky-style interceptor.
    let ids: Vec<NodeId> = m.world.node_ids().collect();
    for id in ids {
        if m.world.node(id).country == cc("US") {
            let mut r = SimRng::new(1000 + id.0 as u64);
            let mitm = TlsInterceptor::new(
                DistinguishedName::cn("Kaspersky Anti-Virus Personal Root"),
                true,
                InvalidCertPolicy::SpoofSameIssuer,
                false,
                Selectivity::All,
                now,
                &mut r,
            );
            m.world.node_mut(id).software.tls_interceptor = Some(mitm);
        }
    }
    let seen = m
        .world
        .proxy_connect_tls(&opts, site_ip, 443, "top1.us.example")
        .unwrap();
    assert_eq!(
        seen.chain[0].issuer.common_name,
        "Kaspersky Anti-Virus Personal Root"
    );
    assert_eq!(seen.chain[0].subject.common_name, "top1.us.example");
}

#[test]
fn monitor_refetches_arrive_in_web_log_after_window() {
    let mut m = mini_world();
    let (d1, _) = provision_probe_pair(&mut m.world, "i");
    let monitor_src = Ipv4Addr::new(203, 0, 113, 99);
    let idx = m.world.add_monitor(MonitorEntity {
        name: "TrendMicro".into(),
        source_ips: vec![monitor_src],
        source_pattern: SourcePattern::AnyFromPool,
        model: profiles::trend_micro(),
        user_agent: "TMWRS/5.0".into(),
    });
    // Attach to all US nodes.
    let ids: Vec<NodeId> = m.world.node_ids().collect();
    for id in ids {
        if m.world.node(id).country == cc("US") {
            m.world.node_mut(id).software.monitors.push(idx);
        }
    }
    let opts = UsernameOptions::new("lab").country(cc("US"));
    m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
    let before = m.world.web_server().requests_for_host(&d1).count();
    assert_eq!(before, 1, "only the node's own request so far");

    m.world.run_to_quiescence();
    let log: Vec<_> = m
        .world
        .web_server()
        .requests_for_host(&d1)
        .cloned()
        .collect();
    assert_eq!(log.len(), 3, "TrendMicro makes two unexpected requests");
    let unexpected: Vec<_> = log.iter().filter(|e| e.src == monitor_src).collect();
    assert_eq!(unexpected.len(), 2);
    assert_eq!(unexpected[0].user_agent.as_deref(), Some("TMWRS/5.0"));
    // Delays match the TrendMicro envelope.
    let t_user = log[0].at;
    let d1ms = unexpected[0].at.since(t_user).as_millis();
    let d2ms = unexpected[1].at.since(t_user).as_millis();
    assert!((12_000..=121_000).contains(&d1ms), "first delay {d1ms}");
    assert!(
        (200_000..=12_501_000).contains(&d2ms),
        "second delay {d2ms}"
    );
}

#[test]
fn vpn_nodes_hide_their_ip_from_origins() {
    let mut m = mini_world();
    let (d1, _) = provision_probe_pair(&mut m.world, "j");
    let egress: Vec<Ipv4Addr> = (1..=3).map(|i| Ipv4Addr::new(192, 0, 2, i)).collect();
    let ids: Vec<NodeId> = m.world.node_ids().collect();
    for id in &ids {
        if m.world.node(*id).country == cc("US") {
            m.world.node_mut(*id).software.vpn_egress = Some(egress.clone());
        }
    }
    let opts = UsernameOptions::new("lab").country(cc("US"));
    m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
    let hit = m.world.web_server().requests_for_host(&d1).next().unwrap();
    assert!(
        egress.contains(&hit.src),
        "origin sees a VPN egress address, saw {}",
        hit.src
    );
}

#[test]
fn deterministic_across_identical_worlds() {
    let run = || {
        let mut m = mini_world();
        let (d1, d2) = provision_probe_pair(&mut m.world, "k");
        let opts = UsernameOptions::new("lab")
            .country(cc("MY"))
            .session(3)
            .dns_remote();
        let r1 = m.world.proxy_get(&opts, &Uri::http(&d1, "/")).unwrap();
        let r2 = m.world.proxy_get(&opts, &Uri::http(&d2, "/")).unwrap();
        (*r1.debug.final_zid().unwrap(), r2.body, m.world.now())
    };
    assert_eq!(run(), run());
}
