//! Fundamental identifier types for the Internet registry.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;
use substrate::json::{FromJson, Json, JsonError, ToJson};

/// An Autonomous System Number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

impl ToJson for Asn {
    fn to_json(&self) -> Json {
        Json::uint(self.0 as u64)
    }
}

impl FromJson for Asn {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(Asn)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// An organization (ISP) identifier, from the AS-organizations dataset.
/// One organization may operate many ASes (the paper's ISP-level grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OrgId(pub u32);

impl ToJson for OrgId {
    fn to_json(&self) -> Json {
        Json::uint(self.0 as u64)
    }
}

impl FromJson for OrgId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(OrgId)
    }
}

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "org{}", self.0)
    }
}

/// An ISO 3166-1 alpha-2 country code (e.g. `US`, `MY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountryCode([u8; 2]);

impl ToJson for CountryCode {
    fn to_json(&self) -> Json {
        Json::str(self.as_str())
    }
}

impl FromJson for CountryCode {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = String::from_json(v)?;
        s.parse().map_err(JsonError::shape)
    }
}

impl CountryCode {
    /// Construct from a two-letter code.
    ///
    /// # Panics
    /// Panics if `code` is not exactly two ASCII alphabetic characters.
    pub fn new(code: &str) -> Self {
        let bytes = code.as_bytes();
        assert!(
            bytes.len() == 2 && bytes.iter().all(|b| b.is_ascii_alphabetic()),
            "invalid country code: {code:?}"
        );
        CountryCode([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        // Constructed from ASCII alphabetic bytes only.
        std::str::from_utf8(&self.0).expect("country code is ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CountryCode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = s.as_bytes();
        if bytes.len() == 2 && bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            Ok(CountryCode::new(s))
        } else {
            Err(format!("invalid country code: {s:?}"))
        }
    }
}

/// An IPv4 network prefix in CIDR form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Net {
    addr: u32,
    prefix_len: u8,
}

impl Ipv4Net {
    /// Construct a prefix; host bits below the prefix length are zeroed.
    ///
    /// # Panics
    /// Panics if `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length {prefix_len} > 32");
        let raw = u32::from(addr);
        Ipv4Net {
            addr: raw & Self::mask(prefix_len),
            prefix_len,
        }
    }

    fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    /// The (masked) network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// True if `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask(self.prefix_len)) == self.addr
    }

    /// Number of addresses covered by this prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// The `i`-th address inside this prefix.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        assert!(i < self.size(), "address index {i} out of prefix range");
        Ipv4Addr::from(self.addr + i as u32)
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.prefix_len)
    }
}

impl ToJson for Ipv4Net {
    fn to_json(&self) -> Json {
        Json::str(self.to_string())
    }
}

impl FromJson for Ipv4Net {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = String::from_json(v)?;
        s.parse().map_err(JsonError::shape)
    }
}

impl FromStr for Ipv4Net {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| format!("missing '/' in CIDR: {s:?}"))?;
        let addr: Ipv4Addr = addr.parse().map_err(|e| format!("bad address: {e}"))?;
        let len: u8 = len.parse().map_err(|e| format!("bad prefix length: {e}"))?;
        if len > 32 {
            return Err(format!("prefix length {len} > 32"));
        }
        Ok(Ipv4Net::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_code_normalizes_case() {
        assert_eq!(CountryCode::new("us"), CountryCode::new("US"));
        assert_eq!(CountryCode::new("My").as_str(), "MY");
    }

    #[test]
    #[should_panic(expected = "invalid country code")]
    fn country_code_rejects_bad_input() {
        CountryCode::new("USA");
    }

    #[test]
    fn country_code_parse() {
        assert!("GB".parse::<CountryCode>().is_ok());
        assert!("G1".parse::<CountryCode>().is_err());
        assert!("".parse::<CountryCode>().is_err());
    }

    #[test]
    fn cidr_masks_host_bits() {
        let net = Ipv4Net::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(net.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(net.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn cidr_contains() {
        let net: Ipv4Net = "74.125.0.0/16".parse().unwrap();
        assert!(net.contains(Ipv4Addr::new(74, 125, 3, 9)));
        assert!(!net.contains(Ipv4Addr::new(74, 126, 0, 0)));
    }

    #[test]
    fn cidr_parse_roundtrip() {
        let net: Ipv4Net = "192.168.64.0/18".parse().unwrap();
        assert_eq!(net.to_string(), "192.168.64.0/18");
        assert!("1.2.3.4".parse::<Ipv4Net>().is_err());
        assert!("1.2.3.4/33".parse::<Ipv4Net>().is_err());
    }

    #[test]
    fn cidr_size_and_nth() {
        let net: Ipv4Net = "10.0.0.0/30".parse().unwrap();
        assert_eq!(net.size(), 4);
        assert_eq!(net.nth(0), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(net.nth(3), Ipv4Addr::new(10, 0, 0, 3));
    }

    #[test]
    #[should_panic(expected = "out of prefix range")]
    fn cidr_nth_bounds() {
        let net: Ipv4Net = "10.0.0.0/30".parse().unwrap();
        net.nth(4);
    }

    #[test]
    fn zero_prefix_contains_everything() {
        let net: Ipv4Net = "0.0.0.0/0".parse().unwrap();
        assert!(net.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(net.size(), 1 << 32);
    }
}
