//! The SSL certificate-replacement experiment (§6.1, Figure 3).
//!
//! CONNECT tunnels to port 443 collect the certificate chains exit nodes
//! are shown. Two phases per node: an initial probe of one site from each
//! of three classes (popular, international, invalid); if any check fails,
//! all 33 sites are probed. Popular/international chains are validated
//! against the OS X-like root store; invalid-site chains are compared
//! exactly, because the study operates those sites and knows their
//! certificates.

use crate::config::StudyConfig;
use crate::crawl::Sampler;
use crate::exec::ProbeScope;
use crate::obs::{CertProbe, HttpsDataset, HttpsObservation, SiteClass};
use crate::quality::{delivery_outcome, DataQuality, ProbeOutcome};
use certs::{exact_match, verify_chain};
use inetdb::CountryCode;
use netsim::rng::RngExt;
use proxynet::{ChainDamage, UsernameOptions, World, ZId};

/// Sampler-seed salt (XORed with virtual time at experiment start).
const SEED_SALT: u64 = 0x995;
/// Salt for the independent site-pick stream.
const PICK_SALT: u64 = 0x5e1ec7;

/// The study's three intentionally invalid sites.
pub fn invalid_hosts(apex: &str) -> [String; 3] {
    [
        format!("invalid-selfsigned.{apex}"),
        format!("invalid-expired.{apex}"),
        format!("invalid-wrongname.{apex}"),
    ]
}

/// Collect one chain through a pinned session; None on failure or churn.
/// A chain the fault layer damaged in flight still returns (so the caller
/// can keep the session alive) but carries its [`ChainDamage`] tag: the
/// caller must quarantine it — a garbled or truncated handshake is not
/// certificate-replacement evidence.
fn probe_site(
    world: &mut World,
    opts: &UsernameOptions,
    host: &str,
    class: SiteClass,
    expect_zid: Option<&ZId>,
    country: CountryCode,
    quality: &mut DataQuality,
) -> Option<(ZId, std::net::Ipv4Addr, Option<ChainDamage>, CertProbe)> {
    let ip = world.site_address(host)?;
    let host_sym = world
        .site_symbols
        .lookup(host)
        .expect("site-symbol table covers every probe target");
    let result = match world.proxy_connect_tls(opts, ip, 443, host) {
        Ok(r) => r,
        Err(e) => {
            quality.record_error(country, &e);
            return None;
        }
    };
    let Some(zid) = result.debug.final_zid().cloned() else {
        quality.record_failure(country);
        return None;
    };
    if let Some(expected) = expect_zid {
        if &zid != expected {
            quality.record_failure(country);
            return None;
        }
    }
    match result.damaged {
        Some(ChainDamage::Truncated) => quality.record(country, ProbeOutcome::Truncated),
        Some(ChainDamage::Garbled) => quality.record(country, ProbeOutcome::Quarantined),
        None => quality.record(country, delivery_outcome(&result.debug)),
    }
    // CONNECT produces no web-log entry at our servers; the exit address
    // comes from the service's own reporting (as in the real Luminati).
    Some((
        zid,
        result.exit_ip,
        result.damaged,
        CertProbe {
            host: host_sym,
            class,
            chain: result.chain,
        },
    ))
}

/// Does this probe pass its class's check?
fn probe_ok(world: &World, probe: &CertProbe) -> bool {
    let host = world.site_symbols.resolve(probe.host);
    match probe.class {
        SiteClass::Popular | SiteClass::International => {
            verify_chain(&probe.chain, host, world.now(), &world.root_store).is_ok()
        }
        SiteClass::Invalid => {
            let expected = world
                .expected_chain(host)
                .and_then(|c| c.first())
                .expect("study-controlled site has a chain");
            exact_match(&probe.chain, expected)
        }
    }
}

/// Run the experiment.
pub fn run(world: &mut World, cfg: &StudyConfig) -> HttpsDataset {
    let scope = ProbeScope::full(world);
    run_scoped(world, cfg, scope)
}

/// Run one population shard (parallel executor entry point).
pub(crate) fn run_shard(world: &mut World, cfg: &StudyConfig, scope: ProbeScope) -> HttpsDataset {
    run_scoped(world, cfg, scope)
}

// tft-lint: hot-root — per-probe HTTPS experiment loop
fn run_scoped(world: &mut World, cfg: &StudyConfig, scope: ProbeScope) -> HttpsDataset {
    let t0 = world.now().as_millis();
    let mut sampler = Sampler::new(
        &scope.counts,
        scope.rng(t0, SEED_SALT),
        cfg.saturation_window,
        cfg.saturation_min_new,
    )
    .with_session_base(scope.session_base);
    let mut pick_rng = scope.rng(t0, PICK_SALT);
    let mut data = HttpsDataset::default();
    // One reusable option set per shard: the customer string is owned
    // once, not re-allocated per sample (DESIGN.md §10).
    let mut opts = UsernameOptions::new(&cfg.customer);
    let apex = world.auth_apex().to_string();
    let invalid = invalid_hosts(&apex);
    // Site lists are read straight out of the shared rankings: the `Arc`
    // clone is a refcount bump that frees `world` for `&mut` probe calls
    // without copying a single hostname (DESIGN.md §10).
    let rankings = world.rankings.clone();
    let universities: &[String] = rankings.universities();

    for _ in 0..cfg.max_samples {
        if sampler.saturated() {
            break;
        }
        let (country, session) = sampler.next_probe();
        data.samples_issued += 1;
        let Some(popular) = rankings.top_sites(country, 20) else {
            // No rankings for this country: out of scope, as in the paper.
            data.skipped_unranked += 1;
            sampler.record_miss();
            continue;
        };
        opts.country = Some(country);
        opts.session = Some(session);

        // Phase 1: one site per class.
        let p1_popular = &popular[pick_rng.random_range(0..popular.len())];
        let p1_uni = &universities[pick_rng.random_range(0..universities.len())];
        let p1_invalid = &invalid[pick_rng.random_range(0..invalid.len())];

        let Some((zid, exit_ip, damage, first)) = probe_site(
            world,
            &opts,
            p1_popular,
            SiteClass::Popular,
            None,
            country,
            &mut data.quality,
        ) else {
            sampler.record_miss();
            continue;
        };
        if !sampler.record(&zid) {
            continue; // already measured
        }
        // Damaged chains are quarantined: never analysed, never escalate.
        let mut probes = Vec::with_capacity(3);
        if damage.is_none() {
            probes.push(first);
        }
        let mut churned = false;
        for (host, class) in [
            (p1_uni.as_str(), SiteClass::International),
            (p1_invalid.as_str(), SiteClass::Invalid),
        ] {
            match probe_site(
                world,
                &opts,
                host,
                class,
                Some(&zid),
                country,
                &mut data.quality,
            ) {
                Some((_, _, dmg, p)) => {
                    if dmg.is_none() {
                        probes.push(p);
                    }
                }
                None => {
                    churned = true;
                    break;
                }
            }
        }
        if churned {
            continue;
        }

        let escalate = probes.iter().any(|p| !probe_ok(world, p));
        if escalate {
            // Phase 2: the full 33-site scan.
            let mut full = Vec::with_capacity(33);
            let mut ok = true;
            let phase2: [(&[String], SiteClass); 3] = [
                (popular, SiteClass::Popular),
                (universities, SiteClass::International),
                (&invalid, SiteClass::Invalid),
            ];
            'scan: for (hosts, class) in phase2 {
                for host in hosts.iter() {
                    match probe_site(
                        world,
                        &opts,
                        host,
                        class,
                        Some(&zid),
                        country,
                        &mut data.quality,
                    ) {
                        Some((_, _, dmg, p)) => {
                            if dmg.is_none() {
                                full.push(p);
                            }
                        }
                        None => {
                            ok = false;
                            break 'scan;
                        }
                    }
                }
            }
            if !ok {
                continue; // churned mid-scan; discard the node
            }
            probes = full;
        }
        data.observations.push(HttpsObservation {
            zid,
            country,
            exit_ip,
            probes,
            escalated: escalate,
        });
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_hosts_are_under_the_apex() {
        let hosts = invalid_hosts("tft-probe.example");
        assert_eq!(hosts.len(), 3);
        for h in &hosts {
            assert!(h.ends_with(".tft-probe.example"));
        }
    }
}
