#!/usr/bin/env bash
# Full local CI: format, lints, tests, docs, a smoke reproduction run, and
# a quick bench pass emitting machine-readable results. Runs fully offline:
# the workspace has path-only dependencies, so no registry access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== tft-lint (workspace invariants, JSON to LINT_report.json) =="
# Fails on any diagnostic not covered by a reasoned inline allow or the
# committed baseline; the report is written either way. The baseline is a
# ratchet: counts may only go down (a drop flags the stale entry).
cargo run -q -p tft-lint -- --baseline "$PWD/LINT_baseline.json" \
  --json-out "$PWD/LINT_report.json"

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace

echo "== tests (release) =="
# Debug builds carry overflow-checks, which masks exactly the class of
# release-only wrap bugs the checked arithmetic in netsim/ethics guards
# against. Run the suite once with release semantics too.
cargo test --workspace --release

echo "== chaos campaign suite (release) =="
# The scripted-fault campaigns, quarantine negative control, and chaos
# determinism tests run in the debug and release workspace passes above;
# this labeled stage re-runs the campaign suite alone so a chaos failure
# is unmistakable in CI logs.
cargo test -q --release --test chaos --test corruption_totality

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== smoke reproduction =="
cargo run -p tft-bench --bin repro --release -- --scale 0.01 --markdown

echo "== bench smoke (JSON to BENCH_substrate.json) =="
# cargo bench runs with the package directory as cwd, so the output path
# must be absolute to land at the repo root.
BENCH_JSON="$PWD/BENCH_substrate.json" TFT_BENCH_QUICK=1 \
  cargo bench -p tft-bench --bench substrate

echo "== parallel executor scaling (JSON to BENCH_parallel.json) =="
# Same study at workers 1/2/4/8/16/32; output is byte-identical at every
# count (see tests/determinism.rs), so this only tracks wall-clock.
# TFT_BENCH_SAMPLES=5 buys the regression guard below enough samples for a
# stable median without a full calibrated run.
BENCH_JSON="$PWD/BENCH_parallel.json" TFT_BENCH_QUICK=1 TFT_BENCH_SAMPLES=5 \
  cargo bench -p tft-bench --bench parallel

echo "== parallel scaling regression guard =="
# Inverted scaling is a bug, not a tuning matter: with the executor's
# shards and single wave queue, adding workers must never *cost* wall-clock
# on a machine with cores to use them. Enforced from the just-written
# BENCH_parallel.json: fail if the workers-8 median exceeds the workers-1
# median on an 8-plus-core host; on smaller hosts parallelism can't
# genuinely be measured, so only warn (loudly) there.
python3 - <<'EOF'
import json, os, sys

cores = os.cpu_count() or 1
doc = json.load(open("BENCH_parallel.json"))
medians = {b["name"]: b["median_ns"] for b in doc["benchmarks"]}
w1 = next(v for k, v in medians.items() if k.endswith("workers1"))
w8 = next(v for k, v in medians.items() if k.endswith("workers8"))
ratio = w8 / w1
line = f"workers-8 median / workers-1 median = {ratio:.2f} ({w8/1e9:.1f}s vs {w1/1e9:.1f}s, {cores} cores)"
if w8 > w1:
    if cores >= 8:
        print(f"FAIL: inverted parallel scaling: {line}", file=sys.stderr)
        sys.exit(1)
    print(f"WARNING: {line}", file=sys.stderr)
    print(f"WARNING: workers-8 slower than workers-1, but this host has only {cores} core(s);", file=sys.stderr)
    print("WARNING: treat as a real scaling regression on any 8-core machine.", file=sys.stderr)
else:
    print(f"ok: {line}")
EOF

echo "== chaos zero-fault fast path (JSON to BENCH_chaos.json) =="
# Asserts the armed-but-idle resilience stack (campaign + deadline +
# breakers + backoff) is *exact* — byte-identical responses, identical
# virtual clock — and records its wall-clock overhead (budget: 2%; the
# full run lands within noise of zero).
BENCH_JSON="$PWD/BENCH_chaos.json" TFT_BENCH_QUICK=1 \
  cargo bench -p tft-bench --bench chaos

echo "== serve gateway e2e (release) =="
# The study-as-a-service acceptance tests alone, labeled: byte-identical
# response bodies at workers 1/2/8, cache hits serving without
# re-execution, and 429 backpressure under a saturated queue.
cargo test -q --release --test serve_gateway

echo "== lint engine scaling (JSON to BENCH_lint.json) =="
# Full workspace lint at workers 1/2/8. The bench binary asserts the
# rendered report is byte-identical at every count (parallel lint must be
# deterministic), then records wall-clock per worker count.
BENCH_JSON="$PWD/BENCH_lint.json" TFT_BENCH_QUICK=1 \
  cargo bench -p tft-bench --bench lint

echo "== serve load generator (JSON to BENCH_serve.json) =="
# Replays the same deterministic load trace at workers 1/2/8. The bench
# binary asserts the response digests match — a divergence means serving
# is no longer byte-identical and this stage fails — then records
# requests/sec, p95 virtual latency, and cache hit rate.
BENCH_JSON="$PWD/BENCH_serve.json" TFT_BENCH_QUICK=1 \
  cargo bench -p tft-bench --bench serve

echo "all checks passed"
