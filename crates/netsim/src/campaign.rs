//! Scriptable, deterministic fault campaigns.
//!
//! A campaign is an ordered list of rules, each binding a fault *profile*
//! (probabilistic injector, hard outage, or flapping link) to a *scope*
//! (everything, one region, one ISP, one node — or any conjunction) and an
//! optional virtual-time window. The transport evaluates the campaign once
//! per delivery attempt against a [`FaultTarget`] describing where the
//! message is headed.
//!
//! Determinism: probabilistic rules draw from the caller's `SimRng` (in the
//! proxy layer that is the per-request fork keyed by admission time), and
//! flapping is a pure function of virtual time and the node id — no rule
//! ever reads wall clock, thread identity, or global state. A campaign
//! therefore replays byte-identically at any worker count. Rules whose
//! profile cannot interfere draw nothing, so an empty or inert campaign
//! leaves every existing RNG stream untouched.

use crate::fault::{FaultInjector, FaultVerdict};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Where a message is headed, for scope matching.
#[derive(Debug, Clone, Copy)]
pub struct FaultTarget<'a> {
    /// Destination region (country code in the proxy world).
    pub region: &'a str,
    /// Destination ISP (AS number in the proxy world).
    pub isp: u64,
    /// Destination node id.
    pub node: u64,
}

/// Which traffic a rule applies to: a conjunction of optional constraints
/// (all-`None` matches everything).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScope {
    /// Match only this region.
    pub region: Option<String>,
    /// Match only this ISP.
    pub isp: Option<u64>,
    /// Match only this node.
    pub node: Option<u64>,
}

impl FaultScope {
    /// Match all traffic.
    pub fn all() -> Self {
        FaultScope::default()
    }

    /// Match one region.
    pub fn region(region: impl Into<String>) -> Self {
        FaultScope {
            region: Some(region.into()),
            ..FaultScope::default()
        }
    }

    /// Match one ISP.
    pub fn isp(isp: u64) -> Self {
        FaultScope {
            isp: Some(isp),
            ..FaultScope::default()
        }
    }

    /// Match one node.
    pub fn node(node: u64) -> Self {
        FaultScope {
            node: Some(node),
            ..FaultScope::default()
        }
    }

    /// Does `target` satisfy every constraint?
    pub fn matches(&self, target: &FaultTarget<'_>) -> bool {
        self.region.as_deref().is_none_or(|r| r == target.region)
            && self.isp.is_none_or(|i| i == target.isp)
            && self.node.is_none_or(|n| n == target.node)
    }
}

/// What a matching rule does to traffic in its scope and window.
#[derive(Debug, Clone)]
pub enum FaultProfile {
    /// Probabilistic interference (drop / corrupt / truncate / stall /
    /// delay-spike chances).
    Inject(FaultInjector),
    /// Hard outage: every message is dropped.
    Outage,
    /// Flapping link: a deterministic square wave, `up` online then `down`
    /// offline, phase-shifted per node so a region's nodes don't all flap
    /// in lockstep. During a down phase every message is dropped. Draws no
    /// randomness.
    Flap {
        /// Length of the online phase.
        up: SimDuration,
        /// Length of the offline phase.
        down: SimDuration,
    },
}

impl FaultProfile {
    /// True when the profile can never interfere with traffic.
    fn is_inert(&self) -> bool {
        match self {
            FaultProfile::Inject(inj) => inj.is_none(),
            FaultProfile::Outage => false,
            FaultProfile::Flap { down, .. } => down.is_zero(),
        }
    }
}

/// One campaign rule: scope + optional time window + profile.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Which traffic this rule applies to.
    pub scope: FaultScope,
    /// Half-open virtual-time window `[start, end)`; `None` means always.
    pub window: Option<(SimTime, SimTime)>,
    /// What happens to matching traffic.
    pub profile: FaultProfile,
}

impl FaultRule {
    /// Is this rule active at virtual time `at`?
    fn active_at(&self, at: SimTime) -> bool {
        match self.window {
            None => true,
            Some((start, end)) => at >= start && at < end,
        }
    }
}

/// A scripted fault campaign: rules are consulted in order and the first
/// one that actually interferes decides the message's fate.
#[derive(Debug, Clone, Default)]
pub struct FaultCampaign {
    /// The rules, in priority order.
    pub rules: Vec<FaultRule>,
}

impl FaultCampaign {
    /// A campaign that never interferes.
    pub fn none() -> Self {
        FaultCampaign::default()
    }

    /// A campaign applying one injector to all traffic at all times — the
    /// legacy single-knob configuration.
    pub fn uniform(injector: FaultInjector) -> Self {
        if injector.is_none() {
            return FaultCampaign::none();
        }
        FaultCampaign {
            rules: vec![FaultRule {
                scope: FaultScope::all(),
                window: None,
                profile: FaultProfile::Inject(injector),
            }],
        }
    }

    /// Add a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// True when no rule can ever interfere.
    pub fn is_none(&self) -> bool {
        self.rules.iter().all(|r| r.profile.is_inert())
    }

    /// Decide the fate of one message headed for `target` at virtual time
    /// `at`. Rules are evaluated in order; the first non-clean verdict
    /// wins. Inert and non-matching rules draw nothing from `rng`.
    pub fn judge(&self, target: &FaultTarget<'_>, at: SimTime, rng: &mut SimRng) -> FaultVerdict {
        for rule in &self.rules {
            if rule.profile.is_inert() || !rule.active_at(at) || !rule.scope.matches(target) {
                continue;
            }
            let verdict = match &rule.profile {
                FaultProfile::Inject(inj) => inj.judge(rng),
                FaultProfile::Outage => FaultVerdict::Drop,
                FaultProfile::Flap { up, down } => {
                    if flap_is_down(target.node, at, *up, *down) {
                        FaultVerdict::Drop
                    } else {
                        continue;
                    }
                }
            };
            if !verdict.is_clean() {
                return verdict;
            }
        }
        FaultVerdict::Deliver {
            extra_delay: SimDuration::ZERO,
        }
    }
}

/// Deterministic flapping wave: node `node` is down at time `at` when the
/// phase-shifted position inside the `up + down` period falls in the down
/// phase. The per-node phase comes from a splitmix64 hash of the node id,
/// so a region's nodes flap out of lockstep but identically on every run.
fn flap_is_down(node: u64, at: SimTime, up: SimDuration, down: SimDuration) -> bool {
    let period = up.as_millis().saturating_add(down.as_millis());
    if period == 0 || down.is_zero() {
        return false;
    }
    let phase = splitmix64(node) % period;
    let pos = (at.as_millis().wrapping_add(phase)) % period;
    pos >= up.as_millis()
}

/// The splitmix64 finalizer: a cheap, stable 64-bit mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn target(region: &str, isp: u64, node: u64) -> FaultTarget<'_> {
        FaultTarget { region, isp, node }
    }

    #[test]
    fn empty_campaign_is_inert_and_draws_nothing() {
        let c = FaultCampaign::none();
        assert!(c.is_none());
        let mut rng = SimRng::new(1);
        let before = rng.clone().next_u64();
        let v = c.judge(&target("US", 1, 1), SimTime::from_millis(0), &mut rng);
        assert!(v.is_clean());
        assert_eq!(rng.next_u64(), before, "no draws on the clean path");
    }

    #[test]
    fn uniform_of_none_is_none() {
        assert!(FaultCampaign::uniform(FaultInjector::none()).is_none());
        assert!(!FaultCampaign::uniform(FaultInjector::lossy(0.5)).is_none());
    }

    #[test]
    fn scope_conjunction_matches() {
        let s = FaultScope {
            region: Some("IR".into()),
            isp: Some(42),
            node: None,
        };
        assert!(s.matches(&target("IR", 42, 7)));
        assert!(!s.matches(&target("IR", 43, 7)));
        assert!(!s.matches(&target("US", 42, 7)));
        assert!(FaultScope::all().matches(&target("ZZ", 0, 0)));
        assert!(FaultScope::node(7).matches(&target("ZZ", 0, 7)));
        assert!(!FaultScope::node(7).matches(&target("ZZ", 0, 8)));
    }

    #[test]
    fn windowed_outage_applies_only_inside_the_window() {
        let c = FaultCampaign::none().with_rule(FaultRule {
            scope: FaultScope::region("IR"),
            window: Some((SimTime::from_millis(1000), SimTime::from_millis(2000))),
            profile: FaultProfile::Outage,
        });
        let mut rng = SimRng::new(2);
        let t = target("IR", 1, 1);
        assert!(c.judge(&t, SimTime::from_millis(999), &mut rng).is_clean());
        assert_eq!(
            c.judge(&t, SimTime::from_millis(1000), &mut rng),
            FaultVerdict::Drop
        );
        assert_eq!(
            c.judge(&t, SimTime::from_millis(1999), &mut rng),
            FaultVerdict::Drop
        );
        assert!(c.judge(&t, SimTime::from_millis(2000), &mut rng).is_clean());
        // Out of scope entirely:
        assert!(c
            .judge(&target("US", 1, 1), SimTime::from_millis(1500), &mut rng)
            .is_clean());
    }

    #[test]
    fn flap_wave_is_deterministic_and_phase_shifted() {
        let up = SimDuration::from_secs(10);
        let down = SimDuration::from_secs(5);
        // Over one full period every node is down exactly `down` long.
        for node in [0u64, 1, 2, 99] {
            let down_ms = (0..15_000)
                .filter(|ms| flap_is_down(node, SimTime::from_millis(*ms), up, down))
                .count();
            assert_eq!(down_ms, 5_000, "node {node}");
            // Same node, same answer, always.
            assert_eq!(
                flap_is_down(node, SimTime::from_millis(1234), up, down),
                flap_is_down(node, SimTime::from_millis(1234), up, down)
            );
        }
        // Phases differ across nodes (these four are not in lockstep).
        let probe = |node| flap_is_down(node, SimTime::from_millis(0), up, down);
        let states: Vec<bool> = [0u64, 1, 2, 99].iter().map(|&n| probe(n)).collect();
        assert!(
            states.iter().any(|&s| s != states[0]),
            "all nodes flap in lockstep: {states:?}"
        );
    }

    #[test]
    fn first_interfering_rule_wins() {
        let c = FaultCampaign::none()
            .with_rule(FaultRule {
                scope: FaultScope::isp(42),
                window: None,
                profile: FaultProfile::Outage,
            })
            .with_rule(FaultRule {
                scope: FaultScope::all(),
                window: None,
                profile: FaultProfile::Inject(FaultInjector {
                    truncate_chance: 1.0,
                    ..FaultInjector::none()
                }),
            });
        let mut rng = SimRng::new(3);
        assert_eq!(
            c.judge(&target("US", 42, 1), SimTime::from_millis(0), &mut rng),
            FaultVerdict::Drop
        );
        assert_eq!(
            c.judge(&target("US", 7, 1), SimTime::from_millis(0), &mut rng),
            FaultVerdict::Truncate {
                extra_delay: SimDuration::ZERO
            }
        );
    }
}
