//! The SMTP extension experiment — the paper's stated future work (§3.4).
//!
//! Through a hypothetical arbitrary-traffic VPN (same peer population as
//! the HTTP/S proxy), each sampled node runs an SMTP capability probe
//! against a small set of mail servers: banner → EHLO → STARTTLS (when
//! advertised) → QUIT. Comparing the capabilities different vantage points
//! see reveals in-path STARTTLS stripping: the server is constant, so a
//! vantage point that doesn't see `STARTTLS` sits behind a tamperer.

use crate::config::StudyConfig;
use crate::crawl::Sampler;
use netsim::SimRng;
use proxynet::{SmtpProbeResult, UsernameOptions, World, ZId};
use std::net::Ipv4Addr;

/// One node's SMTP observation.
#[derive(Debug, Clone)]
pub struct SmtpObservation {
    /// Exit node identity.
    pub zid: ZId,
    /// Reported exit address.
    pub exit_ip: Ipv4Addr,
    /// Mail host probed.
    pub mail_host: String,
    /// The probe transcript.
    pub result: SmtpProbeResult,
}

/// The SMTP experiment's dataset.
#[derive(Debug, Default)]
pub struct SmtpDataset {
    /// Per-node observations.
    pub observations: Vec<SmtpObservation>,
    /// Total VPN sessions issued.
    pub samples_issued: usize,
}

/// Run the experiment until saturation or budget exhaustion.
// tft-lint: hot-root — per-probe SMTP experiment loop
pub fn run(world: &mut World, cfg: &StudyConfig) -> SmtpDataset {
    let mut sampler = Sampler::new(
        &world.reported_country_counts(),
        SimRng::new(world.now().as_millis() ^ 0x25),
        cfg.saturation_window,
        cfg.saturation_min_new,
    );
    let mut pick = SimRng::new(world.now().as_millis() ^ 0x2525);
    let mail_hosts: Vec<String> = {
        let mut v: Vec<String> = world.mail_hosts().map(|s| s.to_string()).collect();
        v.sort();
        v
    };
    let mut data = SmtpDataset::default();
    // One reusable option set per shard: the customer string is owned
    // once, not re-allocated per sample (DESIGN.md §10).
    let mut opts = UsernameOptions::new(&cfg.customer);
    if mail_hosts.is_empty() {
        return data;
    }
    for _ in 0..cfg.max_samples {
        if sampler.saturated() {
            break;
        }
        let (country, session) = sampler.next_probe();
        data.samples_issued += 1;
        use netsim::rng::RngExt;
        let mail_host = mail_hosts[pick.random_range(0..mail_hosts.len())].clone();
        let Some(target) = world.mail_site_address(&mail_host) else {
            continue;
        };
        opts.country = Some(country);
        opts.session = Some(session);
        match world.vpn_relay_smtp(&opts, target) {
            Ok(result) => {
                let Some(zid) = result.debug.final_zid().cloned() else {
                    sampler.record_miss();
                    continue;
                };
                if sampler.record(&zid) {
                    data.observations.push(SmtpObservation {
                        zid,
                        exit_ip: result.exit_ip,
                        mail_host,
                        result,
                    });
                }
            }
            Err(_) => sampler.record_miss(),
        }
    }
    data
}
