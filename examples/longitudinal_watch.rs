//! Longitudinal watch: the §9 vision — continuous campaigns over a world
//! whose operators change behaviour. Between epoch 0 and 1, TMnet retires
//! its hijacking appliance; between 1 and 2, a previously clean German ISP
//! deploys one.
//!
//! ```sh
//! cargo run --release --example longitudinal_watch
//! ```

use tft::middlebox::{HijackVector, JsFamily, NxdomainHijacker};
use tft::netsim::SimDuration;
use tft::prelude::*;
use tft::tft_core::longitudinal;

fn main() {
    let scale = 0.006;
    println!("building calibrated world (scale {scale})…");
    let mut built = build(&paper_spec(scale, 0x10f6));
    let cfg = StudyConfig::scaled(scale);

    println!("running three weekly DNS campaigns with operator changes in between…");
    let epochs = longitudinal::run(
        &mut built.world,
        &cfg,
        3,
        SimDuration::from_days(7),
        |world, epoch| match epoch {
            0 => {
                // TMnet retires hijacking.
                let defs: Vec<_> = world
                    .resolvers()
                    .filter(|d| {
                        world
                            .registry
                            .asn_to_org(d.asn)
                            .map(|o| o.name == "TMnet")
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect();
                for mut d in defs {
                    d.hijacker = None;
                    world.add_resolver(d);
                }
                let asns: Vec<_> = world
                    .registry
                    .asns()
                    .filter(|a| {
                        world
                            .registry
                            .asn_to_org(*a)
                            .map(|o| o.name == "TMnet")
                            .unwrap_or(false)
                    })
                    .collect();
                for a in asns {
                    world.clear_transparent_dns(a);
                }
                println!("  [between epochs 0→1] TMnet retired its hijacking appliance");
            }
            1 => {
                // 1und1 deploys hijacking on its resolvers.
                let defs: Vec<_> = world
                    .resolvers()
                    .filter(|d| {
                        world
                            .registry
                            .asn_to_org(d.asn)
                            .map(|o| o.name == "1und1 Internet")
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect();
                if let Some(landing_ip) = defs.first().map(|d| {
                    // Reuse an address in the ISP's space for the landing
                    // server (the registry allocator is closed post-build).
                    d.ip
                }) {
                    let hijacker = NxdomainHijacker::new(
                        HijackVector::IspResolver,
                        vec!["http://suchhilfe.1und1.example".into()],
                        landing_ip,
                        JsFamily::Custom,
                    );
                    world.add_landing(landing_ip, hijacker.clone());
                    for mut d in defs {
                        d.hijacker = Some(hijacker.clone());
                        world.add_resolver(d);
                    }
                    println!("  [between epochs 1→2] 1und1 deployed a hijacking appliance");
                }
            }
            _ => {}
        },
    );

    println!("{}", longitudinal::render(&epochs));
    println!("per-epoch Malaysia / Germany detail:");
    for e in &epochs {
        let ratios = e.country_ratios();
        let get = |c: &str| {
            ratios
                .get(&inetdb::CountryCode::new(c))
                .map(|r| format!("{:.1}%", r * 100.0))
                .unwrap_or_else(|| "—".into())
        };
        println!("  epoch {}: MY {}  DE {}", e.epoch, get("MY"), get("DE"));
    }
}
