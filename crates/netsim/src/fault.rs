//! Fault injection for the simulated transport.
//!
//! Mirrors the smoltcp example knobs plus the two failure shapes the chaos
//! campaigns need: a drop chance, a corrupt chance (mutate one octet), a
//! truncate chance (deliver a strict prefix), a stall chance (the reply
//! arrives only after the client's deadline), and an extra-delay spike. The
//! proxy layer uses drops to exercise Luminati's automatic retry path;
//! wire-format code uses corruption and truncation to prove parsers reject
//! mangled input instead of panicking.

use crate::latency::Latency;
use crate::rng::{RngExt, SimRng};
use crate::time::SimDuration;
use std::fmt;

/// What the fault injector decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver unmodified after the given extra delay (possibly zero).
    Deliver {
        /// Delay spike to add on top of normal path latency.
        extra_delay: SimDuration,
    },
    /// Deliver after mutating one octet of the payload.
    CorruptAndDeliver {
        /// Delay spike to add on top of normal path latency.
        extra_delay: SimDuration,
    },
    /// Deliver only a strict prefix of the payload.
    Truncate {
        /// Delay spike to add on top of normal path latency.
        extra_delay: SimDuration,
    },
    /// The reply exists but arrives after the client's deadline — from the
    /// client's point of view the request times out.
    Stall,
    /// Silently drop the message.
    Drop,
}

impl FaultVerdict {
    /// True when this verdict delivers the payload unmodified with no extra
    /// delay — the "nothing happened" outcome.
    pub fn is_clean(&self) -> bool {
        matches!(
            self,
            FaultVerdict::Deliver { extra_delay } if extra_delay.is_zero()
        )
    }

    /// The delay spike this verdict adds (zero for `Stall`/`Drop`, which
    /// never deliver in time).
    pub fn extra_delay(&self) -> SimDuration {
        match self {
            FaultVerdict::Deliver { extra_delay }
            | FaultVerdict::CorruptAndDeliver { extra_delay }
            | FaultVerdict::Truncate { extra_delay } => *extra_delay,
            FaultVerdict::Stall | FaultVerdict::Drop => SimDuration::ZERO,
        }
    }
}

/// A probability field held a value outside `[0, 1]` (or NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfigError {
    /// Which probability field was out of range.
    pub field: &'static str,
    /// The offending value.
    pub value: f64,
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault probability `{}` = {} is not in [0, 1]",
            self.field, self.value
        )
    }
}

impl std::error::Error for FaultConfigError {}

/// Clamp a probability into `[0, 1]`, treating NaN as 0.
fn sane(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// Probabilistic fault injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Probability in `[0,1]` that a message is dropped.
    pub drop_chance: f64,
    /// Probability in `[0,1]` that one octet is corrupted.
    pub corrupt_chance: f64,
    /// Probability in `[0,1]` that only a strict prefix is delivered.
    pub truncate_chance: f64,
    /// Probability in `[0,1]` that the reply arrives after the deadline.
    pub stall_chance: f64,
    /// Probability in `[0,1]` that a delay spike is added.
    pub delay_chance: f64,
    /// The delay spike distribution.
    pub delay_spike: Latency,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::none()
    }
}

impl FaultInjector {
    /// An injector that never interferes.
    pub fn none() -> Self {
        FaultInjector {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            truncate_chance: 0.0,
            stall_chance: 0.0,
            delay_chance: 0.0,
            delay_spike: Latency::fixed(0),
        }
    }

    /// A lossy-link profile: the smoltcp examples' suggested starting point.
    pub fn lossy(drop_chance: f64) -> Self {
        FaultInjector {
            drop_chance,
            ..FaultInjector::none()
        }
    }

    /// Validating constructor: every probability must already be a real
    /// number in `[0, 1]`, otherwise the offending field is reported.
    /// (`random_bool` panics on out-of-range probabilities; configs built
    /// from parsed input should go through here.)
    pub fn validated(
        drop_chance: f64,
        corrupt_chance: f64,
        truncate_chance: f64,
        stall_chance: f64,
        delay_chance: f64,
        delay_spike: Latency,
    ) -> Result<Self, FaultConfigError> {
        for (field, value) in [
            ("drop_chance", drop_chance),
            ("corrupt_chance", corrupt_chance),
            ("truncate_chance", truncate_chance),
            ("stall_chance", stall_chance),
            ("delay_chance", delay_chance),
        ] {
            if value.is_nan() || !(0.0..=1.0).contains(&value) {
                return Err(FaultConfigError { field, value });
            }
        }
        Ok(FaultInjector {
            drop_chance,
            corrupt_chance,
            truncate_chance,
            stall_chance,
            delay_chance,
            delay_spike,
        })
    }

    /// Clamping constructor: out-of-range probabilities are forced into
    /// `[0, 1]` and NaN becomes 0 (for hand-written test configs where a
    /// panic would be worse than a clamp).
    pub fn clamped(
        drop_chance: f64,
        corrupt_chance: f64,
        truncate_chance: f64,
        stall_chance: f64,
        delay_chance: f64,
        delay_spike: Latency,
    ) -> Self {
        FaultInjector {
            drop_chance: sane(drop_chance),
            corrupt_chance: sane(corrupt_chance),
            truncate_chance: sane(truncate_chance),
            stall_chance: sane(stall_chance),
            delay_chance: sane(delay_chance),
            delay_spike,
        }
    }

    /// True if this injector can never interfere.
    pub fn is_none(&self) -> bool {
        sane(self.drop_chance) == 0.0
            && sane(self.corrupt_chance) == 0.0
            && sane(self.truncate_chance) == 0.0
            && sane(self.stall_chance) == 0.0
            && sane(self.delay_chance) == 0.0
    }

    /// Decide the fate of one message. Fields are sanitized on the way in
    /// (NaN → 0, clamp to `[0, 1]`), so direct struct construction with a
    /// bad probability misbehaves predictably instead of panicking. A
    /// zero-probability check draws nothing, so adding an inert fault class
    /// never shifts an existing RNG stream.
    pub fn judge(&self, rng: &mut SimRng) -> FaultVerdict {
        let drop_chance = sane(self.drop_chance);
        if drop_chance > 0.0 && rng.random_bool(drop_chance) {
            return FaultVerdict::Drop;
        }
        let delay_chance = sane(self.delay_chance);
        let extra_delay = if delay_chance > 0.0 && rng.random_bool(delay_chance) {
            self.delay_spike.sample(rng)
        } else {
            SimDuration::ZERO
        };
        let corrupt_chance = sane(self.corrupt_chance);
        if corrupt_chance > 0.0 && rng.random_bool(corrupt_chance) {
            return FaultVerdict::CorruptAndDeliver { extra_delay };
        }
        let truncate_chance = sane(self.truncate_chance);
        if truncate_chance > 0.0 && rng.random_bool(truncate_chance) {
            return FaultVerdict::Truncate { extra_delay };
        }
        let stall_chance = sane(self.stall_chance);
        if stall_chance > 0.0 && rng.random_bool(stall_chance) {
            return FaultVerdict::Stall;
        }
        FaultVerdict::Deliver { extra_delay }
    }

    /// Mutate one octet of `payload` in place (no-op on empty payloads).
    /// The mutation is guaranteed to change the byte.
    pub fn corrupt(rng: &mut SimRng, payload: &mut [u8]) {
        if payload.is_empty() {
            return;
        }
        let idx = rng.random_range(0..payload.len());
        let flip: u8 = rng.random_range(1..=255_u8);
        payload[idx] ^= flip;
    }

    /// Truncate `payload` to a strict prefix of itself (no-op on empty
    /// payloads): the delivered length is drawn uniformly from
    /// `0..payload.len()`.
    pub fn truncate(rng: &mut SimRng, payload: &mut Vec<u8>) {
        if payload.is_empty() {
            return;
        }
        let keep = rng.random_range(0..payload.len());
        payload.truncate(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use substrate::qc::{self, Config};
    use substrate::qc_assert;

    #[test]
    fn none_always_delivers_clean() {
        let inj = FaultInjector::none();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(
                inj.judge(&mut rng),
                FaultVerdict::Deliver {
                    extra_delay: SimDuration::ZERO
                }
            );
        }
    }

    #[test]
    fn drop_chance_one_always_drops() {
        let inj = FaultInjector::lossy(1.0);
        let mut rng = SimRng::new(2);
        for _ in 0..20 {
            assert_eq!(inj.judge(&mut rng), FaultVerdict::Drop);
        }
    }

    #[test]
    fn drop_rate_is_approximately_honored() {
        let inj = FaultInjector::lossy(0.15);
        let mut rng = SimRng::new(3);
        let drops = (0..10_000)
            .filter(|_| inj.judge(&mut rng) == FaultVerdict::Drop)
            .count();
        let rate = drops as f64 / 10_000.0;
        assert!((0.12..0.18).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn truncate_and_stall_chances_are_honored() {
        let inj = FaultInjector {
            truncate_chance: 1.0,
            ..FaultInjector::none()
        };
        let mut rng = SimRng::new(6);
        for _ in 0..20 {
            assert_eq!(
                inj.judge(&mut rng),
                FaultVerdict::Truncate {
                    extra_delay: SimDuration::ZERO
                }
            );
        }
        let inj = FaultInjector {
            stall_chance: 1.0,
            ..FaultInjector::none()
        };
        for _ in 0..20 {
            assert_eq!(inj.judge(&mut rng), FaultVerdict::Stall);
        }
    }

    #[test]
    fn new_zero_chance_checks_draw_nothing() {
        // The truncate/stall checks must not consume RNG values when their
        // probabilities are zero — existing seeded streams depend on it.
        let inj = FaultInjector::lossy(0.5);
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            inj.judge(&mut a);
        }
        for _ in 0..100 {
            // Equivalent legacy-field-only decision sequence.
            if b.random_bool(0.5) {
                continue;
            }
        }
        assert_eq!(a.next_u64(), b.next_u64(), "streams diverged");
    }

    #[test]
    fn corrupt_changes_exactly_one_byte() {
        let mut rng = SimRng::new(4);
        let original = vec![0u8; 64];
        for _ in 0..50 {
            let mut copy = original.clone();
            FaultInjector::corrupt(&mut rng, &mut copy);
            let diffs = original.iter().zip(&copy).filter(|(a, b)| a != b).count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn corrupt_on_empty_is_noop() {
        let mut rng = SimRng::new(5);
        let mut empty: Vec<u8> = vec![];
        FaultInjector::corrupt(&mut rng, &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn truncate_yields_strict_prefix() {
        let mut rng = SimRng::new(8);
        let original: Vec<u8> = (0..=255u8).collect();
        for _ in 0..50 {
            let mut copy = original.clone();
            FaultInjector::truncate(&mut rng, &mut copy);
            assert!(copy.len() < original.len(), "must be a strict prefix");
            assert_eq!(&original[..copy.len()], &copy[..]);
        }
        let mut empty: Vec<u8> = vec![];
        FaultInjector::truncate(&mut rng, &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn validated_rejects_out_of_range() {
        assert!(FaultInjector::validated(0.5, 0.0, 0.0, 0.0, 0.0, Latency::fixed(0)).is_ok());
        let err = FaultInjector::validated(f64::NAN, 0.0, 0.0, 0.0, 0.0, Latency::fixed(0))
            .expect_err("NaN must be rejected");
        assert_eq!(err.field, "drop_chance");
        let err = FaultInjector::validated(0.0, 0.0, 1.5, 0.0, 0.0, Latency::fixed(0))
            .expect_err(">1 must be rejected");
        assert_eq!(err.field, "truncate_chance");
        let err = FaultInjector::validated(0.0, 0.0, 0.0, 0.0, -0.1, Latency::fixed(0))
            .expect_err("negative must be rejected");
        assert_eq!(err.field, "delay_chance");
    }

    /// Any f64 whatsoever, including the values `random_bool` panics on.
    fn wild_chance() -> qc::Gen<f64> {
        qc::one_of(vec![
            qc::floats(-10.0..10.0),
            qc::just(f64::NAN),
            qc::just(f64::INFINITY),
            qc::just(f64::NEG_INFINITY),
            qc::just(-0.0),
            qc::just(1.0),
        ])
    }

    #[test]
    fn qc_judge_is_total_over_wild_probabilities() {
        qc::check(
            "fault injector total over wild probabilities",
            &Config::with_cases(256),
            &qc::tuple3(wild_chance(), wild_chance(), wild_chance()),
            |&(a, b, c)| {
                let inj = FaultInjector {
                    drop_chance: a,
                    corrupt_chance: b,
                    truncate_chance: c,
                    stall_chance: b,
                    delay_chance: a,
                    delay_spike: Latency::fixed(5),
                };
                // judge must sanitize internally: no panic for any input.
                let mut rng = SimRng::new(a.to_bits() ^ b.to_bits() ^ c.to_bits());
                for _ in 0..8 {
                    inj.judge(&mut rng);
                }
                // clamped() must agree with validated(): it round-trips
                // through validation for every input.
                let clamped = FaultInjector::clamped(a, b, c, b, a, Latency::fixed(5));
                qc_assert!(FaultInjector::validated(
                    clamped.drop_chance,
                    clamped.corrupt_chance,
                    clamped.truncate_chance,
                    clamped.stall_chance,
                    clamped.delay_chance,
                    clamped.delay_spike,
                )
                .is_ok());
                // validated() accepts exactly the in-range values.
                let ok = FaultInjector::validated(a, b, c, b, a, Latency::fixed(5)).is_ok();
                let in_range = |p: f64| !p.is_nan() && (0.0..=1.0).contains(&p);
                qc_assert!(ok == (in_range(a) && in_range(b) && in_range(c)));
                qc::pass()
            },
        );
    }
}
