//! Case-insensitive, order-preserving header map.
//!
//! Order preservation matters here: middlebox detection in the wild often
//! keys on header ordering and injected headers (e.g. Luminati's
//! `X-Hola-Timeline-Debug`), so the map must reproduce exactly what was
//! written.

use std::fmt;

/// An ordered multimap of HTTP headers with case-insensitive names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// An empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a header (keeps existing values with the same name).
    pub fn append(&mut self, name: &str, value: &str) {
        self.entries.push((name.to_string(), value.to_string()));
    }

    /// Set a header, removing any existing values with the same name.
    pub fn set(&mut self, name: &str, value: &str) {
        self.remove(name);
        self.append(name, value);
    }

    /// First value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Remove all values for `name`. Returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        before - self.entries.len()
    }

    /// True if `name` is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Parse the `Content-Length` header.
    pub fn content_length(&self) -> Option<usize> {
        self.get("content-length")
            .and_then(|v| v.trim().parse().ok())
    }

    /// True if `Transfer-Encoding: chunked` is declared.
    pub fn is_chunked(&self) -> bool {
        self.get("transfer-encoding")
            .map(|v| v.to_ascii_lowercase().contains("chunked"))
            .unwrap_or(false)
    }
}

impl fmt::Display for Headers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, v) in &self.entries {
            write!(f, "{n}: {v}\r\n")?;
        }
        Ok(())
    }
}

impl<'a> FromIterator<(&'a str, &'a str)> for Headers {
    fn from_iter<T: IntoIterator<Item = (&'a str, &'a str)>>(iter: T) -> Self {
        let mut h = Headers::new();
        for (n, v) in iter {
            h.append(n, v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_get() {
        let mut h = Headers::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
    }

    #[test]
    fn append_keeps_duplicates_in_order() {
        let mut h = Headers::new();
        h.append("Via", "proxy-a");
        h.append("Via", "proxy-b");
        let vias: Vec<_> = h.get_all("via").collect();
        assert_eq!(vias, vec!["proxy-a", "proxy-b"]);
        assert_eq!(h.get("via"), Some("proxy-a"));
    }

    #[test]
    fn set_replaces() {
        let mut h = Headers::new();
        h.append("X", "1");
        h.append("X", "2");
        h.set("x", "3");
        assert_eq!(h.get_all("X").collect::<Vec<_>>(), vec!["3"]);
    }

    #[test]
    fn remove_reports_count() {
        let mut h = Headers::new();
        h.append("A", "1");
        h.append("a", "2");
        assert_eq!(h.remove("A"), 2);
        assert!(h.is_empty());
    }

    #[test]
    fn content_length_parse() {
        let mut h = Headers::new();
        h.set("Content-Length", " 42 ");
        assert_eq!(h.content_length(), Some(42));
        h.set("Content-Length", "nope");
        assert_eq!(h.content_length(), None);
    }

    #[test]
    fn chunked_detection() {
        let mut h = Headers::new();
        assert!(!h.is_chunked());
        h.set("Transfer-Encoding", "Chunked");
        assert!(h.is_chunked());
        h.set("Transfer-Encoding", "gzip, chunked");
        assert!(h.is_chunked());
    }

    #[test]
    fn display_preserves_order_and_casing() {
        let h: Headers = [("Host", "a.example"), ("X-Hola-Timeline-Debug", "z1")]
            .into_iter()
            .collect();
        assert_eq!(
            h.to_string(),
            "Host: a.example\r\nX-Hola-Timeline-Debug: z1\r\n"
        );
    }
}
