//! The world: every host, resolver, middlebox, origin server, and the
//! measurement infrastructure, run on one deterministic clock.
//!
//! `World` is constructed by the world generator (`worldgen`), driven by the
//! measurement client (`tft-core`) through the proxy-client API in
//! [`crate::client`], and observed through the logs of the measurement
//! servers — the same visibility boundary the paper's authors had.

use crate::node::{ExitNode, NodeId};
use crate::resilience::{CircuitBreakerConfig, CircuitBreakers, RetryPolicy};
use crate::servers::{OriginSite, WebServer};
use crate::session::SessionTable;
use certs::RootStore;
use dnswire::{AuthServer, DnsName};
use inetdb::{Asn, CountryCode, InternetRegistry, Rankings};
use middlebox::{HtmlInjector, ImageTranscoder, MonitorEntity, NxdomainHijacker};
use netsim::{
    FaultCampaign, FaultInjector, PathLatencies, Scheduler, SimDuration, SimRng, SimTime, TraceLog,
};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use substrate::intern::SymbolTable;

/// The service's per-request time budget: the paper reports the client
/// gives up on a request after 20 seconds (§2.3). On by default; a fault
/// campaign's stalls and outages burn against it.
pub const DEFAULT_REQUEST_DEADLINE: SimDuration = SimDuration::from_secs(20);

/// A resolver a node can be configured to use.
#[derive(Debug, Clone)]
pub struct ResolverDef {
    /// The resolver's address (what the authoritative server sees as the
    /// query source).
    pub ip: Ipv4Addr,
    /// The AS the resolver lives in.
    pub asn: Asn,
    /// NXDOMAIN hijacker operating *at this resolver*, if any.
    pub hijacker: Option<NxdomainHijacker>,
}

/// Per-AS in-path HTTP interference.
#[derive(Debug, Clone, Default)]
pub struct IspHttp {
    /// In-path HTML injector (web-filtering appliance).
    pub injector: Option<HtmlInjector>,
    /// In-path image transcoder (mobile carriers; applies to tethered
    /// nodes).
    pub transcoder: Option<ImageTranscoder>,
}

/// Deferred work: a monitor's scheduled refetch arriving at our web server,
/// or a peer joining/leaving the network.
#[derive(Debug, Clone)]
pub(crate) enum WorldEvent {
    MonitorRefetch {
        src: Ipv4Addr,
        host: String,
        path: String,
        user_agent: String,
    },
    /// Flip a node's online state and reschedule the next flip (churn).
    ChurnToggle { node: NodeId },
}

/// Snapshot of how much measurement evidence a world holds, taken with
/// [`World::evidence_mark`] before cloning shards off it.
#[derive(Debug, Clone)]
pub struct EvidenceMark {
    web_log_len: usize,
    auth_log_len: usize,
    bytes_billed: HashMap<String, u64>,
}

/// The simulated Internet plus the measurement infrastructure.
///
/// `Clone` snapshots the world — clock, pending events, RNG state, every
/// server log. The parallel study executor clones one world per shard so
/// disjoint node populations can be probed concurrently, then merges the
/// measurement evidence back with [`World::absorb_evidence`].
///
/// ## Shared-immutable sections (the overlay contract)
///
/// The construction-time bulk of the world — the Internet registry, the
/// rankings, the node population, routing pools, resolver/middlebox/origin
/// directories, the root store — is held behind `Arc` and **shared** between
/// a world and its clones; only the small mutable overlay (scheduler, RNG,
/// server logs, sessions, caches, billing, breakers) is deep-copied. A
/// shard clone is therefore a handful of reference-count bumps rather than
/// tens of millions of allocations (this removed a 1.7× *slow-down* at 8
/// workers — see DESIGN.md's bench section). The sharing is copy-on-write:
/// every mutator goes through [`Arc::make_mut`], so a world that does write
/// a shared section (worldgen wiring, churn toggles, per-node TLS
/// interceptor state) privately unshares exactly that section first —
/// clones still share nothing *observable*, pinned by the overlay
/// determinism tests. No section is behind a lock and there is no interior
/// mutability: two clones can never see each other's writes.
#[derive(Clone)]
pub struct World {
    pub(crate) sched: Scheduler<WorldEvent>,
    pub(crate) rng: SimRng,
    /// The registry (RouteViews + CAIDA equivalent), public read access for
    /// the analysis layer. Shared-immutable across clones.
    pub registry: Arc<InternetRegistry>,
    /// Per-country site rankings (Alexa equivalent), public read access.
    /// Shared-immutable across clones.
    pub rankings: Arc<Rankings>,
    /// Deterministic site-symbol table: every probe-able origin hostname,
    /// interned once at world construction in site-plan order (DESIGN.md
    /// §10). Probe loops and the analysis layer only *look up* and
    /// *resolve* — they never insert, so shard execution order cannot
    /// perturb ids. Shared-immutable across clones.
    pub site_symbols: Arc<SymbolTable>,
    pub(crate) latencies: PathLatencies,
    pub(crate) fault: FaultInjector,
    pub(crate) campaign: FaultCampaign,
    pub(crate) request_deadline: Option<SimDuration>,
    pub(crate) retry_policy: RetryPolicy,
    pub(crate) breakers: CircuitBreakers,
    pub(crate) trace: TraceLog,

    /// Per-node `Arc` inside a shared `Arc`: a write to one node (TLS
    /// interceptor issuing a cert, a churn toggle) copies that node and the
    /// pointer vector, never the whole population.
    pub(crate) nodes: Arc<Vec<Arc<ExitNode>>>,
    pub(crate) pool_by_country: Arc<HashMap<CountryCode, Vec<NodeId>>>,
    pub(crate) pool_all: Arc<Vec<NodeId>>,

    pub(crate) resolvers: Arc<HashMap<Ipv4Addr, ResolverDef>>,
    pub(crate) transparent_dns: Arc<HashMap<Asn, NxdomainHijacker>>,
    pub(crate) isp_http: Arc<HashMap<Asn, IspHttp>>,
    pub(crate) monitors: Arc<Vec<MonitorEntity>>,
    /// Pre-rendered RNG fork labels, one per monitor entity
    /// (`monitor-{idx}`): the per-request refetch scheduler forks its RNG
    /// by label and must not `format!` one on every request.
    pub(crate) monitor_fork_labels: Arc<Vec<String>>,

    pub(crate) auth_server: AuthServer,
    pub(crate) auth_apex: DnsName,
    pub(crate) web_server: WebServer,
    pub(crate) web_ip: Ipv4Addr,

    pub(crate) origin_sites: Arc<HashMap<String, OriginSite>>,
    pub(crate) origin_by_ip: Arc<HashMap<Ipv4Addr, String>>,
    pub(crate) landing: Arc<HashMap<Ipv4Addr, NxdomainHijacker>>,

    /// The public root store (OS X 10.11-like). Shared-immutable across
    /// clones.
    pub root_store: Arc<RootStore>,
    pub(crate) sessions: SessionTable,
    pub(crate) resolver_caches: HashMap<Ipv4Addr, dnswire::DnsCache>,
    pub(crate) resolver_caching: bool,
    pub(crate) customer_rate: Option<(u64, SimDuration)>,
    pub(crate) customer_buckets: HashMap<String, netsim::TokenBucket>,
    pub(crate) max_attempts: usize,
    pub(crate) churn_mean: Option<SimDuration>,
    pub(crate) smtp: crate::smtp_flow::SmtpPlane,
    pub(crate) bytes_billed: HashMap<String, u64>,
    pub(crate) google_anycast: Vec<Ipv4Addr>,
    /// Reused wire-codec scratch buffers (DESIGN.md §10). Per-clone, so
    /// every shard fork owns its own set; recycled across that shard's
    /// probes by the flow layer.
    pub(crate) scratch: crate::flows::WireScratch,
}

impl World {
    /// Create an empty world.
    ///
    /// * `seed` — master determinism seed;
    /// * `auth_apex` — the domain whose authoritative server we run (all
    ///   probe names live under it);
    /// * `web_ip` — our web server's address;
    /// * `google_anycast` — the pool of Google anycast resolver instances
    ///   (the super proxy uses the first; exit nodes configured with Google
    ///   DNS hit one based on their location).
    pub fn new(
        seed: u64,
        auth_apex: DnsName,
        web_ip: Ipv4Addr,
        google_anycast: Vec<Ipv4Addr>,
        registry: InternetRegistry,
        root_store: RootStore,
    ) -> Self {
        assert!(
            !google_anycast.is_empty(),
            "need at least one Google anycast instance"
        );
        let zone = dnswire::Zone::new(auth_apex.clone());
        World {
            sched: Scheduler::new(),
            rng: SimRng::new(seed).fork("world"),
            registry: Arc::new(registry),
            rankings: Arc::new(Rankings::new()),
            site_symbols: Arc::new(SymbolTable::new()),
            latencies: PathLatencies::default(),
            fault: FaultInjector::none(),
            campaign: FaultCampaign::none(),
            request_deadline: Some(DEFAULT_REQUEST_DEADLINE),
            retry_policy: RetryPolicy::none(),
            breakers: CircuitBreakers::disabled(),
            trace: TraceLog::disabled(),
            nodes: Arc::new(Vec::new()),
            pool_by_country: Arc::new(HashMap::new()),
            pool_all: Arc::new(Vec::new()),
            resolvers: Arc::new(HashMap::new()),
            transparent_dns: Arc::new(HashMap::new()),
            isp_http: Arc::new(HashMap::new()),
            monitors: Arc::new(Vec::new()),
            monitor_fork_labels: Arc::new(Vec::new()),
            auth_server: AuthServer::new(zone),
            auth_apex,
            web_server: WebServer::new(),
            web_ip,
            origin_sites: Arc::new(HashMap::new()),
            origin_by_ip: Arc::new(HashMap::new()),
            landing: Arc::new(HashMap::new()),
            root_store: Arc::new(root_store),
            sessions: SessionTable::new(),
            resolver_caches: HashMap::new(),
            resolver_caching: true,
            customer_rate: None,
            customer_buckets: HashMap::new(),
            max_attempts: crate::flows::MAX_ATTEMPTS,
            churn_mean: None,
            smtp: crate::smtp_flow::SmtpPlane::default(),
            bytes_billed: HashMap::new(),
            google_anycast,
            scratch: crate::flows::WireScratch::default(),
        }
    }

    // -- construction (used by worldgen) ------------------------------------

    /// Add an exit node. Only exit-eligible platforms join the routing
    /// pools; others exist but never receive traffic (§2.2).
    pub fn add_node(&mut self, node: ExitNode) -> NodeId {
        let id = node.id;
        assert_eq!(
            id.0 as usize,
            self.nodes.len(),
            "nodes must be added densely in id order"
        );
        if node.platform.exit_eligible() {
            Arc::make_mut(&mut self.pool_by_country)
                .entry(node.country)
                .or_default()
                .push(id);
            Arc::make_mut(&mut self.pool_all).push(id);
        }
        Arc::make_mut(&mut self.nodes).push(Arc::new(node));
        id
    }

    /// Replace the rankings directory (worldgen wiring).
    pub fn set_rankings(&mut self, rankings: Rankings) {
        self.rankings = Arc::new(rankings);
    }

    /// Replace the site-symbol table (worldgen wiring). The table must be
    /// complete before the first probe: experiments look symbols up by
    /// hostname and treat a miss as a world-construction bug.
    pub fn set_site_symbols(&mut self, table: SymbolTable) {
        self.site_symbols = Arc::new(table);
    }

    /// Register a resolver.
    pub fn add_resolver(&mut self, def: ResolverDef) {
        Arc::make_mut(&mut self.resolvers).insert(def.ip, def);
    }

    /// Install a transparent in-path DNS hijacker for an AS.
    pub fn set_transparent_dns(&mut self, asn: Asn, hijacker: NxdomainHijacker) {
        Arc::make_mut(&mut self.transparent_dns).insert(asn, hijacker);
    }

    /// Install in-path HTTP interference for an AS.
    pub fn set_isp_http(&mut self, asn: Asn, cfg: IspHttp) {
        Arc::make_mut(&mut self.isp_http).insert(asn, cfg);
    }

    /// Register a monitor entity; returns its index for node wiring.
    pub fn add_monitor(&mut self, entity: MonitorEntity) -> usize {
        let monitors = Arc::make_mut(&mut self.monitors);
        monitors.push(entity);
        let idx = monitors.len() - 1;
        Arc::make_mut(&mut self.monitor_fork_labels).push(format!("monitor-{idx}"));
        idx
    }

    /// Register an origin site (popular / university / invalid-cert site).
    pub fn add_origin_site(&mut self, site: OriginSite) {
        // Every origin host is probe-able, so it must be in the
        // site-symbol table; interning here (idempotent after worldgen's
        // canonical-order pass) keeps hand-built test worlds complete too.
        Arc::make_mut(&mut self.site_symbols).intern(&site.host);
        Arc::make_mut(&mut self.origin_by_ip).insert(site.ip, site.host.clone());
        Arc::make_mut(&mut self.origin_sites).insert(site.host.clone(), site);
    }

    /// Register a hijack landing server at `ip` serving `hijacker`'s page.
    pub fn add_landing(&mut self, ip: Ipv4Addr, hijacker: NxdomainHijacker) {
        Arc::make_mut(&mut self.landing).insert(ip, hijacker);
    }

    /// Replace the fault injector on the exit-node link.
    pub fn set_fault_injector(&mut self, fault: FaultInjector) {
        self.fault = fault;
    }

    /// Install a scripted fault campaign on the exit-node link. Evaluated
    /// after the uniform injector on each delivery attempt; an inert
    /// campaign (the default) draws nothing and changes nothing.
    pub fn set_fault_campaign(&mut self, campaign: FaultCampaign) {
        self.campaign = campaign;
    }

    /// Set the per-request deadline (the paper's 20 s budget, §2.3). Once a
    /// request's virtual clock passes admission + deadline, the attempt
    /// loop stops with [`crate::ProxyError::DeadlineExceeded`]. `None`
    /// disables the deadline.
    pub fn set_request_deadline(&mut self, deadline: Option<SimDuration>) {
        self.request_deadline = deadline;
    }

    /// Set the retry backoff policy. The default ([`RetryPolicy::none`])
    /// retries immediately, as the service historically did.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// Configure circuit breakers for exit selection (per node and/or per
    /// ISP). Disabled by default.
    pub fn set_circuit_breaker(
        &mut self,
        node_cfg: Option<CircuitBreakerConfig>,
        isp_cfg: Option<CircuitBreakerConfig>,
    ) {
        self.breakers = CircuitBreakers::new(node_cfg, isp_cfg);
    }

    /// Replace the latency model.
    pub fn set_latencies(&mut self, latencies: PathLatencies) {
        self.latencies = latencies;
    }

    /// Override the session stickiness window (ablation knob; 0 disables
    /// sessions — the d1/d2 methodology depends on them).
    pub fn set_session_ttl(&mut self, ttl: SimDuration) {
        self.sessions.set_ttl(ttl);
    }

    /// Rate-limit each customer at the super proxy: at most `requests`
    /// per `interval` (commercial proxy services throttle exactly like
    /// this). Requests over the limit are not rejected but delayed to the
    /// next bucket refill — visible as virtual-time stretch.
    pub fn set_customer_rate_limit(&mut self, requests: u64, interval: SimDuration) {
        self.customer_rate = Some((requests, interval));
        self.customer_buckets.clear();
    }

    /// When rate limiting is active, the virtual time at which `customer`'s
    /// next request may proceed (consuming one token). `now` otherwise.
    pub(crate) fn admit_customer(&mut self, customer: &str, now: SimTime) -> SimTime {
        let Some((cap, interval)) = self.customer_rate else {
            return now;
        };
        let bucket = self
            .customer_buckets
            .entry(customer.to_string())
            .or_insert_with(|| netsim::TokenBucket::new(cap, interval));
        if bucket.try_take(now, 1) {
            return now;
        }
        let at = bucket.next_available(now, 1).expect("capacity >= 1");
        let ok = bucket.try_take(at, 1);
        debug_assert!(ok, "token available at the refill boundary");
        at
    }

    /// Enable or disable resolver caching (on by default; disabling it is
    /// an ablation that shows the unique-name methodology would also have
    /// worked against cacheless resolvers).
    pub fn set_resolver_caching(&mut self, on: bool) {
        self.resolver_caching = on;
        if !on {
            self.resolver_caches.clear();
        }
    }

    /// Override the retry budget (ablation knob; the service default is 5).
    pub fn set_max_attempts(&mut self, attempts: usize) {
        assert!(attempts >= 1, "need at least one attempt");
        self.max_attempts = attempts;
    }

    /// Enable or disable tracing (for the figure timelines).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    // -- accessors -----------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Advance the clock, firing any due monitor refetches.
    pub fn advance(&mut self, by: SimDuration) {
        let deadline = self.now() + by;
        while let Some(fired) = self.sched.next_until(deadline) {
            self.fire(fired.at, fired.payload);
        }
    }

    /// Run until every scheduled event has fired (ends the observation
    /// window of the monitoring experiment).
    ///
    /// # Panics
    /// Panics when churn is enabled — churn reschedules itself forever, so
    /// quiescence never arrives; use [`World::advance`] with an explicit
    /// window instead.
    pub fn run_to_quiescence(&mut self) {
        assert!(
            self.churn_mean.is_none(),
            "run_to_quiescence never returns under churn; use advance()"
        );
        while let Some(fired) = self.sched.next() {
            let at = fired.at;
            self.fire(at, fired.payload);
        }
    }

    fn fire(&mut self, at: SimTime, ev: WorldEvent) {
        match ev {
            WorldEvent::MonitorRefetch {
                src,
                host,
                path,
                user_agent,
            } => {
                self.trace
                    .record_with(at, netsim::TraceCategory::Monitor, || {
                        format!("unexpected request for http://{host}{path} from {src}")
                    });
                self.web_server
                    .handle(at, src, &host, &path, Some(&user_agent));
            }
            WorldEvent::ChurnToggle { node } => {
                let n = self.node_cow(node);
                n.online = !n.online;
                if let Some(mean) = self.churn_mean {
                    let next = Self::churn_interval(&mut self.rng, mean);
                    self.sched.schedule(next, WorldEvent::ChurnToggle { node });
                }
            }
        }
    }

    /// Enable peer churn: every node toggles between online and offline at
    /// exponentially distributed intervals with the given mean. The Hola
    /// population is residential and "very dynamic" (§3.2, footnote 6);
    /// churn exercises the session-pin + retry + zID-cross-check machinery
    /// under realistic conditions.
    pub fn enable_churn(&mut self, mean: SimDuration) {
        assert!(!mean.is_zero(), "churn interval must be positive");
        self.churn_mean = Some(mean);
        for id in 0..self.nodes.len() as u32 {
            let first = Self::churn_interval(&mut self.rng, mean);
            self.sched
                .schedule(first, WorldEvent::ChurnToggle { node: NodeId(id) });
        }
    }

    fn churn_interval(rng: &mut SimRng, mean: SimDuration) -> SimDuration {
        use netsim::rng::RngExt;
        // Exponential inter-arrival via inverse transform; clamp away from
        // zero so two toggles never collapse into the same instant.
        let u: f64 = rng.random_range(1e-9..1.0);
        let ms = (-(u.ln()) * mean.as_millis() as f64).max(1.0);
        SimDuration::from_millis(ms as u64)
    }

    /// Mutable access to the authoritative DNS server (the measurement
    /// client provisions probe names and reads the query log).
    pub fn auth_server_mut(&mut self) -> &mut AuthServer {
        &mut self.auth_server
    }

    /// Read access to the authoritative DNS server.
    pub fn auth_server(&self) -> &AuthServer {
        &self.auth_server
    }

    /// The apex of our authoritative zone.
    pub fn auth_apex(&self) -> &DnsName {
        &self.auth_apex
    }

    /// Mutable access to the measurement web server.
    pub fn web_server_mut(&mut self) -> &mut WebServer {
        &mut self.web_server
    }

    /// Read access to the measurement web server.
    pub fn web_server(&self) -> &WebServer {
        &self.web_server
    }

    /// Our web server's address.
    pub fn web_ip(&self) -> Ipv4Addr {
        self.web_ip
    }

    /// The trace log (figure rendering).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Clear the trace log.
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Number of nodes in the world (eligible or not).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Ground-truth node access — **analysis code must not call this**; it
    /// exists for world construction, scoring, and tests.
    pub fn node(&self, id: NodeId) -> &ExitNode {
        &self.nodes[id.0 as usize]
    }

    /// Ground-truth mutable node access (worldgen wiring, churn tests).
    /// Copy-on-write: unshares the pointer vector and the touched node if
    /// they are shared with a clone — never the rest of the population.
    pub fn node_mut(&mut self, id: NodeId) -> &mut ExitNode {
        self.node_cow(id)
    }

    /// Copy-on-write mutable access to one node (see [`World::node_mut`]).
    pub(crate) fn node_cow(&mut self, id: NodeId) -> &mut ExitNode {
        Arc::make_mut(&mut Arc::make_mut(&mut self.nodes)[id.0 as usize])
    }

    /// All node ids (ground truth / scoring).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The per-country exit counts Luminati reports to clients — public
    /// API information the crawler uses for proportional sampling (§3.2).
    pub fn reported_country_counts(&self) -> Vec<(CountryCode, usize)> {
        let mut v: Vec<(CountryCode, usize)> = self
            .pool_by_country
            .iter()
            .map(|(cc, pool)| (*cc, pool.len()))
            .collect();
        v.sort();
        v
    }

    /// Public directory of HTTPS-capable sites: `(host, ip)` per country
    /// rank plus the university and invalid sites. The measurement client
    /// needs the IPs because CONNECT takes an address (§2.3).
    pub fn site_address(&self, host: &str) -> Option<Ipv4Addr> {
        self.origin_sites.get(host).map(|s| s.ip)
    }

    /// The certificate chain a site serves when reached *directly* (not
    /// through an exit node). The measurement client may use this only for
    /// the invalid sites it operates itself — it knows those certificates
    /// because it created them (§6.1's exact-match check).
    pub fn expected_chain(&self, host: &str) -> Option<&[certs::Certificate]> {
        self.origin_sites.get(host).map(|s| s.chain.as_slice())
    }

    /// Total bytes billed to a customer (per-GB pricing, §2.3).
    pub fn bytes_billed(&self, customer: &str) -> u64 {
        self.bytes_billed.get(customer).copied().unwrap_or(0)
    }

    /// The monitor-entity table (ground truth / scoring).
    pub fn monitor_entities(&self) -> &[MonitorEntity] {
        &self.monitors
    }

    /// Ground-truth resolver lookup (scoring only).
    pub fn resolver_def(&self, ip: Ipv4Addr) -> Option<&ResolverDef> {
        self.resolvers.get(&ip)
    }

    /// All registered resolvers (for longitudinal world mutation and
    /// scoring).
    pub fn resolvers(&self) -> impl Iterator<Item = &ResolverDef> {
        self.resolvers.values()
    }

    /// Remove a transparent DNS proxy (longitudinal scenarios: an ISP
    /// turns its hijacking appliance off).
    pub fn clear_transparent_dns(&mut self, asn: Asn) -> bool {
        Arc::make_mut(&mut self.transparent_dns)
            .remove(&asn)
            .is_some()
    }

    /// Ground-truth transparent-DNS-proxy lookup (scoring only).
    pub fn transparent_dns_of(&self, asn: Asn) -> Option<&NxdomainHijacker> {
        self.transparent_dns.get(&asn)
    }

    /// Ground-truth in-path HTTP interference lookup (scoring only).
    pub fn isp_http_of(&self, asn: Asn) -> Option<&IspHttp> {
        self.isp_http.get(&asn)
    }

    /// All registered origin sites (used by the measurement client as the
    /// public "site directory" — hostnames and addresses are public
    /// knowledge, their behaviour is not).
    pub fn origin_hosts(&self) -> impl Iterator<Item = &str> {
        self.origin_sites.keys().map(|s| s.as_str())
    }

    /// The Google anycast instance the super proxy resolves through.
    pub fn super_proxy_dns_src(&self) -> Ipv4Addr {
        self.google_anycast[0]
    }

    /// Force a private deep copy of every shared-immutable section, so this
    /// world shares no memory with any clone it was forked from.
    ///
    /// Test support: the overlay determinism tests run a study on an
    /// unshared world and on a normally-forked one and assert byte-identical
    /// output — proving the `Arc` sharing is a pure allocation optimization
    /// (the historical whole-clone executor and the shared-world executor
    /// cannot diverge). Not used on any production path.
    pub fn unshare(&mut self) {
        macro_rules! deep_copy {
            ($($field:ident),+ $(,)?) => {$(
                // tft-lint: allow(hot-path-alloc, reason = "unshare IS the deep copy - it exists so tests can force the historical whole-clone executor; no production wave calls it")
                self.$field = Arc::new((*self.$field).clone());
            )+};
        }
        deep_copy!(
            registry,
            rankings,
            site_symbols,
            pool_by_country,
            pool_all,
            resolvers,
            transparent_dns,
            isp_http,
            monitors,
            monitor_fork_labels,
            origin_sites,
            origin_by_ip,
            landing,
            root_store,
        );
        // tft-lint: allow(hot-path-alloc, reason = "unshare IS the deep copy - it exists so tests can force the historical whole-clone executor; no production wave calls it")
        self.nodes = Arc::new(self.nodes.iter().map(|n| Arc::new((**n).clone())).collect());
    }

    // -- shard evidence merging (parallel study executor) --------------------

    /// A marker taken *before* cloning this world into shards, recording how
    /// much measurement evidence already exists. [`World::absorb_evidence`]
    /// uses it to copy back only what a shard added.
    pub fn evidence_mark(&self) -> EvidenceMark {
        EvidenceMark {
            web_log_len: self.web_server.log().len(),
            auth_log_len: self.auth_server.log().len(),
            bytes_billed: self.bytes_billed.clone(),
        }
    }

    /// Merge the measurement evidence a shard produced back into this world:
    /// web-server and authoritative-DNS log entries beyond the mark are
    /// appended (callers absorb shards in shard order, so the merged logs are
    /// deterministic), per-customer billing deltas are added, and the clock
    /// advances to the shard's finish time if it is ahead (firing any events
    /// due in between).
    ///
    /// Only *evidence* merges; shard-local control state (sessions, resolver
    /// caches, zone provisioning) stays in the shard, exactly as a real
    /// measurement backend only ever sees its servers' logs and the bill.
    pub fn absorb_evidence(&mut self, shard: &World, mark: &EvidenceMark) {
        self.web_server
            .absorb_log(&shard.web_server.log()[mark.web_log_len..]);
        self.auth_server
            .absorb_log(&shard.auth_server.log()[mark.auth_log_len..]);
        for (customer, &billed) in &shard.bytes_billed {
            let base = mark.bytes_billed.get(customer).copied().unwrap_or(0);
            let delta = billed
                .checked_sub(base)
                .expect("shard billing went backwards");
            if delta > 0 {
                *self.bytes_billed.entry(customer.clone()).or_insert(0) += delta;
            }
        }
        if let Some(ahead) = shard.now().checked_since(self.now()) {
            if !ahead.is_zero() {
                self.advance(ahead);
            }
        }
    }

    // -- checkpoint/restore support (tft-core crash recovery) ----------------

    /// Web-server log entries recorded after `mark` was taken.
    pub fn web_log_since<'a>(&'a self, mark: &EvidenceMark) -> &'a [crate::WebLogEntry] {
        &self.web_server.log()[mark.web_log_len..]
    }

    /// Authoritative-DNS log entries recorded after `mark` was taken.
    pub fn auth_log_since<'a>(&'a self, mark: &EvidenceMark) -> &'a [dnswire::QueryLogEntry] {
        &self.auth_server.log()[mark.auth_log_len..]
    }

    /// Per-customer billing accrued since `mark`, in canonical (sorted
    /// customer) order.
    pub fn billing_delta(&self, mark: &EvidenceMark) -> Vec<(String, u64)> {
        let mut deltas: Vec<(String, u64)> = self
            .bytes_billed
            .iter()
            .filter_map(|(customer, &billed)| {
                let base = mark.bytes_billed.get(customer).copied().unwrap_or(0);
                let delta = billed
                    .checked_sub(base)
                    .expect("billing went backwards since mark");
                (delta > 0).then(|| (customer.clone(), delta))
            })
            .collect();
        deltas.sort();
        deltas
    }

    /// Fingerprint of the world RNG's stream position: the next value the
    /// generator *would* produce, read off a clone so the live stream is
    /// untouched. Two worlds whose RNGs agree on seed and position agree on
    /// this value; a checkpoint pins it so restore can prove the rebuilt
    /// world's stream is where the original's was.
    pub fn rng_fingerprint(&self) -> u64 {
        use netsim::rng::Rng;
        self.rng.clone().next_u64()
    }

    /// Number of live proxy sessions — a watermark the checkpoint layer
    /// pins. Study stages end with their shard sessions discarded, so a
    /// stage-boundary world holds zero; a nonzero count means the world is
    /// mid-probe and not checkpointable.
    pub fn session_watermark(&self) -> u64 {
        self.sessions.len() as u64
    }

    /// True when no scheduled event is pending. Stage-boundary worlds in a
    /// standard (churn-free) study are idle: advancing them only moves the
    /// clock, which is what makes clock-only restore exact.
    pub fn is_idle(&self) -> bool {
        self.sched.is_idle()
    }

    /// Splice checkpointed evidence into a freshly rebuilt world (the
    /// restore path): append recorded server-log entries and add billing
    /// deltas. The caller is responsible for having advanced the clock to
    /// the checkpoint time first and for feeding entries in canonical
    /// (experiment-major) order — this is the same append discipline as
    /// [`World::absorb_evidence`], sourced from a checkpoint instead of a
    /// live shard.
    pub fn restore_evidence(
        &mut self,
        web: &[crate::WebLogEntry],
        auth: &[dnswire::QueryLogEntry],
        billing: &[(String, u64)],
    ) {
        self.web_server.absorb_log(web);
        self.auth_server.absorb_log(auth);
        for (customer, delta) in billing {
            if *delta > 0 {
                *self.bytes_billed.entry(customer.clone()).or_insert(0) += delta;
            }
        }
    }

    /// The anycast instance a Google-DNS-configured node in `country` hits.
    pub(crate) fn google_instance_for(&self, country: CountryCode, node: NodeId) -> Ipv4Addr {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in country.as_str().bytes().chain(node.0.to_be_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.google_anycast[(h % self.google_anycast.len() as u64) as usize]
    }
}
