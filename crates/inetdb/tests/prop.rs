//! Property-based tests for the prefix trie and CIDR types.

use inetdb::{Ipv4Net, PrefixTrie};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use substrate::qc::{self, Config, Gen};
use substrate::{qc_assert, qc_assert_eq};

/// Reference longest-prefix match: scan all prefixes, keep the longest that
/// contains the address.
fn reference_lpm(routes: &HashMap<Ipv4Net, u32>, ip: Ipv4Addr) -> Option<u32> {
    routes
        .iter()
        .filter(|(net, _)| net.contains(ip))
        .max_by_key(|(net, _)| net.prefix_len())
        .map(|(_, v)| *v)
}

fn nets() -> Gen<Ipv4Net> {
    qc::tuple2(qc::any_u32(), qc::ints(0u8..=32))
        .map(|(addr, len)| Ipv4Net::new(Ipv4Addr::from(addr), len))
}

/// A route table keyed by prefix (last duplicate wins, as with proptest's
/// `hash_map` collection strategy).
fn route_tables(max: usize) -> Gen<HashMap<Ipv4Net, u32>> {
    qc::vec_of(qc::tuple2(nets(), qc::any_u32()), 0..max).map(|pairs| pairs.into_iter().collect())
}

#[test]
fn trie_matches_reference_lpm() {
    qc::check(
        "trie vs reference LPM",
        &Config::default(),
        &qc::tuple2(route_tables(64), qc::vec_of(qc::any_u32(), 1..64)),
        |(routes, probes)| {
            let mut trie = PrefixTrie::new();
            for (&net, &v) in routes {
                trie.insert(net, v);
            }
            qc_assert_eq!(trie.len(), routes.len());
            for &p in probes {
                let ip = Ipv4Addr::from(p);
                qc_assert_eq!(trie.lookup(ip).copied(), reference_lpm(routes, ip));
            }
            qc::pass()
        },
    );
}

#[test]
fn cidr_display_parse_roundtrip() {
    qc::check(
        "cidr display/parse roundtrip",
        &Config::default(),
        &nets(),
        |net| {
            let parsed: Ipv4Net = net.to_string().parse().unwrap();
            qc_assert_eq!(*net, parsed);
            qc::pass()
        },
    );
}

#[test]
fn cidr_contains_its_own_addresses() {
    qc::check(
        "cidr contains own addresses",
        &Config::default(),
        &qc::tuple2(qc::any_u32(), qc::ints(8u8..=32)),
        |(addr, len)| {
            let net = Ipv4Net::new(Ipv4Addr::from(*addr), *len);
            // Probe first, last, and a middle address of the prefix.
            let size = net.size();
            for i in [0, size / 2, size - 1] {
                qc_assert!(net.contains(net.nth(i)));
            }
            qc::pass()
        },
    );
}

#[test]
fn exact_get_after_insert() {
    qc::check(
        "exact get after insert",
        &Config::default(),
        &route_tables(32),
        |routes| {
            let mut trie = PrefixTrie::new();
            for (&net, &v) in routes {
                trie.insert(net, v);
            }
            for (&net, &v) in routes {
                qc_assert_eq!(trie.get(net), Some(&v));
            }
            qc::pass()
        },
    );
}
