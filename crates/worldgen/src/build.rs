//! Spec → world construction.
//!
//! Build order matters: all address space is registered before the RIB
//! snapshot, nodes are added densely in id order, and every random choice
//! flows from the spec's seed — the same spec always builds the same world.

use crate::spec::*;
use crate::truth::GroundTruth;
use certs::{self, CertAuthority, DistinguishedName, RootStore};
use dnswire::DnsName;
use inetdb::{Asn, CountryCode, InternetRegistry, Rankings};
use middlebox::{
    monitor::profiles, HijackVector, HtmlInjector, ImageTranscoder, InvalidCertPolicy, JsFamily,
    MonitorEntity, NxdomainHijacker, ObjectBlocker, RefetchModel, Selectivity, SourcePattern,
    TlsInterceptor,
};
use netsim::rng::RngExt;
use netsim::{SimDuration, SimRng, SimTime};
use proxynet::{ExitNode, IspHttp, NodeId, Platform, ResolverChoice, ResolverDef, World};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use substrate::intern::SymbolTable;

/// A built world plus the planted ground truth.
pub struct BuiltWorld {
    /// The runnable world.
    pub world: World,
    /// What was planted, for scoring the analysis afterwards.
    pub truth: GroundTruth,
}

/// Build a world from a spec.
///
/// ```
/// let built = worldgen::build(&worldgen::smoke_spec(7));
/// assert!(built.truth.total_nodes > 0);
/// assert!(!built.truth.dns_hijacked.is_empty());
/// ```
///
/// # Panics
/// Panics if the spec fails [`crate::validate::validate`]; use
/// [`try_build`] for a `Result`.
pub fn build(spec: &WorldSpec) -> BuiltWorld {
    match try_build(spec) {
        Ok(b) => b,
        Err(errors) => {
            let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
            panic!("invalid world spec: {}", msgs.join("; "));
        }
    }
}

/// Build a world from a spec, returning validation errors instead of
/// panicking.
pub fn try_build(spec: &WorldSpec) -> Result<BuiltWorld, Vec<crate::validate::SpecError>> {
    crate::validate::validate(spec)?;
    Ok(Builder::new(spec).run())
}

struct IspNodes {
    range: std::ops::Range<u32>,
    monitored_share: Option<(String, f64)>,
}

struct Builder<'a> {
    spec: &'a WorldSpec,
    rng: SimRng,
    registry: InternetRegistry,
    roots: RootStore,
    authorities: Vec<CertAuthority>,
}

impl<'a> Builder<'a> {
    fn new(spec: &'a WorldSpec) -> Self {
        let mut rng = SimRng::new(spec.seed).fork("worldgen");
        let (roots, authorities) =
            RootStore::os_x_like(spec.sites.root_store_size, SimTime::EPOCH, &mut rng);
        Builder {
            spec,
            rng,
            registry: InternetRegistry::new(),
            roots,
            authorities,
        }
    }

    fn run(mut self) -> BuiltWorld {
        let spec = self.spec;

        // ---- fixed infrastructure --------------------------------------
        let google_org = self.registry.register_org("Google", CountryCode::new("US"));
        let google_asn = self
            .registry
            .register_as_with_prefix(google_org, inetdb::GOOGLE_ANYCAST_NET.parse().unwrap());
        let meas_org = self
            .registry
            .register_org("Measurement Lab", CountryCode::new("US"));
        let meas_asn = self.registry.register_as(meas_org, 1);
        let web_ip = self.registry.alloc_ip(meas_asn);
        let anycast: Vec<Ipv4Addr> = (0..16)
            .map(|_| self.registry.alloc_ip(google_asn))
            .collect();

        let hosting_org = self
            .registry
            .register_org("WebHosting Inc", CountryCode::new("US"));
        let hosting_asn = self.registry.register_as(hosting_org, 8);
        let cdn_org = self
            .registry
            .register_org("Assist CDN", CountryCode::new("US"));
        let cdn_asn = self.registry.register_as(cdn_org, 1);

        // ---- public resolver services -----------------------------------
        struct PublicServer {
            ip: Ipv4Addr,
            hijack: bool,
        }
        let mut public_servers: Vec<PublicServer> = Vec::new();
        let mut pending_resolvers: Vec<ResolverDef> = Vec::new();
        let mut pending_landings: Vec<(Ipv4Addr, NxdomainHijacker)> = Vec::new();
        for svc in &spec.public_resolvers.services {
            let org = self
                .registry
                .register_org(&svc.name, CountryCode::new("US"));
            let asn = self.registry.register_as(org, 1);
            let landing_ip = self.registry.alloc_ip(asn);
            let hijacker = svc.hijack.then(|| {
                NxdomainHijacker::new(
                    HijackVector::PublicResolver,
                    vec![format!(
                        "http://{}",
                        svc.landing_domain
                            .clone()
                            .unwrap_or_else(|| format!("assist.{}.example", slug(&svc.name)))
                    )],
                    landing_ip,
                    JsFamily::Custom,
                )
            });
            if let Some(h) = &hijacker {
                pending_landings.push((landing_ip, h.clone()));
            }
            for _ in 0..spec.scaled_min1(svc.servers) {
                let ip = self.registry.alloc_ip(asn);
                public_servers.push(PublicServer {
                    ip,
                    hijack: svc.hijack,
                });
                pending_resolvers.push(ResolverDef {
                    ip,
                    asn,
                    hijacker: hijacker.clone(),
                });
            }
        }
        {
            let org = self
                .registry
                .register_org("Public DNS Collective", CountryCode::new("US"));
            let asn = self.registry.register_as(org, 16);
            for _ in 0..spec.scaled_min1(spec.public_resolvers.clean_servers) {
                let ip = self.registry.alloc_ip(asn);
                public_servers.push(PublicServer { ip, hijack: false });
                pending_resolvers.push(ResolverDef {
                    ip,
                    asn,
                    hijacker: None,
                });
            }
        }
        let hijacking_publics: Vec<Ipv4Addr> = public_servers
            .iter()
            .filter(|s| s.hijack)
            .map(|s| s.ip)
            .collect();
        let clean_publics: Vec<Ipv4Addr> = public_servers
            .iter()
            .filter(|s| !s.hijack)
            .map(|s| s.ip)
            .collect();

        // ---- countries, ISPs, address plan -------------------------------
        struct IspPlan {
            country: CountryCode,
            spec: IspSpec,
            asns: Vec<Asn>,
            resolver_ips: Vec<(Ipv4Addr, Asn)>,
            hijacker: Option<NxdomainHijacker>,
        }
        let mut plans: Vec<IspPlan> = Vec::new();
        for cspec in &spec.countries {
            let cc = CountryCode::new(&cspec.code);
            for ispec in &cspec.isps {
                let org = self.registry.register_org(&ispec.name, cc);
                let mut asns = Vec::new();
                for &explicit in &ispec.explicit_asns {
                    asns.push(self.registry.register_as_with_asn(Asn(explicit), org, 2));
                }
                for _ in 0..ispec.auto_as_count {
                    asns.push(self.registry.register_as(org, 2));
                }
                assert!(!asns.is_empty(), "ISP {} has no ASes", ispec.name);
                let n_servers = spec.scaled_min1(ispec.resolver_servers).max(1);
                let resolver_ips: Vec<(Ipv4Addr, Asn)> = (0..n_servers)
                    .map(|i| {
                        let asn = asns[i as usize % asns.len()];
                        (self.registry.alloc_ip(asn), asn)
                    })
                    .collect();
                let hijacker = (ispec.resolver_hijack || ispec.transparent_proxy).then(|| {
                    let landing_ip = self.registry.alloc_ip(asns[0]);
                    let domain = ispec
                        .landing_domain
                        .clone()
                        .unwrap_or_else(|| format!("assist.{}.example", slug(&ispec.name)));
                    NxdomainHijacker::new(
                        if ispec.resolver_hijack {
                            HijackVector::IspResolver
                        } else {
                            HijackVector::TransparentProxy
                        },
                        vec![format!("http://{domain}")],
                        landing_ip,
                        if ispec.shared_js {
                            JsFamily::SharedVendor
                        } else {
                            JsFamily::Custom
                        },
                    )
                });
                plans.push(IspPlan {
                    country: cc,
                    spec: ispec.clone(),
                    asns,
                    resolver_ips,
                    hijacker,
                });
            }
        }

        // ---- monitor entity address space ---------------------------------
        struct MonitorPlan {
            spec: MonitorSpec,
            source_ips: Vec<Ipv4Addr>,
            egress_pool: Vec<Ipv4Addr>,
        }
        let mut monitor_plans = Vec::new();
        for mspec in &spec.monitors {
            // ISP-level monitors (TalkTalk, Tiscali) run their collectors
            // inside the ISP's own network — that co-location is exactly
            // what lets the analysis attribute them to the ISP (§7.2.2).
            let isp_asn = plans
                .iter()
                .find(|p| {
                    p.spec
                        .monitored_share
                        .as_ref()
                        .map(|(entity, _)| entity == &mspec.name)
                        .unwrap_or(false)
                })
                .map(|p| p.asns[0]);
            let asn = match isp_asn {
                Some(asn) => asn,
                None => {
                    let cc = CountryCode::new(&mspec.home_country);
                    let org = self
                        .registry
                        .register_org(&format!("{} Infrastructure", mspec.name), cc);
                    self.registry.register_as(org, 1)
                }
            };
            let n_ips = spec.scaled_min1(mspec.source_ips).max(2);
            let source_ips: Vec<Ipv4Addr> =
                (0..n_ips).map(|_| self.registry.alloc_ip(asn)).collect();
            let egress_pool: Vec<Ipv4Addr> = (0..16).map(|_| self.registry.alloc_ip(asn)).collect();
            monitor_plans.push(MonitorPlan {
                spec: mspec.clone(),
                source_ips,
                egress_pool,
            });
        }

        // ---- node addresses (before snapshot, after all AS registration) --
        struct NodePlan {
            ip: Ipv4Addr,
            asn: Asn,
            country: CountryCode,
            resolver: ResolverChoice,
            tethered: bool,
            flakiness: f64,
        }
        let mut node_plans: Vec<NodePlan> = Vec::new();
        let mut isp_node_ranges: Vec<IspNodes> = Vec::new();
        for plan in &plans {
            let n_nodes = spec.scaled(plan.spec.nodes);
            let start = node_plans.len() as u32;
            for i in 0..n_nodes {
                let asn = plan.asns[(i % plan.asns.len() as u64) as usize];
                let ip = self.registry.alloc_ip(asn);
                let r: f64 = self.rng.random();
                let resolver = if r < plan.spec.google_dns_share {
                    ResolverChoice::GoogleDns
                } else if r < plan.spec.google_dns_share + plan.spec.public_dns_share {
                    let pick_hijacking = !hijacking_publics.is_empty()
                        && self
                            .rng
                            .random_bool(spec.public_resolvers.hijacking_service_weight);
                    let pool = if pick_hijacking {
                        &hijacking_publics
                    } else {
                        &clean_publics
                    };
                    ResolverChoice::Public(pool[self.rng.random_range(0..pool.len())])
                } else {
                    ResolverChoice::Isp(
                        plan.resolver_ips[self.rng.random_range(0..plan.resolver_ips.len())].0,
                    )
                };
                let tethered = plan
                    .spec
                    .transcoder
                    .as_ref()
                    .map(|t| self.rng.random_bool(t.tethered_share))
                    .unwrap_or(false);
                node_plans.push(NodePlan {
                    ip,
                    asn,
                    country: plan.country,
                    resolver,
                    tethered,
                    flakiness: plan.spec.flakiness,
                });
            }
            isp_node_ranges.push(IspNodes {
                range: start..node_plans.len() as u32,
                monitored_share: plan.spec.monitored_share.clone(),
            });
        }

        // ---- sites -----------------------------------------------------------
        struct SitePlan {
            host: String,
            ip: Ipv4Addr,
            invalid: Option<InvalidKind>,
        }
        #[derive(Clone, Copy)]
        enum InvalidKind {
            SelfSigned,
            Expired,
            WrongName,
        }
        let mut site_plans: Vec<SitePlan> = Vec::new();
        let mut rankings = Rankings::new();
        for cspec in &spec.countries {
            if !cspec.has_rankings {
                continue;
            }
            let cc = CountryCode::new(&cspec.code);
            let names = Rankings::generate_country(cc, spec.sites.sites_per_country);
            for host in &names {
                site_plans.push(SitePlan {
                    host: host.clone(),
                    ip: self.registry.alloc_ip(hosting_asn),
                    invalid: None,
                });
            }
            rankings.set_country(cc, names);
        }
        let unis = Rankings::generate_universities(spec.sites.universities);
        for host in &unis {
            site_plans.push(SitePlan {
                host: host.clone(),
                ip: self.registry.alloc_ip(hosting_asn),
                invalid: None,
            });
        }
        rankings.set_universities(unis);
        for (host, kind) in [
            ("invalid-selfsigned", InvalidKind::SelfSigned),
            ("invalid-expired", InvalidKind::Expired),
            ("invalid-wrongname", InvalidKind::WrongName),
        ] {
            site_plans.push(SitePlan {
                host: format!("{host}.{}", spec.probe_apex),
                ip: self.registry.alloc_ip(hosting_asn),
                invalid: Some(kind),
            });
        }

        // Mail-server addresses (allocated pre-snapshot like everything else).
        let mut mail_ips: std::collections::HashMap<String, Ipv4Addr> =
            std::collections::HashMap::new();
        for cspec in &spec.countries {
            if !cspec.has_rankings {
                continue;
            }
            let cc_lower = cspec.code.to_ascii_lowercase();
            for i in 1..=spec.sites.mail_hosts_per_country {
                mail_ips.insert(
                    format!("mx{i}.{cc_lower}.example"),
                    self.registry.alloc_ip(hosting_asn),
                );
            }
        }

        // End-host hijacker landing addresses.
        let endhost_landings: Vec<(String, Ipv4Addr)> = spec
            .endhost
            .dns_hijackers
            .iter()
            .map(|h| (h.landing_domain.clone(), self.registry.alloc_ip(cdn_asn)))
            .collect();

        // ---- freeze the RIB and create the world ---------------------------
        self.registry.snapshot_rib();
        let apex = DnsName::parse(&spec.probe_apex).expect("valid probe apex");
        let mut world = World::new(
            spec.seed,
            apex,
            web_ip,
            anycast,
            std::mem::replace(&mut self.registry, InternetRegistry::new()),
            self.roots.clone(),
        );
        world.set_rankings(rankings);
        // Site-symbol table: every probe-able origin hostname, interned in
        // site-plan order (ranked sites by country, universities, then the
        // three invalid hosts). Probe loops look these up; a miss there is
        // a bug here.
        let mut site_symbols = SymbolTable::new();
        for sp in &site_plans {
            site_symbols.intern(&sp.host);
        }
        world.set_site_symbols(site_symbols);

        for def in pending_resolvers {
            world.add_resolver(def);
        }
        for (ip, h) in pending_landings {
            world.add_landing(ip, h);
        }
        for plan in &plans {
            if let Some(h) = &plan.hijacker {
                world.add_landing(h.landing_ip, h.clone());
                if plan.spec.resolver_hijack {
                    for &(ip, asn) in &plan.resolver_ips {
                        world.add_resolver(ResolverDef {
                            ip,
                            asn,
                            hijacker: Some(h.clone()),
                        });
                    }
                } else {
                    for &(ip, asn) in &plan.resolver_ips {
                        world.add_resolver(ResolverDef {
                            ip,
                            asn,
                            hijacker: None,
                        });
                    }
                }
                if plan.spec.transparent_proxy {
                    let mut th = h.clone();
                    th.vector = HijackVector::TransparentProxy;
                    for &asn in &plan.asns {
                        world.set_transparent_dns(asn, th.clone());
                    }
                }
            } else {
                for &(ip, asn) in &plan.resolver_ips {
                    world.add_resolver(ResolverDef {
                        ip,
                        asn,
                        hijacker: None,
                    });
                }
            }
            // In-path HTTP interference.
            let isp_http = IspHttp {
                injector: plan
                    .spec
                    .isp_injector_meta
                    .as_deref()
                    .map(HtmlInjector::meta_tag),
                transcoder: plan
                    .spec
                    .transcoder
                    .as_ref()
                    .map(|t| ImageTranscoder::new(t.ratios.clone())),
            };
            if isp_http.injector.is_some() || isp_http.transcoder.is_some() {
                for &asn in &plan.asns {
                    world.set_isp_http(asn, isp_http.clone());
                }
            }
            if plan.spec.smtp_strip {
                for &asn in &plan.asns {
                    world.set_isp_smtp(asn, middlebox::SmtpInterceptor::stripper());
                }
            }
        }

        // ---- nodes -----------------------------------------------------------
        for (i, np) in node_plans.iter().enumerate() {
            let mut node = ExitNode::new(
                NodeId(i as u32),
                np.ip,
                np.asn,
                np.country,
                Platform::Windows,
                np.resolver,
            );
            node.flakiness = np.flakiness;
            node.mobile_tethered = np.tethered;
            world.add_node(node);
        }
        let total_nodes = world.node_count() as u32;

        // ---- monitors ----------------------------------------------------------
        let mut monitor_idx: HashMap<String, usize> = HashMap::new();
        let mut monitor_egress: HashMap<String, Vec<Ipv4Addr>> = HashMap::new();
        for mp in &monitor_plans {
            let model: RefetchModel = match mp.spec.profile {
                MonitorProfile::TrendMicro => profiles::trend_micro(),
                MonitorProfile::TalkTalk => profiles::talktalk(),
                MonitorProfile::Commtouch => profiles::commtouch(),
                MonitorProfile::AnchorFree => profiles::anchorfree(),
                MonitorProfile::Bluecoat => profiles::bluecoat(),
                MonitorProfile::Tiscali => profiles::tiscali(),
            };
            let idx = world.add_monitor(MonitorEntity {
                name: mp.spec.name.clone(),
                source_ips: mp.source_ips.clone(),
                source_pattern: if mp.spec.fixed_second_source {
                    SourcePattern::AnyThenFixedLast
                } else {
                    SourcePattern::AnyFromPool
                },
                model,
                user_agent: mp.spec.user_agent.clone(),
            });
            monitor_idx.insert(mp.spec.name.clone(), idx);
            monitor_egress.insert(mp.spec.name.clone(), mp.egress_pool.clone());
        }

        // ISP-level monitoring (TalkTalk / Tiscali share of own nodes).
        for isp in &isp_node_ranges {
            if let Some((entity, share)) = &isp.monitored_share {
                let idx = *monitor_idx
                    .get(entity)
                    .unwrap_or_else(|| panic!("unknown monitor entity {entity}"));
                for id in isp.range.clone() {
                    if self.rng.random_bool(*share) {
                        world.node_mut(NodeId(id)).software.monitors.push(idx);
                    }
                }
            }
        }

        // ---- global end-host assignment ----------------------------------------
        let pick_nodes = |rng: &mut SimRng,
                          world: &World,
                          count: u64,
                          filter: &dyn Fn(&ExitNode) -> bool|
         -> Vec<NodeId> {
            let candidates: Vec<NodeId> = (0..total_nodes)
                .map(NodeId)
                .filter(|id| filter(world.node(*id)))
                .collect();
            if candidates.is_empty() {
                return Vec::new();
            }
            let want = (count as usize).min(candidates.len());
            // Partial Fisher–Yates over an index vector.
            let mut idxs: Vec<usize> = (0..candidates.len()).collect();
            for i in 0..want {
                let j = rng.random_range(i..idxs.len());
                idxs.swap(i, j);
            }
            idxs[..want].iter().map(|&i| candidates[i]).collect()
        };

        // End-host NXDOMAIN hijackers.
        for (h, (domain, landing_ip)) in spec.endhost.dns_hijackers.iter().zip(&endhost_landings) {
            let hijacker = NxdomainHijacker::new(
                HijackVector::EndHostSoftware,
                vec![format!("http://{domain}")],
                *landing_ip,
                JsFamily::Custom,
            );
            world.add_landing(*landing_ip, hijacker.clone());
            let google_only = h.google_dns_users_only;
            let chosen = pick_nodes(&mut self.rng, &world, spec.scaled(h.nodes), &|n| {
                n.software.dns_hijacker.is_none()
                    && (!google_only || matches!(n.resolver, ResolverChoice::GoogleDns))
            });
            for id in chosen {
                world.node_mut(id).software.dns_hijacker = Some(hijacker.clone());
            }
        }

        // HTML injectors.
        for inj in &spec.endhost.html_injectors {
            let injector = if inj.is_script_url {
                HtmlInjector::script(&inj.signature, inj.payload_bytes, inj.ad_count)
            } else {
                HtmlInjector::keyword(
                    inj.signature
                        .trim_start_matches("var ")
                        .trim_end_matches(';'),
                    inj.payload_bytes,
                    inj.ad_count,
                )
            };
            let country = inj.country.as_deref().map(CountryCode::new);
            let chosen = pick_nodes(&mut self.rng, &world, spec.scaled(inj.nodes), &|n| {
                n.software.html_injector.is_none()
                    && country.map(|cc| n.country == cc).unwrap_or(true)
            });
            for id in chosen {
                world.node_mut(id).software.html_injector = Some(injector.clone());
            }
        }

        // TLS interceptors.
        for t in &spec.endhost.tls_interceptors {
            let country = t.country.as_deref().map(CountryCode::new);
            let chosen = pick_nodes(&mut self.rng, &world, spec.scaled(t.nodes), &|n| {
                n.software.tls_interceptor.is_none()
                    && country.map(|cc| n.country == cc).unwrap_or(true)
            });
            let policy = match t.invalid {
                InvalidPolicySpec::MaskWithTrustedRoot => InvalidCertPolicy::SpoofSameIssuer,
                InvalidPolicySpec::AltUntrustedRoot => InvalidCertPolicy::SpoofAltIssuer(
                    DistinguishedName::cn(&format!("{} untrusted root", t.issuer)),
                ),
                InvalidPolicySpec::PassThrough => InvalidCertPolicy::PassThrough,
            };
            for id in chosen {
                let mut rng = self.rng.fork_indexed("tls-install", id.0 as u64);
                let mitm = TlsInterceptor::new(
                    DistinguishedName::cn(&t.issuer),
                    t.shared_key,
                    policy.clone(),
                    t.copy_fields,
                    if t.per_site_fraction >= 1.0 {
                        Selectivity::All
                    } else {
                        Selectivity::PerSiteFraction(t.per_site_fraction)
                    },
                    SimTime::EPOCH,
                    &mut rng,
                );
                world.node_mut(id).software.tls_interceptor = Some(mitm);
            }
        }

        // Monitoring software.
        for m in &spec.endhost.monitor_attach {
            let idx = *monitor_idx
                .get(&m.entity)
                .unwrap_or_else(|| panic!("unknown monitor entity {}", m.entity));
            let allowed: Option<Vec<CountryCode>> = m.country_limit.map(|k| {
                let mut all: Vec<CountryCode> = spec
                    .countries
                    .iter()
                    .map(|c| CountryCode::new(&c.code))
                    .collect();
                // Deterministic subset: the k largest-population countries.
                all.sort_by_key(|cc| {
                    std::cmp::Reverse(
                        spec.countries
                            .iter()
                            .find(|c| CountryCode::new(&c.code) == *cc)
                            .map(|c| c.isps.iter().map(|i| i.nodes).sum::<u64>())
                            .unwrap_or(0),
                    )
                });
                all.truncate(k);
                all
            });
            let chosen = pick_nodes(&mut self.rng, &world, spec.scaled(m.nodes), &|n| {
                !n.software.monitors.contains(&idx)
                    && allowed
                        .as_ref()
                        .map(|cs| cs.contains(&n.country))
                        .unwrap_or(true)
            });
            let egress = monitor_egress.get(&m.entity).cloned().unwrap_or_default();
            for id in chosen {
                let node = world.node_mut(id);
                node.software.monitors.push(idx);
                if m.vpn {
                    node.software.vpn_egress = Some(egress.clone());
                }
            }
        }

        // Object blockers.
        for b in &spec.endhost.blockers {
            let chosen = pick_nodes(&mut self.rng, &world, spec.scaled(b.nodes), &|n| {
                n.software.blocker.is_none()
            });
            for id in chosen {
                world.node_mut(id).software.blocker = Some(ObjectBlocker {
                    html: b.html,
                    js: b.js,
                    css: b.css,
                });
            }
        }

        // ---- origin sites ----------------------------------------------------
        let now = SimTime::EPOCH;
        for sp in &site_plans {
            let (chain, valid) = match sp.invalid {
                None => {
                    let ca_i = self.rng.random_range(0..self.authorities.len());
                    let ca = &mut self.authorities[ca_i];
                    let leaf = ca.issue_leaf(&sp.host, now, &mut self.rng);
                    (vec![leaf, ca.cert.clone()], true)
                }
                Some(InvalidKind::SelfSigned) => (
                    vec![certs::self_signed_leaf(&sp.host, now, &mut self.rng)],
                    false,
                ),
                Some(InvalidKind::Expired) => {
                    let ca = &mut self.authorities[0];
                    let mut leaf = ca.issue_leaf(&sp.host, now, &mut self.rng);
                    // Expired one minute after the epoch; the world clock is
                    // advanced past it below.
                    leaf.not_before = SimTime::EPOCH;
                    leaf.not_after = SimTime::EPOCH + SimDuration::from_mins(1);
                    (vec![leaf, ca.cert.clone()], false)
                }
                Some(InvalidKind::WrongName) => {
                    let ca = &mut self.authorities[0];
                    let leaf = certs::wrong_name_leaf(ca, &sp.host, now, &mut self.rng);
                    (vec![leaf, ca.cert.clone()], false)
                }
            };
            world.add_origin_site(proxynet::OriginSite {
                host: sp.host.clone(),
                ip: sp.ip,
                http_body: format!(
                    "<html><head><title>{h}</title></head><body>welcome to {h}</body></html>",
                    h = sp.host
                )
                .into_bytes(),
                chain,
                chain_valid: valid,
            });
        }

        // ---- mail servers (SMTP extension) ---------------------------------
        for cspec in &spec.countries {
            if !cspec.has_rankings {
                continue;
            }
            let cc_lower = cspec.code.to_ascii_lowercase();
            for i in 1..=spec.sites.mail_hosts_per_country {
                let host = format!("mx{i}.{cc_lower}.example");
                let ip = mail_ips.remove(&host).expect("mail ip pre-allocated");
                let ca_i = self.rng.random_range(0..self.authorities.len());
                let ca = &mut self.authorities[ca_i];
                let leaf = ca.issue_leaf(&host, now, &mut self.rng);
                world.add_mail_site(proxynet::MailSite {
                    host: host.clone(),
                    ip,
                    server: smtpwire::MailServer::new(&host),
                    chain: vec![leaf, ca.cert.clone()],
                });
            }
        }

        // Let certificate validity windows settle (the "expired" site is
        // expired relative to any post-build time).
        world.advance(SimDuration::from_hours(1));

        // ---- fault campaign -------------------------------------------------
        // Applied last so an inert campaign leaves the build (and every
        // existing world's RNG stream) untouched.
        if !spec.campaign.is_empty() {
            world.set_fault_campaign(campaign_from_spec(&spec.campaign));
        }

        let truth = GroundTruth::from_world(&world);
        BuiltWorld { world, truth }
    }
}

/// Convert the spec's flat fault rules into the runtime campaign. Callers
/// are expected to have run [`crate::validate::validate`] first (the
/// probability ranges re-checked here can only fail on unvalidated input).
pub fn campaign_from_spec(rules: &[FaultRuleSpec]) -> netsim::FaultCampaign {
    let mut campaign = netsim::FaultCampaign::none();
    for r in rules {
        let scope = netsim::FaultScope {
            region: r.country.as_deref().map(str::to_ascii_uppercase),
            isp: r.asn.map(u64::from),
            node: None,
        };
        let window = if r.start_s.is_some() || r.end_s.is_some() {
            let start = SimTime::EPOCH + SimDuration::from_secs(r.start_s.unwrap_or(0));
            let end = match r.end_s {
                Some(s) => SimTime::EPOCH + SimDuration::from_secs(s),
                // "No end": far enough out that no simulated study reaches
                // it, without overflowing millisecond arithmetic.
                None => SimTime::EPOCH + SimDuration::from_secs(u64::MAX / 1_000_000),
            };
            Some((start, end))
        } else {
            None
        };
        let profile = if r.outage {
            netsim::FaultProfile::Outage
        } else if r.flap_down_s > 0 {
            netsim::FaultProfile::Flap {
                up: SimDuration::from_secs(r.flap_up_s),
                down: SimDuration::from_secs(r.flap_down_s),
            }
        } else {
            let injector = netsim::FaultInjector::validated(
                r.drop_chance,
                r.corrupt_chance,
                r.truncate_chance,
                r.stall_chance,
                r.delay_chance,
                netsim::Latency::fixed(r.delay_spike_ms),
            )
            .expect("campaign rule validated by validate()");
            netsim::FaultProfile::Inject(injector)
        };
        campaign = campaign.with_rule(netsim::FaultRule {
            scope,
            window,
            profile,
        });
    }
    campaign
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}
