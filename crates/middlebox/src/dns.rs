//! NXDOMAIN hijackers (§4).
//!
//! When a name does not exist, a hijacker intercepts the NXDOMAIN response
//! and substitutes an A record pointing at a landing server that serves a
//! "search help" or advertising page. Hijacking can live at four locations —
//! the ISP's resolver, a public resolver, a transparent proxy on the path,
//! or software on the end host — and the *content* of the landing page (the
//! URLs it links to) is the analyzer's attribution signal (§4.3.3).

use std::net::Ipv4Addr;

/// Where the hijack is implemented. This is **ground truth** — the analyzer
/// never sees it and must infer it from observables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HijackVector {
    /// The ISP's recursive resolver rewrites NXDOMAIN.
    IspResolver,
    /// A public resolver (e.g. a Comodo/LookSafe-style service) rewrites it.
    PublicResolver,
    /// A transparent DNS proxy on the network path rewrites it, regardless
    /// of which resolver the host is configured to use.
    TransparentProxy,
    /// Software on the end host (anti-virus or malware) rewrites it.
    EndHostSoftware,
}

/// A family of shared hijack-page JavaScript. The paper found five ISPs
/// (Cox, Oi Fixo, TalkTalk, BT, Verizon) serving "nearly identical
/// JavaScript code", evidence of a common vendor appliance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JsFamily {
    /// The shared vendor appliance family.
    SharedVendor,
    /// Bespoke per-ISP code.
    Custom,
}

/// An NXDOMAIN hijacker profile.
#[derive(Debug, Clone)]
pub struct NxdomainHijacker {
    /// Where the hijack happens (ground truth).
    pub vector: HijackVector,
    /// Landing-page URLs embedded in the served content — e.g.
    /// `http://searchassist.verizon.com` — the attribution signal.
    pub landing_urls: Vec<String>,
    /// The IP address the substituted A record points to.
    pub landing_ip: Ipv4Addr,
    /// JavaScript family of the served page.
    pub js_family: JsFamily,
}

impl NxdomainHijacker {
    /// A hijacker serving pages that link to `landing_urls`.
    pub fn new(
        vector: HijackVector,
        landing_urls: Vec<String>,
        landing_ip: Ipv4Addr,
        js_family: JsFamily,
    ) -> Self {
        assert!(
            !landing_urls.is_empty(),
            "hijack pages must link somewhere — that is the whole point"
        );
        NxdomainHijacker {
            vector,
            landing_urls,
            landing_ip,
            js_family,
        }
    }

    /// The HTML page served in place of the browser's NXDOMAIN error for
    /// `queried_domain`.
    pub fn hijack_page(&self, queried_domain: &str) -> Vec<u8> {
        let mut html = String::with_capacity(1024);
        html.push_str("<!DOCTYPE html>\n<html><head><title>Search help</title>\n");
        match self.js_family {
            JsFamily::SharedVendor => {
                // The shared vendor script: identical across deploying ISPs,
                // parameterized only by the redirect target.
                html.push_str(
                    "<script type=\"text/javascript\">\n\
                     // barefruit-assist v2.1\n\
                     var srch = function(q){var u=redirectBase+'?q='+encodeURIComponent(q);\
                     window.location.replace(u);};\n",
                );
                html.push_str(&format!(
                    "var redirectBase='{}';\nsrch('{}');\n</script>\n",
                    self.landing_urls[0], queried_domain
                ));
            }
            JsFamily::Custom => {
                // Bespoke per-ISP implementations differ *structurally*,
                // not just in the target URL — each operator wrote (or
                // bought) different code. Derive a stable structural
                // variant from the landing URL so two deployments of the
                // same bespoke page never hash alike after normalization.
                let mut tag: u64 = 0xcbf2_9ce4_8422_2325;
                for b in self.landing_urls[0].bytes() {
                    tag ^= b as u64;
                    tag = tag.wrapping_mul(0x1000_0000_01b3);
                }
                let var = format!("r{:04x}", tag & 0xffff);
                match tag % 3 {
                    0 => html.push_str(&format!(
                        "<script type=\"text/javascript\">var {var}='{}?domain={}';\
                         window.location={var};</script>\n",
                        self.landing_urls[0], queried_domain
                    )),
                    1 => html.push_str(&format!(
                        "<script type=\"text/javascript\">function go_{var}(){{\
                         document.location.href='{}?q={}';}}go_{var}();</script>\n",
                        self.landing_urls[0], queried_domain
                    )),
                    _ => html.push_str(&format!(
                        "<script type=\"text/javascript\">/*{var}*/setTimeout(function(){{\
                         window.location.replace('{}#{}');}}, {});</script>\n",
                        self.landing_urls[0],
                        queried_domain,
                        tag % 97
                    )),
                }
            }
        }
        html.push_str("</head><body>\n<h1>This domain does not exist</h1>\n<ul>\n");
        for url in &self.landing_urls {
            html.push_str(&format!("<li><a href=\"{url}\">{url}</a></li>\n"));
        }
        html.push_str("</ul>\n</body></html>\n");
        html.into_bytes()
    }
}

/// Extract `http://` / `https://` URLs from an HTML body — the §4.3.3
/// content-analysis primitive. Exposed here so tests of hijack pages and the
/// analyzer share one implementation.
pub fn extract_urls(body: &[u8]) -> Vec<String> {
    let text = String::from_utf8_lossy(body);
    let mut urls = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let rest = &text[i..];
        let start = match rest.find("http://").or_else(|| rest.find("https://")) {
            Some(p) => i + p,
            None => break,
        };
        // Both schemes may be present; take the earlier occurrence.
        let start = match (rest.find("http://"), rest.find("https://")) {
            (Some(a), Some(b)) => i + a.min(b),
            _ => start,
        };
        let tail = &text[start..];
        let end = tail
            .char_indices()
            .find(|(_, c)| c.is_whitespace() || matches!(c, '"' | '\'' | '<' | '>' | ')' | ';'))
            .map(|(j, _)| j)
            .unwrap_or(tail.len());
        let url = &tail[..end];
        if url.len() > "http://".len() {
            urls.push(url.to_string());
        }
        i = start + end.max(1);
    }
    urls
}

/// The registrable domain of a URL (host with scheme/path stripped), used
/// for grouping in Table 5.
pub fn url_domain(url: &str) -> Option<String> {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))?;
    let host = rest.split(['/', '?', ':']).next()?;
    if host.is_empty() {
        None
    } else {
        Some(host.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hijacker(urls: &[&str], family: JsFamily) -> NxdomainHijacker {
        NxdomainHijacker::new(
            HijackVector::IspResolver,
            urls.iter().map(|s| s.to_string()).collect(),
            Ipv4Addr::new(203, 0, 113, 1),
            family,
        )
    }

    #[test]
    fn page_contains_all_landing_urls() {
        let h = hijacker(
            &[
                "http://searchassist.verizon.example",
                "http://ads.verizon.example",
            ],
            JsFamily::Custom,
        );
        let page = h.hijack_page("mistyped-domain.example");
        let urls = extract_urls(&page);
        assert!(urls
            .iter()
            .any(|u| u.contains("searchassist.verizon.example")));
        assert!(urls.iter().any(|u| u.contains("ads.verizon.example")));
    }

    #[test]
    fn shared_vendor_js_is_identical_across_isps() {
        let a = hijacker(&["http://finder.cox.example"], JsFamily::SharedVendor);
        let b = hijacker(&["http://error.talktalk.example"], JsFamily::SharedVendor);
        let pa = String::from_utf8(a.hijack_page("x.example")).unwrap();
        let pb = String::from_utf8(b.hijack_page("x.example")).unwrap();
        // The vendor script body (minus the per-ISP redirect base) matches.
        assert!(pa.contains("barefruit-assist v2.1"));
        assert!(pb.contains("barefruit-assist v2.1"));
        let stable = |p: &str| {
            p.lines()
                .filter(|l| !l.contains("redirectBase='"))
                .collect::<Vec<_>>()
                .join("\n")
                .replace("finder.cox.example", "X")
                .replace("error.talktalk.example", "X")
        };
        assert_eq!(stable(&pa), stable(&pb));
    }

    #[test]
    fn custom_js_differs_from_shared() {
        let a = hijacker(&["http://a.example"], JsFamily::Custom);
        let page = String::from_utf8(a.hijack_page("x")).unwrap();
        assert!(!page.contains("barefruit-assist"));
    }

    #[test]
    fn page_embeds_queried_domain() {
        let h = hijacker(&["http://assist.example"], JsFamily::Custom);
        let page = String::from_utf8(h.hijack_page("nxd-probe-17.example")).unwrap();
        assert!(page.contains("nxd-probe-17.example"));
    }

    #[test]
    fn extract_urls_basics() {
        let html = br#"<a href="http://one.example/x">x</a> plain https://two.example text"#;
        let urls = extract_urls(html);
        assert_eq!(urls, vec!["http://one.example/x", "https://two.example"]);
    }

    #[test]
    fn extract_urls_handles_no_urls() {
        assert!(extract_urls(b"<html>nothing here</html>").is_empty());
        assert!(extract_urls(b"").is_empty());
    }

    #[test]
    fn extract_urls_stops_at_delimiters() {
        let html = b"url='http://a.example/path';next";
        assert_eq!(extract_urls(html), vec!["http://a.example/path"]);
    }

    #[test]
    fn url_domain_extraction() {
        assert_eq!(
            url_domain("http://midascdn.nervesis.example/x?y=1").as_deref(),
            Some("midascdn.nervesis.example")
        );
        assert_eq!(
            url_domain("https://Host.Example:8443/").as_deref(),
            Some("host.example")
        );
        assert_eq!(url_domain("not-a-url"), None);
        assert_eq!(url_domain("http://"), None);
    }

    #[test]
    #[should_panic(expected = "link somewhere")]
    fn empty_landing_urls_rejected() {
        NxdomainHijacker::new(
            HijackVector::IspResolver,
            vec![],
            Ipv4Addr::new(1, 2, 3, 4),
            JsFamily::Custom,
        );
    }
}
