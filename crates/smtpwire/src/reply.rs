//! Server replies, including the multiline EHLO capability form.

use std::fmt;

/// An SMTP reply: a 3-digit code and one or more text lines.
///
/// Multiline form on the wire: every line but the last uses `code-text`,
/// the last uses `code text` (RFC 5321 §4.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Reply code (e.g. 220, 250, 454).
    pub code: u16,
    /// Text lines (at least one).
    pub lines: Vec<String>,
}

/// Errors parsing a reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyError {
    /// Empty input.
    Empty,
    /// A line was shorter than the 4-character code prefix.
    ShortLine,
    /// The code was not three digits.
    BadCode,
    /// Continuation lines disagreed on the code.
    MixedCodes,
    /// A non-final line used the final-line separator.
    EarlyTermination,
}

impl fmt::Display for ReplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplyError::Empty => "empty reply",
            ReplyError::ShortLine => "line shorter than code prefix",
            ReplyError::BadCode => "malformed reply code",
            ReplyError::MixedCodes => "mixed codes in multiline reply",
            ReplyError::EarlyTermination => "final-form line before the end",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ReplyError {}

impl Reply {
    /// A single-line reply.
    pub fn new(code: u16, text: &str) -> Reply {
        Reply {
            code,
            lines: vec![text.to_string()],
        }
    }

    /// A multiline reply.
    ///
    /// # Panics
    /// Panics if `lines` is empty.
    pub fn multiline(code: u16, lines: Vec<String>) -> Reply {
        assert!(!lines.is_empty(), "a reply needs at least one line");
        Reply { code, lines }
    }

    /// 2xx/3xx.
    pub fn is_positive(&self) -> bool {
        (200..400).contains(&self.code)
    }

    /// Render to wire text (CRLF line endings, trailing CRLF included).
    ///
    /// Thin allocating wrapper over [`Reply::to_text_into`].
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        self.to_text_into(&mut s);
        s
    }

    /// Render to wire text into a caller-owned scratch buffer (cleared
    /// first). The per-probe SMTP flow renders every reply through the
    /// shard's reused buffer, so steady-state rendering is allocation-free
    /// once the buffer has grown to the longest reply.
    // tft-lint: hot-root — runs several times per SMTP probe
    pub fn to_text_into(&self, out: &mut String) {
        use std::fmt::Write;
        out.clear();
        for (i, line) in self.lines.iter().enumerate() {
            let sep = if i + 1 == self.lines.len() { ' ' } else { '-' };
            let _ = write!(out, "{}{}{}\r\n", self.code, sep, line);
        }
    }

    /// Parse wire text (one complete reply).
    // tft-lint: wire-entry — parses untrusted bytes
    pub fn parse(text: &str) -> Result<Reply, ReplyError> {
        let mut code: Option<u16> = None;
        let mut lines = Vec::new();
        let mut terminated = false;
        for raw in text.split("\r\n").filter(|l| !l.is_empty()) {
            if terminated {
                return Err(ReplyError::EarlyTermination);
            }
            // Byte-wise prefix handling: the code and separator are ASCII
            // by definition; anything else is malformed (and arbitrary
            // UTF-8 must not panic the parser).
            let &[d0, d1, d2, sep, ..] = raw.as_bytes() else {
                return Err(ReplyError::ShortLine);
            };
            if ![d0, d1, d2].iter().all(|b| b.is_ascii_digit()) {
                return Err(ReplyError::BadCode);
            }
            let c: u16 = (d0 - b'0') as u16 * 100 + (d1 - b'0') as u16 * 10 + (d2 - b'0') as u16;
            if !(100..600).contains(&c) {
                return Err(ReplyError::BadCode);
            }
            match code {
                Some(existing) if existing != c => return Err(ReplyError::MixedCodes),
                _ => code = Some(c),
            }
            match sep {
                b' ' => terminated = true,
                b'-' => {}
                _ => return Err(ReplyError::BadCode),
            }
            // The first four bytes are ASCII (checked above), so byte
            // offset 4 is a char boundary; get() keeps this total anyway.
            lines.push(raw.get(4..).unwrap_or("").to_string());
        }
        let Some(code) = code else {
            return Err(ReplyError::Empty);
        };
        if !terminated {
            return Err(ReplyError::ShortLine);
        }
        Ok(Reply { code, lines })
    }
}

/// Parsed EHLO capabilities — the observable that STARTTLS stripping
/// tampers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Capabilities {
    /// `STARTTLS` advertised.
    pub starttls: bool,
    /// `PIPELINING` advertised.
    pub pipelining: bool,
    /// `8BITMIME` advertised.
    pub eightbitmime: bool,
}

impl Capabilities {
    /// Extract capabilities from an EHLO reply (the first line is the
    /// server's greeting domain, not a capability).
    pub fn from_ehlo(reply: &Reply) -> Capabilities {
        let mut caps = Capabilities::default();
        for line in reply.lines.iter().skip(1) {
            match line
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_ascii_uppercase()
                .as_str()
            {
                "STARTTLS" => caps.starttls = true,
                "PIPELINING" => caps.pipelining = true,
                "8BITMIME" => caps.eightbitmime = true,
                _ => {}
            }
        }
        caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_roundtrip() {
        let r = Reply::new(220, "mx1.example ESMTP ready");
        let text = r.to_text();
        assert_eq!(text, "220 mx1.example ESMTP ready\r\n");
        assert_eq!(Reply::parse(&text).unwrap(), r);
    }

    #[test]
    fn to_text_into_matches_to_text_and_clears_dirty_scratch() {
        let mut scratch = String::from("STALE BYTES FROM THE LAST REPLY\r\n");
        for r in [
            Reply::new(220, "mx1.example ESMTP ready"),
            Reply::multiline(250, vec!["mx1.example".into(), "STARTTLS".into()]),
        ] {
            r.to_text_into(&mut scratch);
            assert_eq!(scratch, r.to_text());
            assert_eq!(Reply::parse(&scratch).unwrap(), r);
        }
    }

    #[test]
    fn multiline_roundtrip() {
        let r = Reply::multiline(
            250,
            vec![
                "mx1.example".into(),
                "PIPELINING".into(),
                "STARTTLS".into(),
                "8BITMIME".into(),
            ],
        );
        let text = r.to_text();
        assert!(text.contains("250-STARTTLS\r\n"));
        assert!(text.ends_with("250 8BITMIME\r\n"));
        assert_eq!(Reply::parse(&text).unwrap(), r);
    }

    #[test]
    fn capabilities_extraction() {
        let r = Reply::multiline(
            250,
            vec!["mx1.example".into(), "STARTTLS".into(), "PIPELINING".into()],
        );
        let caps = Capabilities::from_ehlo(&r);
        assert!(caps.starttls);
        assert!(caps.pipelining);
        assert!(!caps.eightbitmime);
    }

    #[test]
    fn greeting_line_is_not_a_capability() {
        // A server whose domain is literally "STARTTLS.example" must not
        // count as advertising STARTTLS.
        let r = Reply::multiline(250, vec!["STARTTLS.example greets you".into()]);
        assert!(!Capabilities::from_ehlo(&r).starttls);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Reply::parse(""), Err(ReplyError::Empty));
        assert_eq!(Reply::parse("25\r\n"), Err(ReplyError::ShortLine));
        assert_eq!(Reply::parse("abc hello\r\n"), Err(ReplyError::BadCode));
        assert_eq!(
            Reply::parse("250-a\r\n251 b\r\n"),
            Err(ReplyError::MixedCodes)
        );
        assert_eq!(
            Reply::parse("250 done\r\n250 again\r\n"),
            Err(ReplyError::EarlyTermination)
        );
        assert_eq!(
            Reply::parse("250-unfinished\r\n"),
            Err(ReplyError::ShortLine)
        );
    }

    #[test]
    fn positivity() {
        assert!(Reply::new(220, "x").is_positive());
        assert!(Reply::new(250, "x").is_positive());
        assert!(!Reply::new(454, "TLS not available").is_positive());
        assert!(!Reply::new(554, "no").is_positive());
    }
}
