//! Parser totality under the fault injector's own damage model.
//!
//! The chaos campaigns mutate in-flight payloads with exactly two
//! primitives — [`FaultInjector::corrupt`] (one XORed octet) and
//! [`FaultInjector::truncate`] (a strict prefix). The quarantine rule in
//! `tft-core` is only sound if every wire parser in the stack survives
//! that damage with a clean `Err` or a well-formed (if different) value:
//! a panic anywhere turns line noise into a crashed study.

use certs::{exact_match, verify_chain, DistinguishedName, RootStore};
use dnswire::{decode, encode, DnsName, Message, QType, RData, Rcode, Record};
use httpwire::{Headers, Method, Request, Response, Target};
use netsim::{FaultInjector, SimDuration, SimRng, SimTime};
use smtpwire::{Command, Reply};
use substrate::qc::{self, alphabet, Config, Gen};
use substrate::{qc_assert, RngExt};
use tft_serve::gateway::Gateway;
use tft_serve::GatewayConfig;

fn cfg() -> Config {
    Config::with_cases(256)
}

/// `[a-z]{1,9}(\.[a-z]{1,9}){0,2}` — a hostname / DNS name.
fn hosts() -> Gen<String> {
    qc::vec_of(qc::string_of(alphabet::LOWER, 1..10), 1..4).map(|labels| labels.join("."))
}

/// A well-formed golden DNS response: question plus 0–3 A answers.
fn messages() -> Gen<Message> {
    qc::tuple3(
        qc::any_u16(),
        hosts(),
        qc::vec_of(qc::tuple2(hosts(), qc::any_u32()), 0..4),
    )
    .map(|(id, qname, answers)| {
        let qname = DnsName::parse(&qname).expect("generated labels are valid");
        let q = Message::query(id, qname, QType::A);
        let records = answers
            .into_iter()
            .map(|(name, v)| Record {
                name: DnsName::parse(&name).expect("generated labels are valid"),
                ttl: 300,
                rdata: RData::A(std::net::Ipv4Addr::from(v)),
            })
            .collect();
        Message::respond(&q, Rcode::NoError, records)
    })
}

#[test]
fn dns_decoder_survives_corrupted_goldens() {
    qc::check(
        "dns decode total under corruption",
        &cfg(),
        &qc::tuple2(qc::any_u64(), messages()),
        |(seed, msg)| {
            let bytes = encode(msg).expect("golden message encodes");
            let mut rng = SimRng::new(*seed);
            let mut damaged = bytes.clone();
            FaultInjector::corrupt(&mut rng, &mut damaged);
            // One flipped octet: the decoder may reject or reinterpret,
            // but it must not panic.
            let _ = decode(&damaged);
            qc::pass()
        },
    );
}

#[test]
fn dns_truncation_never_impersonates_the_original() {
    qc::check(
        "dns decode total under truncation",
        &cfg(),
        &qc::tuple2(qc::any_u64(), messages()),
        |(seed, msg)| {
            let bytes = encode(msg).expect("golden message encodes");
            let mut rng = SimRng::new(*seed);
            let mut damaged = bytes.clone();
            FaultInjector::truncate(&mut rng, &mut damaged);
            qc_assert!(
                damaged.len() < bytes.len(),
                "truncate keeps a strict prefix"
            );
            // Every encoded byte is load-bearing: a strict prefix either
            // fails to decode or decodes to something else entirely.
            if let Ok(back) = decode(&damaged) {
                qc_assert!(&back != msg, "a truncated message decoded as the original");
            }
            qc::pass()
        },
    );
}

#[test]
fn http_parsers_survive_damaged_goldens() {
    qc::check(
        "http parse total under damage",
        &cfg(),
        &qc::tuple3(qc::any_u64(), hosts(), qc::bytes(0..200)),
        |(seed, host, body)| {
            let mut rng = SimRng::new(*seed);
            let goldens: [Vec<u8>; 2] = [
                Response::ok("text/html", body.clone()).encode(),
                Request::origin_get(host, "/probe").encode(),
            ];
            for bytes in goldens {
                let mut corrupted = bytes.clone();
                FaultInjector::corrupt(&mut rng, &mut corrupted);
                let mut truncated = bytes.clone();
                FaultInjector::truncate(&mut rng, &mut truncated);
                for damaged in [corrupted, truncated] {
                    if let Ok((_, used)) = Response::parse(&damaged) {
                        qc_assert!(used <= damaged.len());
                    }
                    if let Ok((_, used)) = Request::parse(&damaged) {
                        qc_assert!(used <= damaged.len());
                    }
                }
            }
            qc::pass()
        },
    );
}

#[test]
fn smtp_parsers_survive_damaged_goldens() {
    let commands = qc::one_of(vec![
        hosts().map(Command::Ehlo),
        hosts().map(Command::Helo),
        qc::just(Command::StartTls),
        qc::just(Command::Noop),
        qc::just(Command::Quit),
    ]);
    qc::check(
        "smtp parse total under damage",
        &cfg(),
        &qc::tuple3(
            qc::any_u64(),
            commands,
            qc::tuple2(
                qc::ints(200u16..600),
                qc::string_of(alphabet::PRINTABLE, 0..40),
            ),
        ),
        |(seed, cmd, (code, text))| {
            let mut rng = SimRng::new(*seed);
            let goldens = [
                cmd.to_line().into_bytes(),
                Reply::new(*code, text).to_text().into_bytes(),
            ];
            for bytes in goldens {
                let mut corrupted = bytes.clone();
                FaultInjector::corrupt(&mut rng, &mut corrupted);
                let mut truncated = bytes;
                FaultInjector::truncate(&mut rng, &mut truncated);
                for damaged in [corrupted, truncated] {
                    // Line protocols re-enter as (lossily decoded) text.
                    let line = String::from_utf8_lossy(&damaged);
                    let _ = Command::parse(&line);
                    let _ = Reply::parse(&line);
                }
            }
            qc::pass()
        },
    );
}

/// The gateway sits one layer above the parsers: `Gateway::handle` takes
/// raw bytes off the virtual wire and must answer *every* input — damaged
/// goldens and pure line noise alike — with a well-formed HTTP response.
/// This is the totality contract the `no-panic-on-untrusted-bytes` lint
/// enforces syntactically over `crates/tft-serve/src/**`, checked here
/// semantically.
#[test]
fn gateway_handle_is_total_on_damaged_and_arbitrary_bytes() {
    let spec_body = worldgen::to_json(&worldgen::smoke_spec(7))
        .expect("smoke spec renders")
        .into_bytes();
    qc::check(
        "gateway handle total under damage",
        &cfg(),
        &qc::tuple2(qc::any_u64(), qc::bytes(0..300)),
        |(seed, noise)| {
            let mut rng = SimRng::new(*seed);
            let mut gw = Gateway::new(GatewayConfig::default());
            let now = SimTime::EPOCH;

            let mut post = Request {
                method: Method::Post,
                target: Target::Origin("/studies".into()),
                headers: Headers::new(),
                body: spec_body.clone(),
            };
            post.headers.set("Host", "gateway");
            post.headers
                .set("Content-Length", &post.body.len().to_string());
            let goldens = [
                post.encode(),
                Request::origin_get("gateway", "/studies/0123456789abcdef").encode(),
                Request::origin_get("gateway", "/healthz").encode(),
            ];
            for bytes in goldens {
                let mut corrupted = bytes.clone();
                FaultInjector::corrupt(&mut rng, &mut corrupted);
                let mut truncated = bytes;
                FaultInjector::truncate(&mut rng, &mut truncated);
                for damaged in [corrupted, truncated] {
                    let reply = gw.handle(&damaged, now);
                    qc_assert!(
                        Response::parse(&reply).is_ok(),
                        "gateway must answer damaged goldens with well-formed HTTP"
                    );
                }
            }
            let reply = gw.handle(noise, now);
            qc_assert!(
                Response::parse(&reply).is_ok(),
                "gateway must answer arbitrary bytes with well-formed HTTP"
            );
            qc::pass()
        },
    );
}

#[test]
fn damaged_cert_chains_fail_closed() {
    qc::check(
        "cert verification total under damage",
        &cfg(),
        &qc::tuple2(qc::any_u64(), hosts()),
        |(seed, host)| {
            let mut rng = SimRng::new(*seed);
            let now = SimTime::EPOCH + SimDuration::from_days(10);
            let (store, mut cas) = RootStore::os_x_like(2, SimTime::EPOCH, &mut rng);
            let mut inter =
                cas[0].issue_intermediate(DistinguishedName::cn("Inter"), SimTime::EPOCH, &mut rng);
            let leaf = inter.issue_leaf(host, SimTime::EPOCH, &mut rng);
            let chain = vec![leaf.clone(), inter.cert.clone(), cas[0].cert.clone()];
            qc_assert!(verify_chain(&chain, host, now, &store).is_ok());

            // Truncation (mirroring FaultInjector::truncate's strict-prefix
            // rule, applied to the chain itself): verification stays total,
            // and exact-identity matching agrees with whether a leaf is
            // still present.
            let keep = rng.random_range(0..chain.len());
            let mut truncated = chain.clone();
            truncated.truncate(keep);
            let _ = verify_chain(&truncated, host, now, &store);
            qc_assert!(exact_match(&truncated, &leaf) == (keep >= 1));

            // Corruption: one flipped octet inside the leaf's SAN. The
            // mangled certificate must never pass the exact-identity check,
            // and verification must reject or re-evaluate without panic.
            let mut mangled = leaf.clone();
            if let Some(san) = mangled.san.first_mut() {
                let mut raw = san.clone().into_bytes();
                FaultInjector::corrupt(&mut rng, &mut raw);
                *san = String::from_utf8_lossy(&raw).into_owned();
            }
            let _ = verify_chain(
                &[mangled.clone(), inter.cert.clone(), cas[0].cert.clone()],
                host,
                now,
                &store,
            );
            qc_assert!(!exact_match(&[mangled], &leaf));
            qc::pass()
        },
    );
}
