//! Binary prefix trie over IPv4 addresses with longest-prefix match.
//!
//! This is the lookup structure behind the RouteViews-style RIB snapshot:
//! `IP address → origin ASN`, exactly the mapping the paper uses to place
//! every exit node and DNS server into an AS (Section 3.1).

use crate::types::Ipv4Net;
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A binary trie keyed by IPv4 prefixes, supporting exact insert and
/// longest-prefix-match lookup.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value for `net`, returning the previous value if the exact
    /// prefix was already present.
    pub fn insert(&mut self, net: Ipv4Net, value: T) -> Option<T> {
        let bits = u32::from(net.network());
        let mut node = &mut self.root;
        for i in 0..net.prefix_len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix match: the most specific stored prefix covering `ip`.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&T> {
        let bits = u32::from(ip);
        let mut node = &self.root;
        let mut best = node.value.as_ref();
        for i in 0..32 {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if node.value.is_some() {
                        best = node.value.as_ref();
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-prefix lookup.
    pub fn get(&self, net: Ipv4Net) -> Option<&T> {
        let bits = u32::from(net.network());
        let mut node = &self.root;
        for i in 0..net.prefix_len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[bit].as_deref()?;
        }
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTrie::new();
        t.insert(net("10.0.0.0/8"), "eight");
        t.insert(net("10.1.0.0/16"), "sixteen");
        t.insert(net("10.1.2.0/24"), "twentyfour");
        assert_eq!(t.lookup(ip("10.1.2.3")), Some(&"twentyfour"));
        assert_eq!(t.lookup(ip("10.1.9.9")), Some(&"sixteen"));
        assert_eq!(t.lookup(ip("10.9.9.9")), Some(&"eight"));
        assert_eq!(t.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(net("192.0.2.0/24"), 1), None);
        assert_eq!(t.insert(net("192.0.2.0/24"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(net("192.0.2.0/24")), Some(&2));
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(net("0.0.0.0/0"), "default");
        assert_eq!(t.lookup(ip("203.0.113.7")), Some(&"default"));
    }

    #[test]
    fn host_route_is_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(net("198.51.100.0/24"), "net");
        t.insert(net("198.51.100.7/32"), "host");
        assert_eq!(t.lookup(ip("198.51.100.7")), Some(&"host"));
        assert_eq!(t.lookup(ip("198.51.100.8")), Some(&"net"));
    }

    #[test]
    fn get_is_exact_not_covering() {
        let mut t = PrefixTrie::new();
        t.insert(net("10.0.0.0/8"), "eight");
        assert_eq!(t.get(net("10.0.0.0/16")), None);
        assert_eq!(t.get(net("10.0.0.0/8")), Some(&"eight"));
    }

    #[test]
    fn empty_trie_lookup() {
        let t: PrefixTrie<u8> = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(ip("1.2.3.4")), None);
    }
}
