//! Wire-format microbenchmarks: the per-message costs underneath every
//! proxied request in the simulation (and in any real deployment of these
//! protocol crates).

use dnswire::{DnsName, Message, QType, RData, Rcode, Record};
use httpwire::{Request, Response, Uri};
use netsim::{SimRng, SimTime};
use std::hint::black_box;
use std::net::Ipv4Addr;
use substrate::bench::Harness;

fn dns_response() -> Message {
    let q = Message::query(
        77,
        DnsName::parse("d1-123456.tft-probe.example").expect("valid"),
        QType::A,
    );
    let mut resp = Message::respond(
        &q,
        Rcode::NoError,
        (0..4)
            .map(|i| Record {
                name: DnsName::parse("d1-123456.tft-probe.example").expect("valid"),
                ttl: 300,
                rdata: RData::A(Ipv4Addr::new(192, 0, 2, i)),
            })
            .collect(),
    );
    resp.authority.push(Record {
        name: DnsName::parse("tft-probe.example").expect("valid"),
        ttl: 3600,
        rdata: RData::Ns(DnsName::parse("ns1.tft-probe.example").expect("valid")),
    });
    resp
}

fn bench_dns(h: &mut Harness) {
    let msg = dns_response();
    let wire = dnswire::encode(&msg).expect("encodes");
    h.bench("dnswire/encode_typical_response", || {
        black_box(dnswire::encode(black_box(&msg)).unwrap())
    });
    h.bench("dnswire/decode_typical_response", || {
        black_box(dnswire::decode(black_box(&wire)).unwrap())
    });
    h.bench("dnswire/roundtrip", || {
        let w = dnswire::encode(black_box(&msg)).unwrap();
        black_box(dnswire::decode(&w).unwrap())
    });
}

fn bench_http(h: &mut Harness) {
    let req =
        Request::proxy_get(Uri::parse("http://objects.tft-probe.example/obj/page.html").unwrap());
    let req_wire = req.encode();
    let body = tft_core::http_exp::object_body(tft_core::obs::ProbeObject::Html);
    let resp = Response::ok("text/html", body);
    let resp_wire = resp.encode();
    h.bench("httpwire/request_parse", || {
        black_box(Request::parse(black_box(&req_wire)).unwrap())
    });
    h.bench("httpwire/response_encode_9k", || {
        black_box(black_box(&resp).encode())
    });
    h.bench("httpwire/response_parse_9k", || {
        black_box(Response::parse(black_box(&resp_wire)).unwrap())
    });
    h.bench("httpwire/chunked_roundtrip_9k", || {
        let enc = httpwire::chunked::encode(black_box(&resp.body), 1024);
        black_box(httpwire::chunked::decode(&enc).unwrap())
    });
}

fn bench_certs(h: &mut Harness) {
    let mut rng = SimRng::new(5);
    let (store, mut cas) = certs::RootStore::os_x_like(187, SimTime::EPOCH, &mut rng);
    let mut inter = cas[0].issue_intermediate(
        certs::DistinguishedName::cn("Intermediate"),
        SimTime::EPOCH,
        &mut rng,
    );
    let leaf = inter.issue_leaf("www.example.com", SimTime::EPOCH, &mut rng);
    let chain = vec![leaf, inter.cert.clone()];
    let now = SimTime::from_millis(86_400_000);
    h.bench("certs/verify_chain_with_intermediate", || {
        black_box(certs::verify_chain(
            black_box(&chain),
            "www.example.com",
            now,
            &store,
        ))
    });
    h.bench("certs/fingerprint", || black_box(chain[0].fingerprint()));
}

fn main() {
    let mut h = Harness::new("wire");
    bench_dns(&mut h);
    bench_http(&mut h);
    bench_certs(&mut h);
    h.finish();
}
