//! `no-unordered-iteration`: hash containers are banned in code that feeds
//! rendered output.
//!
//! `std::collections::HashMap`/`HashSet` use `RandomState`, so iteration
//! order differs between instances even within one process. Any map that is
//! ever iterated on the way to a report table therefore threatens the
//! byte-identical-render guarantee. Rather than chase individual `.iter()`
//! sites (easy to evade via `for`, `extend`, collect, …), the pass bans the
//! *type names* outright in the scoped modules: `tft-core`'s `report/`,
//! `analysis/`, `study.rs`, `exec.rs` (the parallel executor merges shard
//! datasets on the way to the same tables), and `quality.rs` (per-country
//! ledgers rendered by the data-quality annex); `netsim`'s `campaign.rs`
//! (scripted fault rules must fire in a stable order); and `proxynet`'s
//! `resilience.rs` (circuit-breaker state shows up in `Debug` output and
//! may be merged). The whole of `tft-serve` is in scope too: every module
//! there (cache eviction order, queue admission, gateway response bodies,
//! load-generator digests) feeds byte-pinned responses. Use
//! `BTreeMap`/`BTreeSet` — every key type in those modules is `Ord` — or
//! sort explicitly before rendering.

use super::code_indices;
use crate::engine::{Diagnostic, FileKind, Pass, SourceFile};
use crate::lexer::TokKind;

/// Forbid `HashMap`/`HashSet` in render-feeding modules of `tft-core`.
pub struct NoUnorderedIteration;

impl Pass for NoUnorderedIteration {
    fn id(&self) -> &'static str {
        "no-unordered-iteration"
    }

    fn description(&self) -> &'static str {
        "forbid HashMap/HashSet in tft-core report/analysis/study/exec/quality, \
         netsim campaign, proxynet resilience, and all tft-serve modules; use \
         BTreeMap/BTreeSet or an explicit sort before rendering"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        if file.kind != FileKind::Rust {
            return false;
        }
        match file.crate_name.as_str() {
            "tft-core" => {
                file.rel_path.contains("/report/")
                    || file.rel_path.contains("/analysis/")
                    || file.rel_path.ends_with("/study.rs")
                    || file.rel_path.ends_with("/exec.rs")
                    || file.rel_path.ends_with("/quality.rs")
            }
            "netsim" => file.rel_path.ends_with("/campaign.rs"),
            "proxynet" => file.rel_path.ends_with("/resilience.rs"),
            // Every tft-serve module feeds byte-pinned response bodies, so
            // the whole crate is in scope, not a module allow-list.
            "tft-serve" => true,
            _ => false,
        }
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for idx in code_indices(file) {
            let t = &file.tokens[idx];
            if t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text(&file.text);
            if name == "HashMap" || name == "HashSet" {
                let ordered = if name == "HashMap" {
                    "BTreeMap"
                } else {
                    "BTreeSet"
                };
                out.push(Diagnostic {
                    pass: self.id().into(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "{name} has per-instance random iteration order; this module \
                         feeds rendered output — use {ordered} or sort before rendering"
                    ),
                });
            }
        }
    }
}
