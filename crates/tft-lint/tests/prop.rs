//! Property tests for the lexer and the pass framework, on the
//! first-party `substrate::qc` harness.
//!
//! The lexer is the lint engine's foundation: it must be *total* (any byte
//! string tokenizes without panicking), its spans must be well-formed and
//! sliceable, and string/comment contents must be opaque to the passes —
//! the literal `".unwrap()"` in a doc comment or string must never fire
//! `no-panic-on-untrusted-bytes`.

use substrate::qc::{self, Config};
use substrate::qc_assert;
use tft_lint::ast;
use tft_lint::lexer::tokenize;
use tft_lint::{Engine, SourceFile};

#[test]
fn tokenize_is_total_on_arbitrary_bytes() {
    qc::check(
        "lexer never panics on arbitrary bytes",
        &Config::with_cases(400),
        &qc::bytes(0..512),
        |raw| {
            let src = String::from_utf8_lossy(raw);
            let toks = tokenize(&src);
            // Total and bounded: token count can't exceed char count.
            qc_assert!(toks.len() <= src.chars().count());
            qc::pass()
        },
    );
}

#[test]
fn spans_round_trip_offsets() {
    // Code-shaped alphabet: quotes, slashes, braces, and prefix letters
    // exercise every tricky lexer branch (raw strings, lifetimes, byte
    // literals, nested comments, numeric suffixes).
    let alphabet = "ab z_\"'/*#!().:;{}[]<>&|=+-%^0129xfre\n\t";
    qc::check(
        "token spans are ordered, in-bounds, and sliceable",
        &Config::with_cases(400),
        &qc::string_of(alphabet, 0..160),
        |src| {
            let toks = tokenize(src);
            let mut prev_end = 0usize;
            for t in &toks {
                qc_assert!(t.start >= prev_end, "overlap at {}..{}", t.start, t.end);
                qc_assert!(t.start < t.end, "empty span at {}", t.start);
                qc_assert!(t.end <= src.len(), "span past the end");
                qc_assert!(
                    src.get(t.start..t.end).is_some(),
                    "span not on char boundaries: {}..{}",
                    t.start,
                    t.end
                );
                // The gap before this token is whitespace only — nothing
                // was silently dropped.
                qc_assert!(
                    src.get(prev_end..t.start)
                        .is_some_and(|gap| gap.chars().all(char::is_whitespace)),
                    "non-whitespace bytes skipped before {}",
                    t.start
                );
                prev_end = t.end;
            }
            qc_assert!(
                src.get(prev_end..)
                    .is_some_and(|gap| gap.chars().all(char::is_whitespace)),
                "non-whitespace tail skipped"
            );
            qc::pass()
        },
    );
}

#[test]
fn ast_parse_is_total_on_arbitrary_bytes() {
    // The recursive-descent parser sits on the total lexer and must share
    // its guarantee: any byte soup parses to *some* AST without panicking.
    qc::check(
        "AST parser never panics on arbitrary bytes",
        &Config::with_cases(400),
        &qc::bytes(0..512),
        |raw| {
            let src = String::from_utf8_lossy(raw);
            let file = SourceFile::rust("crates/x/src/lib.rs", "x", &src);
            let ast = ast::parse(&file);
            // Bounded: a fn item needs at least the `fn` keyword token.
            qc_assert!(ast.fns.len() <= file.tokens.len());
            qc::pass()
        },
    );
}

#[test]
fn ast_spans_are_well_formed_on_code_shaped_input() {
    // Code-shaped alphabet, heavy on item/call/closure syntax: every span
    // the parser records must be an ordered, in-bounds token range, and
    // nested constructs (body ⊆ item, call/closure/macro ∈ body) must
    // respect containment — the reachability passes rely on exactly these
    // invariants when they test "is this allocation inside that closure".
    let alphabet = "fn impl mod pub x y | ( ) { } [ ] < > :: . , ; ! = + \" ' # _0 \n";
    qc::check(
        "AST token spans are ordered, in-bounds, and properly nested",
        &Config::with_cases(400),
        &qc::string_of(alphabet, 0..200),
        |src| {
            let file = SourceFile::rust("crates/x/src/lib.rs", "x", src);
            let n = file.tokens.len();
            let ast = ast::parse(&file);
            for f in &ast.fns {
                qc_assert!(
                    f.span.0 <= f.span.1 && f.span.1 <= n,
                    "fn span out of bounds"
                );
                if let Some(body) = f.body {
                    qc_assert!(body.0 <= body.1 && body.1 <= n, "body span out of bounds");
                    qc_assert!(
                        f.span.0 <= body.0 && body.1 <= f.span.1,
                        "body escapes the fn span"
                    );
                    for c in &f.calls {
                        qc_assert!(c.name_tok >= body.0 && c.name_tok < body.1);
                        qc_assert!(c.args.0 <= c.args.1 && c.args.1 <= n);
                        qc_assert!(!c.path.is_empty(), "call with empty path");
                    }
                    for m in &f.macros {
                        qc_assert!(m.name_tok >= body.0 && m.name_tok < body.1);
                    }
                    for cl in &f.closures {
                        qc_assert!(cl.body.0 <= cl.body.1 && cl.body.1 <= n);
                        qc_assert!(
                            body.0 <= cl.body.0 && cl.body.1 <= body.1,
                            "closure escapes the fn body"
                        );
                    }
                }
            }
            qc::pass()
        },
    );
}

#[test]
fn triggers_inside_strings_and_comments_never_fire() {
    // Every forbidden construct, spelled inside every opaque context, with
    // random identifier padding around it. None may produce a diagnostic in
    // any pass scope.
    let payloads: &[&str] = &[
        "Instant::now()",
        "SystemTime::now()",
        ".unwrap()",
        ".expect(x)",
        "panic!(boom)",
        "bytes[0]",
        "HashMap<u32, u32>",
        "HashSet",
        "SimRng::new(std::process::id() as u64)",
    ];
    let pad = qc::string_of("abcdefgh_", 1..12);
    let gen = qc::tuple3(
        qc::ints(0..payloads.len()),
        qc::ints(0usize..4),
        qc::tuple2(pad.clone(), pad),
    );
    qc::check(
        "opaque contexts hide lint triggers",
        &Config::with_cases(300),
        &gen,
        |(p, wrapper, (pre, post))| {
            let payload = payloads[*p];
            let body = match wrapper {
                0 => format!("pub fn {pre}() -> &'static str {{ \"{payload}\" }}\n"),
                1 => format!("// {pre} {payload} {post}\npub fn {pre}() {{}}\n"),
                2 => format!("/* {pre} {payload} /* nested {post} */ */\npub fn {pre}() {{}}\n"),
                _ => format!("/// docs: `{payload}` ({post})\npub fn {pre}() {{}}\n"),
            };
            // Lint the same content under every pass's scope: the wire
            // crates (panic pass), tft-core report (unordered pass), and
            // netsim (wall-clock/seed apply everywhere anyway).
            let files = [
                SourceFile::rust("crates/dnswire/src/wire.rs", "dnswire", &body),
                SourceFile::rust("crates/tft-core/src/report/tables.rs", "tft-core", &body),
                SourceFile::rust("crates/netsim/src/sched.rs", "netsim", &body),
            ];
            let report = Engine::with_default_passes().run_files(&files);
            qc_assert!(
                report.diagnostics.is_empty(),
                "diagnostics fired on opaque payload {payload:?} in wrapper {wrapper}: {:?}",
                report.diagnostics
            );
            qc::pass()
        },
    );
}
