//! `hermetic-manifests`: the build must work with zero network access.
//!
//! Every entry in every dependency-ish section of every `Cargo.toml` must
//! be a path dependency, directly (`path = "…"`) or via `workspace = true`
//! resolving to the root's path-only `[workspace.dependencies]`. Registry
//! (`version = "…"`) and `git = "…"` forms are forbidden. The workspace
//! hook additionally asserts the walker saw a sane number of manifests, so
//! a broken file walk can't silently pass the audit.
//!
//! This pass is the single implementation of the rule; `tests/hermetic.rs`
//! is a thin wrapper over [`check_workspace_manifests`].

use crate::engine::{Diagnostic, FileKind, Pass, SourceFile};
use std::path::Path;

/// The walker must find at least this many manifests (root + crates/*);
/// fewer means the audit silently lost coverage.
const MIN_MANIFESTS: usize = 12;

/// Enforce path-only dependencies in every workspace manifest.
pub struct HermeticManifests;

/// Is this `[section]` header a dependency table we must audit?
fn is_dep_section(header: &str) -> bool {
    let h = header.trim_start_matches('[').trim_end_matches(']').trim();
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.starts_with("target.") && h.ends_with("dependencies")
}

impl Pass for HermeticManifests {
    fn id(&self) -> &'static str {
        "hermetic-manifests"
    }

    fn description(&self) -> &'static str {
        "every Cargo.toml dependency must be path-only (path = … or workspace = true); \
         registry and git dependencies are forbidden"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.kind == FileKind::Manifest
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let mut in_dep_section = false;
        for (lineno, raw) in file.text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_dep_section = is_dep_section(line);
                continue;
            }
            if !in_dep_section {
                continue;
            }
            // Each entry must be `name = { path = … }`, `name.workspace = true`,
            // or `name = { workspace = true }`.
            let ok = line.contains("path =")
                || line.contains("path=")
                || line.contains("workspace = true")
                || line.contains("workspace=true");
            let forbidden = line.contains("version =")
                || line.contains("version=")
                || line.contains("git =")
                || line.contains("git=")
                || line.contains("registry");
            if !ok || forbidden {
                out.push(Diagnostic {
                    pass: self.id().into(),
                    file: file.rel_path.clone(),
                    line: lineno as u32 + 1,
                    col: 1,
                    message: format!(
                        "non-hermetic dependency declaration `{}`; use a path dependency \
                         or workspace = true",
                        raw.trim()
                    ),
                });
            }
        }
    }

    fn check_workspace(&self, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
        let manifests = files
            .iter()
            .filter(|f| f.kind == FileKind::Manifest)
            .count();
        // Only meaningful on a real workspace walk; single-fixture runs
        // (self-tests) pass a Rust file or one manifest and are exempt.
        let is_workspace = files
            .iter()
            .any(|f| f.kind == FileKind::Manifest && f.rel_path == "Cargo.toml");
        if is_workspace && manifests < MIN_MANIFESTS {
            out.push(Diagnostic {
                pass: self.id().into(),
                file: "Cargo.toml".into(),
                line: 1,
                col: 1,
                message: format!(
                    "manifest walk found only {manifests} Cargo.toml files \
                     (expected >= {MIN_MANIFESTS}); the audit lost coverage"
                ),
            });
        }
    }
}

/// Run the full manifest audit over the workspace at `root` and return the
/// surviving diagnostics. This is the entry point `tests/hermetic.rs` uses,
/// so the hermeticity rule has exactly one implementation.
pub fn check_workspace_manifests(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let files = crate::engine::workspace_files(root)?;
    let engine = crate::engine::Engine::new(vec![Box::new(HermeticManifests)]);
    // Allows naming other passes live in the same workspace; with only this
    // pass registered they would misread as unknown ids, so keep only the
    // manifest findings.
    Ok(engine
        .run_files(&files)
        .diagnostics
        .into_iter()
        .filter(|d| d.pass == "hermetic-manifests")
        .collect())
}
