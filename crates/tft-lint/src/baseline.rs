//! Pinned-baseline mode: triaged legacy findings don't fail CI, new ones do.
//!
//! A baseline file (`LINT_baseline.json`) commits the *accepted* finding
//! counts, grouped by `(pass, file)` — line numbers churn with every edit,
//! so pinning exact positions would make the baseline a merge-conflict
//! factory. Each entry carries a mandatory written reason, mirroring the
//! inline-allow discipline:
//!
//! ```json
//! {
//!   "version": 2,
//!   "entries": [
//!     {"pass": "hot-path-alloc", "file": "crates/x/src/y.rs",
//!      "count": 3, "reason": "lazy: only allocates when tracing is enabled"}
//!   ]
//! }
//! ```
//!
//! Application semantics (the ratchet):
//!
//! - actual == count → all findings of the group are absorbed (reported in
//!   `baselined`, not `diagnostics`).
//! - actual > count → **nothing** in the group is absorbed: every finding
//!   surfaces, so the report shows full context for the regression, and CI
//!   fails.
//! - actual < count (including 0) → findings are absorbed, but the entry
//!   itself produces a [`STALE_BASELINE`] diagnostic: the debt shrank, and
//!   the committed count must be ratcheted down to match. A baseline can
//!   therefore only ever shrink.
//! - an entry without a reason produces [`BASELINE_MISSING_REASON`].

use crate::engine::Diagnostic;
use std::collections::BTreeMap;
use substrate::json::{self, Json};

/// Engine-level diagnostic id: a baseline entry whose accepted count
/// exceeds the findings actually present.
pub const STALE_BASELINE: &str = "stale-baseline";
/// Engine-level diagnostic id: a baseline entry without a written reason.
pub const BASELINE_MISSING_REASON: &str = "baseline-missing-reason";

/// One accepted-debt entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Pass id the accepted findings belong to.
    pub pass: String,
    /// Workspace-relative file the findings live in.
    pub file: String,
    /// Accepted finding count for that (pass, file) group.
    pub count: usize,
    /// Mandatory written justification.
    pub reason: String,
}

/// A parsed baseline document.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parse the `LINT_baseline.json` text.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let version = doc.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != 2 {
            return Err(format!("baseline version {version} unsupported (want 2)"));
        }
        let mut entries = Vec::new();
        for (i, e) in doc
            .get("entries")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let field = |k: &str| {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry {i}: missing string field `{k}`"))
            };
            entries.push(BaselineEntry {
                pass: field("pass")?,
                file: field("file")?,
                count: e
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("baseline entry {i}: missing numeric `count`"))?
                    as usize,
                reason: e
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            });
        }
        Ok(Baseline { entries })
    }

    /// Render a baseline document (used to regenerate the file after
    /// remediation ratchets counts down).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::uint(2)),
            (
                "entries".into(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("pass".into(), Json::str(e.pass.as_str())),
                                ("file".into(), Json::str(e.file.as_str())),
                                ("count".into(), Json::uint(e.count as u64)),
                                ("reason".into(), Json::str(e.reason.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Apply the baseline to sorted diagnostics: absorb accepted groups,
    /// emit ratchet/hygiene diagnostics for stale or unreasoned entries.
    /// Returns the number of findings absorbed.
    pub fn apply(&self, diagnostics: &mut Vec<Diagnostic>) -> usize {
        let mut actual: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for d in diagnostics.iter() {
            *actual
                .entry((d.pass.as_str(), d.file.as_str()))
                .or_default() += 1;
        }
        let mut absorbed = 0usize;
        let mut absorb_groups: Vec<(String, String)> = Vec::new();
        let mut extra: Vec<Diagnostic> = Vec::new();
        for e in &self.entries {
            let found = actual
                .get(&(e.pass.as_str(), e.file.as_str()))
                .copied()
                .unwrap_or(0);
            if e.reason.trim().is_empty() {
                extra.push(Diagnostic {
                    pass: BASELINE_MISSING_REASON.into(),
                    file: e.file.clone(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "baseline entry for {} has no reason; accepted debt must be justified",
                        e.pass
                    ),
                });
            }
            if found > e.count {
                // Regression: surface the whole group (no absorption) so
                // the report shows all findings, old and new.
                extra.push(Diagnostic {
                    pass: e.pass.clone(),
                    file: e.file.clone(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "baseline accepts {} finding(s) here but {} present; new findings \
                         must be fixed, not baselined",
                        e.count, found
                    ),
                });
                continue;
            }
            if found < e.count {
                extra.push(Diagnostic {
                    pass: STALE_BASELINE.into(),
                    file: e.file.clone(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "baseline accepts {} {} finding(s) but only {} remain; ratchet the \
                         committed count down to {}",
                        e.count, e.pass, found, found
                    ),
                });
            }
            if found > 0 {
                absorb_groups.push((e.pass.clone(), e.file.clone()));
            }
        }
        diagnostics.retain(|d| {
            let keep = !absorb_groups
                .iter()
                .any(|(p, f)| *p == d.pass && *f == d.file);
            if !keep {
                absorbed += 1;
            }
            keep
        });
        diagnostics.extend(extra);
        diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.pass).cmp(&(&b.file, b.line, b.col, &b.pass))
        });
        absorbed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(pass: &str, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            pass: pass.into(),
            file: file.into(),
            line,
            col: 1,
            message: "m".into(),
        }
    }

    fn baseline(entries: &[(&str, &str, usize, &str)]) -> Baseline {
        Baseline {
            entries: entries
                .iter()
                .map(|&(pass, file, count, reason)| BaselineEntry {
                    pass: pass.into(),
                    file: file.into(),
                    count,
                    reason: reason.into(),
                })
                .collect(),
        }
    }

    #[test]
    fn exact_match_absorbs_all() {
        let mut diags = vec![diag("p", "a.rs", 1), diag("p", "a.rs", 9)];
        let b = baseline(&[("p", "a.rs", 2, "legacy")]);
        assert_eq!(b.apply(&mut diags), 2);
        assert!(diags.is_empty());
    }

    #[test]
    fn excess_findings_surface_the_whole_group() {
        let mut diags = vec![
            diag("p", "a.rs", 1),
            diag("p", "a.rs", 2),
            diag("p", "a.rs", 3),
        ];
        let b = baseline(&[("p", "a.rs", 2, "legacy")]);
        assert_eq!(b.apply(&mut diags), 0);
        // Three original findings plus the regression note.
        assert_eq!(diags.len(), 4);
    }

    #[test]
    fn shrunk_debt_is_a_stale_baseline_ratchet() {
        let mut diags = vec![diag("p", "a.rs", 1)];
        let b = baseline(&[("p", "a.rs", 3, "legacy")]);
        assert_eq!(b.apply(&mut diags), 1);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pass, STALE_BASELINE);
    }

    #[test]
    fn vanished_group_is_stale() {
        let mut diags = vec![];
        let b = baseline(&[("p", "gone.rs", 1, "legacy")]);
        assert_eq!(b.apply(&mut diags), 0);
        assert_eq!(diags[0].pass, STALE_BASELINE);
    }

    #[test]
    fn reason_is_mandatory() {
        let mut diags = vec![diag("p", "a.rs", 1)];
        let b = baseline(&[("p", "a.rs", 1, "  ")]);
        b.apply(&mut diags);
        assert!(diags.iter().any(|d| d.pass == BASELINE_MISSING_REASON));
    }

    #[test]
    fn parse_round_trips() {
        let b = baseline(&[("hot-path-alloc", "crates/x/src/y.rs", 3, "lazy path")]);
        let text = b.to_json().render_pretty();
        let back = Baseline::parse(&text).expect("parses");
        assert_eq!(back.entries, b.entries);
    }

    #[test]
    fn parse_rejects_wrong_version_and_shape() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse(r#"{"version": 1, "entries": []}"#).is_err());
        assert!(Baseline::parse(r#"{"version": 2, "entries": [{"pass": "p"}]}"#).is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
