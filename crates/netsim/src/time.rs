//! Virtual time for the simulation.
//!
//! All simulation time is expressed in integer **milliseconds** since the
//! simulation epoch. Wall-clock time never enters the simulation: this is the
//! property that makes runs reproducible and lets us compress a "5 day"
//! measurement campaign (plus 24-hour content-monitoring observation windows)
//! into milliseconds of host CPU time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time (milliseconds since the simulation epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from raw milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated causality must not
    /// run backwards, so this is a logic error worth failing loudly on.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is in the future"),
        )
    }

    /// Duration elapsed since `earlier`, or `None` if `earlier` is later.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    ///
    /// # Panics
    /// Panics if the millisecond count overflows `u64` (release builds used
    /// to wrap silently here).
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(checked_scale(s, 1000, "SimDuration::from_secs overflow"))
    }

    /// Construct from whole minutes.
    ///
    /// # Panics
    /// Panics if the millisecond count overflows `u64`.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(checked_scale(m, 60_000, "SimDuration::from_mins overflow"))
    }

    /// Construct from whole hours.
    ///
    /// # Panics
    /// Panics if the millisecond count overflows `u64`.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(checked_scale(
            h,
            3_600_000,
            "SimDuration::from_hours overflow",
        ))
    }

    /// Construct from whole days.
    ///
    /// # Panics
    /// Panics if the millisecond count overflows `u64`.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(checked_scale(
            d,
            86_400_000,
            "SimDuration::from_days overflow",
        ))
    }

    /// Milliseconds in this duration.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds in this duration (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

/// `base * factor`, or a compile-/run-time panic with `msg` on overflow.
/// `const`-compatible so the `SimDuration::from_*` constructors stay `const`.
const fn checked_scale(base: u64, factor: u64, msg: &'static str) -> u64 {
    match base.checked_mul(factor) {
        Some(ms) => ms,
        None => panic!("{}", msg),
    }
}

// Arithmetic below is *checked with a documented panic* (matching the
// long-standing `Sub` idiom): in debug builds plain `+`/`*` already panics
// on overflow, but release builds wrapped silently — a wrapped `SimTime`
// jumps the simulation clock backwards across the entire epoch, which is a
// logic error worth failing loudly on in every profile. Callers that want
// saturation use [`SimTime::saturating_add`] / [`SimDuration::saturating_sub`].

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics if the sum overflows `u64` milliseconds.
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime addition overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    /// # Panics
    /// Panics if the sum overflows `u64` milliseconds.
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics if `d` is longer than the time since the epoch.
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(d.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if the sum overflows `u64` milliseconds.
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(other.0)
                .expect("SimDuration addition overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    /// # Panics
    /// Panics if the sum overflows `u64` milliseconds.
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if the product overflows `u64` milliseconds.
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(k)
                .expect("SimDuration multiplication overflow"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics with a descriptive message if `k == 0` (instead of the bare
    /// built-in divide-by-zero panic).
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_div(k).expect("SimDuration division by zero"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms == 0 {
            return write!(f, "0ms");
        }
        if ms.is_multiple_of(86_400_000) {
            write!(f, "{}d", ms / 86_400_000)
        } else if ms.is_multiple_of(3_600_000) {
            write!(f, "{}h", ms / 3_600_000)
        } else if ms.is_multiple_of(60_000) {
            write!(f, "{}m", ms / 60_000)
        } else if ms.is_multiple_of(1000) {
            write!(f, "{}s", ms / 1000)
        } else {
            write!(f, "{}ms", ms)
        }
    }
}

impl substrate::json::ToJson for SimTime {
    fn to_json(&self) -> substrate::json::Json {
        substrate::json::Json::uint(self.0)
    }
}

impl substrate::json::FromJson for SimTime {
    fn from_json(v: &substrate::json::Json) -> Result<Self, substrate::json::JsonError> {
        v.as_u64()
            .map(SimTime)
            .ok_or_else(|| substrate::json::JsonError::shape("SimTime: expected millisecond count"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(1_000);
        let d = SimDuration::from_secs(2);
        assert_eq!((t + d).as_millis(), 3_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
    }

    #[test]
    #[should_panic(expected = "earlier is in the future")]
    fn since_panics_on_reversed_order() {
        SimTime::EPOCH.since(SimTime::from_millis(1));
    }

    #[test]
    fn checked_since_returns_none_on_reversed_order() {
        assert_eq!(SimTime::EPOCH.checked_since(SimTime::from_millis(1)), None);
        assert_eq!(
            SimTime::from_millis(5).checked_since(SimTime::from_millis(2)),
            Some(SimDuration::from_millis(3))
        );
    }

    #[test]
    fn display_picks_coarsest_exact_unit() {
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1500ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "90s");
        assert_eq!(SimDuration::from_mins(30).to_string(), "30m");
        assert_eq!(SimDuration::from_hours(24).to_string(), "1d");
        assert_eq!(SimDuration::ZERO.to_string(), "0ms");
    }

    #[test]
    #[should_panic(expected = "SimTime addition overflow")]
    fn time_add_overflow_panics() {
        let _ = SimTime::from_millis(u64::MAX) + SimDuration::from_millis(1);
    }

    #[test]
    #[should_panic(expected = "SimTime subtraction underflow")]
    fn time_sub_underflow_panics() {
        let _ = SimTime::from_millis(0) - SimDuration::from_millis(1);
    }

    #[test]
    #[should_panic(expected = "SimDuration addition overflow")]
    fn duration_add_overflow_panics() {
        let _ = SimDuration::from_millis(u64::MAX) + SimDuration::from_millis(1);
    }

    #[test]
    #[should_panic(expected = "SimDuration multiplication overflow")]
    fn duration_mul_overflow_panics() {
        let _ = SimDuration::from_millis(u64::MAX / 2 + 1) * 2;
    }

    #[test]
    #[should_panic(expected = "SimDuration division by zero")]
    fn duration_div_by_zero_panics() {
        let _ = SimDuration::from_secs(1) / 0;
    }

    #[test]
    #[should_panic(expected = "SimDuration::from_days overflow")]
    fn duration_constructor_overflow_panics() {
        let _ = SimDuration::from_days(u64::MAX / 86_400_000 + 1);
    }

    #[test]
    fn ordering_is_chronological() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
