//! Additional prebuilt scenarios beyond the calibrated paper world.

use crate::paper::{paper_spec, PROBE_APEX};
use crate::spec::*;

/// The negative control: the paper-shaped population with **every violator
/// removed** — honest resolvers, no transparent proxies, no injectors, no
/// transcoders, no TLS interceptors, no monitors, no strippers.
///
/// A measurement system is only trustworthy if it reports *nothing* here;
/// the real study could never run this control (there is no clean
/// Internet), but a simulation can.
pub fn clean_spec(scale: f64, seed: u64) -> WorldSpec {
    let mut spec = paper_spec(scale, seed);
    for country in &mut spec.countries {
        for isp in &mut country.isps {
            isp.resolver_hijack = false;
            isp.landing_domain = None;
            isp.shared_js = false;
            isp.transparent_proxy = false;
            isp.transcoder = None;
            isp.isp_injector_meta = None;
            isp.monitored_share = None;
            isp.smtp_strip = false;
        }
    }
    for svc in &mut spec.public_resolvers.services {
        svc.hijack = false;
        svc.landing_domain = None;
    }
    spec.endhost = EndhostSpec::default();
    spec.monitors.clear();
    spec
}

/// The chaos negative control: the clean world under a corruption- and
/// truncation-only campaign. Every violation class is absent but payloads
/// are damaged in flight; a trustworthy pipeline must quarantine the
/// damage and still report **zero** violations, with the data-quality
/// annex accounting for every quarantined probe.
pub fn chaos_corruption_spec(scale: f64, seed: u64) -> WorldSpec {
    let mut spec = clean_spec(scale, seed);
    spec.campaign = vec![FaultRuleSpec::corruption(0.06, 0.06)];
    spec
}

/// A full chaos campaign over the calibrated paper world: a time-windowed
/// regional outage (GB, during the study's first hour — worlds finish
/// building at one virtual hour), a flapping mobile-carrier ISP, and
/// global drop/stall/delay-spike noise.
pub fn chaos_campaign_spec(scale: f64, seed: u64) -> WorldSpec {
    let mut spec = paper_spec(scale, seed);
    spec.campaign = vec![
        FaultRuleSpec::regional_outage("GB", 3_600, 7_200),
        FaultRuleSpec::flapping_isp(42_925, 300, 120),
        FaultRuleSpec {
            drop_chance: 0.02,
            corrupt_chance: 0.01,
            truncate_chance: 0.01,
            stall_chance: 0.005,
            delay_chance: 0.05,
            delay_spike_ms: 900,
            ..Default::default()
        },
    ];
    spec
}

/// A minimal smoke-test world: two countries, a few hundred nodes, one of
/// each violator class. Builds in milliseconds; useful for doctests and
/// quick iteration.
pub fn smoke_spec(seed: u64) -> WorldSpec {
    WorldSpec {
        seed,
        scale: 1.0,
        probe_apex: PROBE_APEX.to_string(),
        countries: vec![
            CountrySpec {
                code: "AA".into(),
                has_rankings: true,
                isps: vec![
                    IspSpec {
                        resolver_hijack: true,
                        landing_domain: Some("assist.smoke.example".into()),
                        ..IspSpec::clean("Smoke Hijack ISP", 80)
                    },
                    IspSpec::clean("Smoke Clean ISP", 200),
                ],
            },
            CountrySpec {
                code: "BB".into(),
                has_rankings: true,
                isps: vec![IspSpec::clean("Smoke ISP B", 150)],
            },
        ],
        public_resolvers: PublicResolverSpec {
            clean_servers: 5,
            services: vec![],
            hijacking_service_weight: 0.0,
        },
        endhost: EndhostSpec {
            tls_interceptors: vec![TlsInterceptorSpec {
                issuer: "Smoke Shield Root".into(),
                nodes: 10,
                shared_key: true,
                invalid: InvalidPolicySpec::MaskWithTrustedRoot,
                copy_fields: false,
                per_site_fraction: 1.0,
                country: None,
            }],
            monitor_attach: vec![MonitorAttachSpec {
                entity: "Smoke Monitor".into(),
                nodes: 15,
                country_limit: None,
                vpn: false,
            }],
            ..EndhostSpec::default()
        },
        monitors: vec![MonitorSpec {
            name: "Smoke Monitor".into(),
            home_country: "AA".into(),
            source_ips: 2,
            profile: MonitorProfile::Commtouch,
            fixed_second_source: false,
            user_agent: "Smoke/1.0".into(),
        }],
        sites: SiteSpec::default(),
        campaign: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn clean_spec_plants_nothing() {
        let built = build(&clean_spec(0.004, 5));
        assert!(built.truth.dns_hijacked.is_empty());
        assert!(built.truth.html_injected.is_empty());
        assert!(built.truth.image_transcoded.is_empty());
        assert!(built.truth.tls_intercepted.is_empty());
        assert!(built.truth.monitored.is_empty());
        assert!(built.truth.smtp_stripped.is_empty());
        assert!(built.truth.total_nodes > 1000);
    }

    #[test]
    fn smoke_spec_builds_fast_with_one_of_each() {
        let built = build(&smoke_spec(6));
        assert!(!built.truth.dns_hijacked.is_empty());
        assert!(!built.truth.tls_intercepted.is_empty());
        assert!(!built.truth.monitored.is_empty());
        assert_eq!(built.truth.total_nodes, 430);
    }
}
