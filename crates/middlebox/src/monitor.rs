//! Content monitors (§7): software or middleboxes that observe a user's
//! HTTP request and later re-download the content from their own
//! infrastructure.
//!
//! Each entity's fingerprint is its **refetch delay distribution** (Figure 5)
//! and **source address behaviour** (Table 9). The models below encode the
//! six entities the paper characterizes:
//!
//! | entity       | pattern                                                  |
//! |--------------|----------------------------------------------------------|
//! | TrendMicro   | two refetches: U(12–120 s), then U(200–12,500 s)          |
//! | TalkTalk     | two refetches: ≈30 s fixed, then within the next hour     |
//! | Commtouch    | one refetch: 1–10 min                                     |
//! | AnchorFree   | two refetches <1 s apart; 2nd always from one fixed IP    |
//! | Bluecoat     | two refetches; the first **precedes** the user's request  |
//! |              | 83% of the time (fetch-before-allow)                      |
//! | Tiscali U.K. | one refetch at exactly 30 s                               |

use netsim::rng::RngExt;
use netsim::{SimDuration, SimRng};
use std::net::Ipv4Addr;

/// When a refetch happens relative to the exit node's own request reaching
/// the origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefetchOffset {
    /// The monitor fetched *before* letting the user's request through
    /// (Bluecoat's fetch-before-allow).
    Before(SimDuration),
    /// The monitor fetched after the user's request.
    After(SimDuration),
}

/// The per-entity refetch timing model.
#[derive(Debug, Clone, PartialEq)]
pub enum RefetchModel {
    /// Two refetches in two log-uniform windows (TrendMicro).
    TwoWindows {
        /// First window, inclusive bounds in milliseconds.
        first: (u64, u64),
        /// Second window, inclusive bounds in milliseconds.
        second: (u64, u64),
    },
    /// A near-fixed first refetch then one uniform in a trailing window
    /// (TalkTalk: 30 s then within the next hour).
    FixedThenWindow {
        /// First refetch offset in milliseconds (±5% jitter).
        first_ms: u64,
        /// Trailing window length in milliseconds.
        window_ms: u64,
    },
    /// One refetch, log-uniform in a window (Commtouch).
    OneWindow {
        /// Window bounds in milliseconds.
        range: (u64, u64),
    },
    /// Two refetches within `max_ms` of the request (AnchorFree: 99% under
    /// one second).
    Immediate {
        /// Upper bound on both offsets, milliseconds.
        max_ms: u64,
    },
    /// Fetch-before-allow: first refetch precedes the request with
    /// probability `before_prob` (else trails shortly), second refetch is
    /// log-uniform in `after` (Bluecoat).
    PrefetchThenAfter {
        /// Probability the first request precedes the user's.
        before_prob: f64,
        /// Bound on the lead/lag of the first request, milliseconds.
        near_ms: u64,
        /// Window for the second request, milliseconds.
        after: (u64, u64),
    },
    /// Exactly one refetch at a fixed offset (Tiscali: 30 s sharp).
    FixedSingle {
        /// The offset in milliseconds.
        at_ms: u64,
    },
}

impl RefetchModel {
    /// Sample the refetch schedule for one monitored request.
    pub fn sample(&self, rng: &mut SimRng) -> Vec<RefetchOffset> {
        match *self {
            RefetchModel::TwoWindows { first, second } => vec![
                RefetchOffset::After(log_uniform(rng, first)),
                RefetchOffset::After(log_uniform(rng, second)),
            ],
            RefetchModel::FixedThenWindow {
                first_ms,
                window_ms,
            } => {
                let jitter = first_ms / 20;
                let first = if jitter == 0 {
                    first_ms
                } else {
                    rng.random_range(first_ms - jitter..=first_ms + jitter)
                };
                let second = first_ms + rng.random_range(1..=window_ms);
                vec![
                    RefetchOffset::After(SimDuration::from_millis(first)),
                    RefetchOffset::After(SimDuration::from_millis(second)),
                ]
            }
            RefetchModel::OneWindow { range } => {
                vec![RefetchOffset::After(log_uniform(rng, range))]
            }
            RefetchModel::Immediate { max_ms } => {
                let a = rng.random_range(1..=max_ms);
                let b = rng.random_range(1..=max_ms);
                vec![
                    RefetchOffset::After(SimDuration::from_millis(a)),
                    RefetchOffset::After(SimDuration::from_millis(b)),
                ]
            }
            RefetchModel::PrefetchThenAfter {
                before_prob,
                near_ms,
                after,
            } => {
                let first = if rng.random_bool(before_prob) {
                    RefetchOffset::Before(SimDuration::from_millis(rng.random_range(1..=near_ms)))
                } else {
                    RefetchOffset::After(SimDuration::from_millis(rng.random_range(1..=near_ms)))
                };
                vec![first, RefetchOffset::After(log_uniform(rng, after))]
            }
            RefetchModel::FixedSingle { at_ms } => {
                vec![RefetchOffset::After(SimDuration::from_millis(at_ms))]
            }
        }
    }
}

/// Log-uniform sample in `[lo, hi]` milliseconds: wide windows in Figure 5
/// fill evenly on its log-scaled x axis.
fn log_uniform(rng: &mut SimRng, (lo, hi): (u64, u64)) -> SimDuration {
    assert!(lo > 0 && hi >= lo, "bad log-uniform window [{lo},{hi}]");
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let x: f64 = rng.random_range(llo..=lhi);
    SimDuration::from_millis((x.exp().round() as u64).clamp(lo, hi))
}

/// How the entity picks source addresses for its refetches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourcePattern {
    /// Any address from the pool, independently per refetch.
    AnyFromPool,
    /// First refetch from any pool address, second always from the last
    /// pool address (AnchorFree's Menlo Park scanner).
    AnyThenFixedLast,
}

/// A content-monitoring entity.
#[derive(Debug, Clone)]
pub struct MonitorEntity {
    /// Entity name (Table 9 row).
    pub name: String,
    /// Addresses its refetches originate from (inside the entity's own AS).
    pub source_ips: Vec<Ipv4Addr>,
    /// Source-selection behaviour.
    pub source_pattern: SourcePattern,
    /// The timing model.
    pub model: RefetchModel,
    /// User-Agent string on refetches (an attribution hint the paper used).
    pub user_agent: String,
}

/// One planned refetch: when, and from where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedRefetch {
    /// Timing relative to the user's request.
    pub offset: RefetchOffset,
    /// Source address of the refetch.
    pub src: Ipv4Addr,
}

impl MonitorEntity {
    /// Plan the refetches for one monitored request.
    ///
    /// # Panics
    /// Panics if the entity has no source addresses.
    pub fn plan(&self, rng: &mut SimRng) -> Vec<PlannedRefetch> {
        assert!(!self.source_ips.is_empty(), "monitor has no source IPs");
        let offsets = self.model.sample(rng);
        offsets
            .into_iter()
            .enumerate()
            .map(|(i, offset)| {
                let src = match self.source_pattern {
                    SourcePattern::AnyFromPool => {
                        self.source_ips[rng.random_range(0..self.source_ips.len())]
                    }
                    SourcePattern::AnyThenFixedLast => {
                        if i == 0 && self.source_ips.len() > 1 {
                            let head = self.source_ips.len() - 1;
                            self.source_ips[rng.random_range(0..head)]
                        } else {
                            *self.source_ips.last().expect("non-empty pool")
                        }
                    }
                };
                PlannedRefetch { offset, src }
            })
            .collect()
    }
}

/// Canonical timing models for the six Table 9 entities.
pub mod profiles {
    use super::RefetchModel;

    /// TrendMicro Web Reputation Services.
    pub fn trend_micro() -> RefetchModel {
        RefetchModel::TwoWindows {
            first: (12_000, 120_000),
            second: (200_000, 12_500_000),
        }
    }

    /// TalkTalk ISP-level monitoring.
    pub fn talktalk() -> RefetchModel {
        RefetchModel::FixedThenWindow {
            first_ms: 30_000,
            window_ms: 3_600_000,
        }
    }

    /// Commtouch / CYREN.
    pub fn commtouch() -> RefetchModel {
        RefetchModel::OneWindow {
            range: (60_000, 600_000),
        }
    }

    /// AnchorFree Hotspot Shield malware protection.
    pub fn anchorfree() -> RefetchModel {
        RefetchModel::Immediate { max_ms: 1_000 }
    }

    /// Bluecoat fetch-before-allow.
    pub fn bluecoat() -> RefetchModel {
        RefetchModel::PrefetchThenAfter {
            before_prob: 0.83,
            near_ms: 5_000,
            after: (30_000, 3_600_000),
        }
    }

    /// Tiscali U.K.
    pub fn tiscali() -> RefetchModel {
        RefetchModel::FixedSingle { at_ms: 30_000 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0x30)
    }

    fn after_ms(o: &RefetchOffset) -> Option<u64> {
        match o {
            RefetchOffset::After(d) => Some(d.as_millis()),
            RefetchOffset::Before(_) => None,
        }
    }

    #[test]
    fn trendmicro_is_bimodal() {
        let m = profiles::trend_micro();
        let mut r = rng();
        for _ in 0..200 {
            let offs = m.sample(&mut r);
            assert_eq!(offs.len(), 2);
            let a = after_ms(&offs[0]).unwrap();
            let b = after_ms(&offs[1]).unwrap();
            assert!((12_000..=120_000).contains(&a), "first {a}");
            assert!((200_000..=12_500_000).contains(&b), "second {b}");
        }
    }

    #[test]
    fn talktalk_first_is_near_thirty_seconds() {
        let m = profiles::talktalk();
        let mut r = rng();
        for _ in 0..100 {
            let offs = m.sample(&mut r);
            let a = after_ms(&offs[0]).unwrap();
            assert!((28_500..=31_500).contains(&a), "first {a}");
            let b = after_ms(&offs[1]).unwrap();
            assert!(b > a && b <= 30_000 + 3_600_000);
        }
    }

    #[test]
    fn tiscali_is_exact() {
        let m = profiles::tiscali();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                m.sample(&mut r),
                vec![RefetchOffset::After(SimDuration::from_millis(30_000))]
            );
        }
    }

    #[test]
    fn anchorfree_under_one_second() {
        let m = profiles::anchorfree();
        let mut r = rng();
        for _ in 0..100 {
            for o in m.sample(&mut r) {
                assert!(after_ms(&o).unwrap() <= 1_000);
            }
        }
    }

    #[test]
    fn bluecoat_prefetch_rate_near_83_percent() {
        let m = profiles::bluecoat();
        let mut r = rng();
        let n = 2_000;
        let before = (0..n)
            .filter(|_| matches!(m.sample(&mut r)[0], RefetchOffset::Before(_)))
            .count();
        let rate = before as f64 / n as f64;
        assert!((0.79..0.87).contains(&rate), "prefetch rate {rate}");
    }

    #[test]
    fn anchorfree_second_source_is_fixed() {
        let pool: Vec<Ipv4Addr> = (1..=11).map(|i| Ipv4Addr::new(10, 9, 0, i)).collect();
        let menlo_park = *pool.last().unwrap();
        let entity = MonitorEntity {
            name: "AnchorFree".into(),
            source_ips: pool,
            source_pattern: SourcePattern::AnyThenFixedLast,
            model: profiles::anchorfree(),
            user_agent: "HotspotShield-Scanner/1.0".into(),
        };
        let mut r = rng();
        let mut first_sources = std::collections::HashSet::new();
        for _ in 0..100 {
            let plan = entity.plan(&mut r);
            assert_eq!(plan.len(), 2);
            assert_eq!(plan[1].src, menlo_park, "second request is fixed-source");
            assert_ne!(plan[0].src, menlo_park);
            first_sources.insert(plan[0].src);
        }
        assert!(first_sources.len() > 3, "first request source varies");
    }

    #[test]
    fn pool_sources_stay_in_pool() {
        let pool: Vec<Ipv4Addr> = (1..=5).map(|i| Ipv4Addr::new(10, 8, 0, i)).collect();
        let entity = MonitorEntity {
            name: "TrendMicro".into(),
            source_ips: pool.clone(),
            source_pattern: SourcePattern::AnyFromPool,
            model: profiles::trend_micro(),
            user_agent: "TMWRS/5.0".into(),
        };
        let mut r = rng();
        for _ in 0..50 {
            for p in entity.plan(&mut r) {
                assert!(pool.contains(&p.src));
            }
        }
    }

    #[test]
    fn log_uniform_spans_window() {
        let mut r = rng();
        let mut below_geometric_mid = 0;
        let n = 4_000;
        for _ in 0..n {
            let d = log_uniform(&mut r, (1_000, 1_000_000)).as_millis();
            assert!((1_000..=1_000_000).contains(&d));
            // Geometric midpoint of the window is ~31,623 ms.
            if d < 31_623 {
                below_geometric_mid += 1;
            }
        }
        let frac = below_geometric_mid as f64 / n as f64;
        assert!(
            (0.45..0.55).contains(&frac),
            "log-uniform median should sit at the geometric midpoint, got {frac}"
        );
    }
}
