#!/usr/bin/env bash
# Full local CI: format, lints, tests, docs, and a smoke reproduction run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== smoke reproduction =="
cargo run -p tft-bench --bin repro --release -- --scale 0.01 --markdown

echo "all checks passed"
