//! A small, strict JSON implementation: value model, parser, printers, and
//! the [`ToJson`]/[`FromJson`] trait pair with struct/enum derive macros.
//!
//! Replaces `serde`/`serde_json` for the workspace's one serialization
//! surface — world-spec files (`worldgen::io`). Design points:
//!
//! - **Integers are exact.** Numbers parse into [`Num::UInt`]/[`Num::Int`]
//!   when they are integral and fit, so a `u64` master seed round-trips
//!   bit-exactly (an `f64` mantissa would silently corrupt seeds above
//!   2^53 — fatal for a determinism-pledged system).
//! - **Objects preserve insertion order**, so rendering is deterministic.
//! - **The parser is total**: arbitrary input returns `Ok` or a positioned
//!   [`JsonError`], never a panic, with a recursion-depth cap against
//!   stack exhaustion (property-tested in `tests/json_prop.rs`).

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 128;

/// A JSON number: exact unsigned/signed integers, or a float.
#[derive(Debug, Clone, Copy)]
pub enum Num {
    /// A non-negative integer that fits `u64`.
    UInt(u64),
    /// A negative integer that fits `i64`.
    Int(i64),
    /// Everything else (fractions, exponents, out-of-range magnitudes).
    Float(f64),
}

impl Num {
    /// The value as `f64` (lossy above 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Num::UInt(v) => v as f64,
            Num::Int(v) => v as f64,
            Num::Float(v) => v,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Num::UInt(v) => Some(v),
            Num::Int(v) => u64::try_from(v).ok(),
            Num::Float(v) if v >= 0.0 && v <= u64::MAX as f64 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Num::UInt(v) => i64::try_from(v).ok(),
            Num::Int(v) => Some(v),
            Num::Float(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }
}

impl PartialEq for Num {
    /// Numeric equality across representations: `UInt(1) == Float(1.0)`.
    fn eq(&self, other: &Self) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {}
        }
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {}
        }
        self.as_f64() == other.as_f64()
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (see [`Num`]).
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an unsigned-integer number value.
    pub fn uint(v: u64) -> Json {
        Json::Num(Num::UInt(v))
    }

    /// Shorthand for a float number value.
    pub fn float(v: f64) -> Json {
        Json::Num(Num::Float(v))
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an integral non-negative `Num`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integral in-range `Num`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Object-member lookup by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// The canonical form of this document: object members sorted by key
    /// (first occurrence wins on duplicates, matching [`Json::get`]),
    /// numbers normalized to their minimal representation (integral
    /// in-range floats collapse to [`Num::UInt`]/[`Num::Int`], `-0.0`
    /// folds to `0`, non-finite floats become `null` exactly as
    /// [`Json::render`] would emit them), arrays canonicalized
    /// element-wise with order preserved.
    ///
    /// Canonicalization is idempotent, and `parse(render)` of a canonical
    /// document is the identity — so [`Json::render_canonical`] is a
    /// byte-stable fingerprint of the document's *content*, independent of
    /// key order or number spelling in the source text (property-tested in
    /// `tests/json_prop.rs`).
    pub fn canonicalize(&self) -> Json {
        match self {
            Json::Null | Json::Bool(_) | Json::Str(_) => self.clone(),
            Json::Num(n) => canonical_num(*n),
            Json::Arr(items) => Json::Arr(items.iter().map(Json::canonicalize).collect()),
            Json::Obj(members) => {
                let mut out: Vec<(String, Json)> = Vec::with_capacity(members.len());
                for (k, v) in members {
                    // First occurrence wins, matching `get`'s lookup rule.
                    if out.iter().all(|(seen, _)| seen != k) {
                        out.push((k.clone(), v.canonicalize()));
                    }
                }
                out.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(out)
            }
        }
    }

    /// Compact rendering of [`Json::canonicalize`]: the byte-stable form
    /// content-addressed keys (`spec_hash`) are computed over.
    pub fn render_canonical(&self) -> String {
        self.canonicalize().render()
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(Num::UInt(v)) => out.push_str(&v.to_string()),
            Json::Num(Num::Int(v)) => out.push_str(&v.to_string()),
            Json::Num(Num::Float(v)) => {
                if v.is_finite() {
                    // `{:?}` is the shortest representation that re-parses
                    // to the same f64.
                    out.push_str(&format!("{v:?}"));
                } else {
                    // JSON has no NaN/Inf; match serde_json's `null`.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

/// Normalize a number to its minimal canonical representation.
fn canonical_num(n: Num) -> Json {
    match n {
        Num::UInt(v) => Json::Num(Num::UInt(v)),
        Num::Int(v) => match u64::try_from(v) {
            Ok(u) => Json::Num(Num::UInt(u)),
            Err(_) => Json::Num(Num::Int(v)),
        },
        Num::Float(v) if !v.is_finite() => Json::Null,
        Num::Float(v) if v.fract() == 0.0 && v >= 0.0 && v < u64_exclusive_bound() => {
            // Every integral f64 in [0, 2^64) is exactly representable as
            // u64, so the cast is value-preserving (this also folds -0.0,
            // which compares >= 0.0, into 0).
            Json::Num(Num::UInt(v as u64))
        }
        Num::Float(v) if v.fract() == 0.0 && v < 0.0 && v >= i64::MIN as f64 => {
            Json::Num(Num::Int(v as i64))
        }
        Num::Float(v) => Json::Num(Num::Float(v)),
    }
}

/// `2^64` as f64 (exact): the smallest float *not* convertible to u64.
/// `u64::MAX as f64` rounds up to exactly this value, so a plain
/// `v <= u64::MAX as f64` bound would wrongly admit 2^64 itself.
fn u64_exclusive_bound() -> f64 {
    18446744073709551616.0
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON failure: parse errors carry a byte position (reported as
/// line/column), shape errors describe the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// A structural ("shape") error from [`FromJson`] decoding.
    pub fn shape(msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into() }
    }

    fn at(input: &str, pos: usize, msg: impl Into<String>) -> JsonError {
        let (mut line, mut col) = (1usize, 1usize);
        for b in input.as_bytes()[..pos.min(input.len())].iter() {
            if *b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            msg: format!("{} at line {line} column {col}", msg.into()),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError::at(self.input, self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free ASCII/UTF-8 run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(&self.input[start..self.pos]);
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.escape()?);
                }
                Some(_) => return Err(self.err("control character in string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            _ => return Err(self.err("invalid escape character")),
        })
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let second = self.hex4()?;
                    if (0xDC00..0xE000).contains(&second) {
                        let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                        return char::from_u32(cp)
                            .ok_or_else(|| self.err("invalid surrogate pair"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        // Integer part: `0` or nonzero-led digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if integral {
            if !neg {
                if let Ok(v) = text.parse::<u64>() {
                    return Ok(Json::Num(Num::UInt(v)));
                }
            } else if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Num(Num::Int(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Json::Num(Num::Float(v)))
            .map_err(|_| JsonError::at(self.input, start, "number out of range"))
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decode from JSON, or explain the shape mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Encode any [`ToJson`] value as a pretty-printed document.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().render_pretty()
}

/// Parse a document and decode it as `T`.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&parse(input)?)
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::shape(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(Num::UInt(*self as u64))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v.as_u64()
                    .ok_or_else(|| JsonError::shape(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(n).map_err(|_| JsonError::shape(format!(
                    concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )+};
}
impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v < 0 { Json::Num(Num::Int(v)) } else { Json::Num(Num::UInt(v as u64)) }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v.as_i64()
                    .ok_or_else(|| JsonError::shape(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(n).map_err(|_| JsonError::shape(format!(
                    concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )+};
}
impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(Num::Float(*self))
    }
}
impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::shape(format!("expected number, got {v:?}")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::shape(format!("expected string, got {v:?}")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::shape(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::shape(format!(
                "expected 2-element array, got {v:?}"
            ))),
        }
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: std::str::FromStr + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_obj()
            .ok_or_else(|| JsonError::shape(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, val)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| JsonError::shape(format!("unparseable map key {k:?}")))?;
                Ok((key, V::from_json(val)?))
            })
            .collect()
    }
}

impl ToJson for std::net::Ipv4Addr {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}
impl FromJson for std::net::Ipv4Addr {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| JsonError::shape(format!("expected IPv4 string, got {v:?}")))?;
        s.parse()
            .map_err(|_| JsonError::shape(format!("invalid IPv4 address {s:?}")))
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}
impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

#[doc(hidden)]
pub fn missing_field(ty: &str, field: &str) -> JsonError {
    JsonError::shape(format!("{ty}: missing field `{field}`"))
}

#[doc(hidden)]
pub fn in_field(ty: &str, field: &str, e: JsonError) -> JsonError {
    JsonError::shape(format!("{ty}.{field}: {e}"))
}

/// Implements [`ToJson`] and [`FromJson`] for a named-field struct.
///
/// Fields decode by name; a field spelled `name: default_expr` falls back
/// to `default_expr` when the key is absent (the `#[serde(default)]`
/// replacement).
///
/// ```
/// use substrate::json_struct;
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u32, y: u32, label: String }
/// json_struct!(Point { x, y, label: String::from("origin") });
/// let p: Point = substrate::json::from_str(r#"{"x":1,"y":2}"#).unwrap();
/// assert_eq!(p, Point { x: 1, y: 2, label: "origin".into() });
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident $(: $default:expr)?),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                if v.as_obj().is_none() {
                    return Err($crate::json::JsonError::shape(format!(
                        concat!(stringify!($ty), ": expected object, got {:?}"), v)));
                }
                Ok($ty {
                    $($field: $crate::__json_field!(
                        v, stringify!($ty), stringify!($field) $(, $default)?),)+
                })
            }
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_field {
    ($v:expr, $ty:expr, $name:expr) => {
        match $v.get($name) {
            Some(f) => $crate::json::FromJson::from_json(f)
                .map_err(|e| $crate::json::in_field($ty, $name, e))?,
            None => return Err($crate::json::missing_field($ty, $name)),
        }
    };
    ($v:expr, $ty:expr, $name:expr, $default:expr) => {
        match $v.get($name) {
            Some(f) => $crate::json::FromJson::from_json(f)
                .map_err(|e| $crate::json::in_field($ty, $name, e))?,
            None => $default,
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a unit-variant enum as its
/// variant-name string (the serde derive's external representation).
///
/// ```
/// use substrate::json_enum;
/// #[derive(Debug, PartialEq)]
/// enum Mode { Fast, Slow }
/// json_enum!(Mode { Fast, Slow });
/// assert_eq!(substrate::json::from_str::<Mode>("\"Fast\"").unwrap(), Mode::Fast);
/// ```
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $($ty::$variant =>
                        $crate::json::Json::Str(stringify!($variant).to_string()),)+
                }
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    _ => Err($crate::json::JsonError::shape(format!(
                        concat!("unknown ", stringify!($ty), " variant: {:?}"), v))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse(" 42 ").unwrap(), Json::uint(42));
        assert_eq!(parse("-7").unwrap(), Json::Num(Num::Int(-7)));
        assert_eq!(parse("1.5").unwrap(), Json::float(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn u64_seeds_roundtrip_exactly() {
        for v in [0u64, 1, u64::MAX, (1 << 53) + 1, 0xDEAD_BEEF_CAFE_F00D] {
            let doc = Json::uint(v).render();
            assert_eq!(parse(&doc).unwrap().as_u64(), Some(v), "seed {v}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in [
            "plain",
            "with \"quotes\" and \\ backslash",
            "newline\nand\ttab",
            "unicode: ∂é→ 🦀",
            "\u{01}\u{1f}",
        ] {
            let doc = Json::str(s).render();
            assert_eq!(parse(&doc).unwrap(), Json::str(s), "{s:?} via {doc}");
        }
    }

    #[test]
    fn surrogate_pair_escape() {
        assert_eq!(parse(r#""\ud83e\udd80""#).unwrap(), Json::str("🦀"));
        assert!(parse(r#""\ud83e""#).is_err(), "unpaired surrogate");
        assert!(parse(r#""\udd80""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "", "{", "}", "[1,", "[1 2]", "{\"a\"}", "{\"a\":}", "{a:1}", "tru", "nul", "01", "1.",
            "1e", "+1", "--1", "\"", "\"\\x\"", "[1]]", "1 2", "\u{0}",
        ] {
            assert!(parse(doc).is_err(), "should reject {doc:?}");
        }
    }

    #[test]
    fn depth_limit_is_an_error_not_a_crash() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn pretty_rendering_reparses() {
        let doc = Json::Obj(vec![
            ("seed".into(), Json::uint(42)),
            ("scale".into(), Json::float(0.01)),
            (
                "tags".into(),
                Json::Arr(vec![Json::str("a"), Json::Null, Json::Bool(true)]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let pretty = doc.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), doc);
        assert_eq!(parse(&doc.render()).unwrap(), doc);
        assert!(pretty.contains("\n  \"seed\": 42"));
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = doc
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        id: u64,
        ratio: f64,
        name: String,
        alias: Option<String>,
        flags: Vec<bool>,
        weight: Option<(String, f64)>,
        extra: u32,
    }
    json_struct!(Demo {
        id,
        ratio,
        name,
        alias,
        flags,
        weight,
        extra: 7
    });

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }
    json_enum!(Color { Red, Green });

    #[test]
    fn struct_macro_roundtrips_with_defaults() {
        let d = Demo {
            id: u64::MAX,
            ratio: 0.25,
            name: "x".into(),
            alias: None,
            flags: vec![true, false],
            weight: Some(("w".into(), 1.5)),
            extra: 9,
        };
        let text = to_string_pretty(&d);
        assert_eq!(from_str::<Demo>(&text).unwrap(), d);
        // Dropping the defaulted field falls back; dropping a required one
        // errors with the field name.
        let missing_extra =
            r#"{"id":1,"ratio":1.0,"name":"n","alias":null,"flags":[],"weight":null}"#;
        assert_eq!(from_str::<Demo>(missing_extra).unwrap().extra, 7);
        let missing_name = r#"{"id":1,"ratio":1.0,"alias":null,"flags":[],"weight":null}"#;
        let err = from_str::<Demo>(missing_name).unwrap_err().to_string();
        assert!(err.contains("name"), "error was: {err}");
    }

    #[test]
    fn enum_macro_roundtrips_and_rejects_unknown() {
        assert_eq!(Color::Red.to_json(), Json::str("Red"));
        assert_eq!(from_str::<Color>("\"Green\"").unwrap(), Color::Green);
        assert!(from_str::<Color>("\"Blue\"").is_err());
        assert!(from_str::<Color>("3").is_err());
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::float(f64::NAN).render(), "null");
        assert_eq!(Json::float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn canonicalize_sorts_keys_recursively() {
        let doc = parse(r#"{"z":{"b":1,"a":2},"a":[{"y":1,"x":2}]}"#).unwrap();
        assert_eq!(
            doc.render_canonical(),
            r#"{"a":[{"x":2,"y":1}],"z":{"a":2,"b":1}}"#
        );
    }

    #[test]
    fn canonicalize_normalizes_numbers() {
        // Integral floats collapse to exact integers; spelling disappears.
        assert_eq!(parse("1.0").unwrap().render_canonical(), "1");
        assert_eq!(parse("1e3").unwrap().render_canonical(), "1000");
        assert_eq!(parse("-2.0").unwrap().render_canonical(), "-2");
        assert_eq!(parse("-0.0").unwrap().render_canonical(), "0");
        assert_eq!(Json::Num(Num::Int(5)).render_canonical(), "5");
        // Non-integral and out-of-range floats stay floats.
        assert_eq!(parse("1.5").unwrap().render_canonical(), "1.5");
        assert_eq!(parse("1e300").unwrap().render_canonical(), "1e300");
        // The 2^64 boundary: u64::MAX survives, 2^64 itself stays a float.
        assert_eq!(
            Json::uint(u64::MAX).render_canonical(),
            u64::MAX.to_string()
        );
        let two_pow_64 = Json::float(18446744073709551616.0).canonicalize();
        assert!(matches!(two_pow_64, Json::Num(Num::Float(_))));
        // Non-finite floats canonicalize to the null they would render as.
        assert_eq!(Json::float(f64::NAN).canonicalize(), Json::Null);
    }

    #[test]
    fn canonicalize_is_idempotent_and_value_preserving() {
        let doc = parse(r#"{"b":2.0,"a":[1e2,true,"s",{"k":-0.0}],"c":null}"#).unwrap();
        let canon = doc.canonicalize();
        assert_eq!(canon.canonicalize(), canon, "idempotent");
        // Value-preserving: every leaf still reads back the same number.
        assert_eq!(canon.get("b").and_then(Json::as_u64), Some(2));
        let first = match canon.get("a") {
            Some(Json::Arr(items)) => items.first(),
            _ => None,
        };
        assert_eq!(first.and_then(Json::as_u64), Some(100));
        assert_eq!(
            parse(&canon.render()).unwrap(),
            canon,
            "canonical forms survive a render/parse cycle exactly"
        );
    }

    #[test]
    fn canonicalize_keeps_first_duplicate_key() {
        let doc = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(doc.render_canonical(), r#"{"k":1}"#, "matches get()");
    }

    #[test]
    fn canonical_rendering_is_key_order_independent() {
        let a = parse(r#"{"seed":1,"scale":0.5}"#).unwrap();
        let b = parse(r#"{"scale":0.5,"seed":1.0}"#).unwrap();
        assert_eq!(a.render_canonical(), b.render_canonical());
        assert_ne!(a.render(), b.render());
    }
}
