//! Property tests for the simulation kernel.

use netsim::{Cdf, Scheduler, SimDuration, SimTime, TokenBucket};
use proptest::prelude::*;

proptest! {
    /// The scheduler fires events in (time, insertion) order regardless of
    /// insertion order — checked against a reference sort.
    #[test]
    fn scheduler_matches_reference_order(delays in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut s = Scheduler::new();
        for (i, &d) in delays.iter().enumerate() {
            s.schedule(SimDuration::from_millis(d), i);
        }
        let fired: Vec<(u64, usize)> = std::iter::from_fn(|| s.next())
            .map(|f| (f.at.as_millis(), f.payload))
            .collect();
        let mut expected: Vec<(u64, usize)> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i))
            .collect();
        expected.sort();
        prop_assert_eq!(fired, expected);
    }

    /// Cancelling any subset suppresses exactly those events.
    #[test]
    fn cancellation_suppresses_exactly_the_cancelled(
        delays in proptest::collection::vec(0u64..1_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut s = Scheduler::new();
        let ids: Vec<_> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| s.schedule(SimDuration::from_millis(d), i))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                s.cancel(*id);
            } else {
                kept.push(i);
            }
        }
        let mut fired: Vec<usize> = std::iter::from_fn(|| s.next()).map(|f| f.payload).collect();
        fired.sort();
        kept.sort();
        prop_assert_eq!(fired, kept);
    }

    /// The clock never runs backwards.
    #[test]
    fn clock_is_monotone(delays in proptest::collection::vec(0u64..5_000, 1..100)) {
        let mut s = Scheduler::new();
        for (i, &d) in delays.iter().enumerate() {
            s.schedule(SimDuration::from_millis(d), i);
        }
        let mut last = SimTime::EPOCH;
        while let Some(f) = s.next() {
            prop_assert!(f.at >= last);
            last = f.at;
        }
    }

    /// Token buckets never oversupply: in any window of N intervals the
    /// grant count is at most (N+1) × capacity.
    #[test]
    fn token_bucket_rate_bound(cap in 1u64..16, interval_ms in 1u64..100, probes in proptest::collection::vec(0u64..10_000, 1..300)) {
        let mut sorted = probes.clone();
        sorted.sort();
        let mut bucket = TokenBucket::new(cap, SimDuration::from_millis(interval_ms));
        let mut granted = 0u64;
        for &t in &sorted {
            if bucket.try_take(SimTime::from_millis(t), 1) {
                granted += 1;
            }
        }
        let span = sorted.last().unwrap() - sorted.first().unwrap();
        let max_grants = (span / interval_ms + 2) * cap;
        prop_assert!(granted <= max_grants, "granted {granted} > bound {max_grants}");
    }

    /// CDF fraction_at is monotone and bounded in [0,1].
    #[test]
    fn cdf_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..200), probes in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let cdf = Cdf::new(samples);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for p in sorted {
            let f = cdf.fraction_at(p);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last);
            last = f;
        }
    }
}
