//! # worldgen — calibrated world scenarios
//!
//! Builds the simulated Internet population the measurement study runs
//! against:
//!
//! - [`calibration`]: the paper's published numbers, transcribed;
//! - [`spec`]: declarative, JSON-able world descriptions with paper-scale
//!   counts and a scale factor;
//! - [`paper`]: [`paper::paper_spec`] — the calibrated default scenario
//!   with every named ISP, injector, interceptor, and monitor from
//!   Tables 3–9;
//! - [`build`](mod@crate::build): deterministic spec → [`proxynet::World`]
//!   construction;
//! - [`truth`]: the planted [`truth::GroundTruth`], used only for scoring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod calibration;
pub mod io;
pub mod paper;
pub mod scenarios;
pub mod spec;
pub mod truth;
pub mod validate;

pub use build::{build, campaign_from_spec, try_build, BuiltWorld};
pub use io::{from_json, load, save, to_json, SpecIoError};
pub use paper::{paper_spec, DEFAULT_SEED, PROBE_APEX};
pub use scenarios::{chaos_campaign_spec, chaos_corruption_spec, clean_spec, smoke_spec};
pub use spec::{FaultRuleSpec, WorldSpec};
pub use truth::{DnsHijackSource, GroundTruth};
pub use validate::{validate, SpecError};
