//! The content-monitoring experiment (§7.1, Figure 4).
//!
//! Each sampled node fetches a domain generated uniquely for it. Exactly
//! one request should ever arrive at our web server for that domain; any
//! additional request — from a different address, possibly hours later —
//! means a middlebox or end-host software observed the URL and refetched
//! the content.

use crate::config::StudyConfig;
use crate::crawl::Sampler;
use crate::exec::ProbeScope;
use crate::obs::{MonitorDataset, MonitorObservation};
use crate::quality::delivery_outcome;
use httpwire::{Response, Uri};
use netsim::SimDuration;
use proxynet::{UsernameOptions, World, ZId};
use std::collections::HashMap;

/// Sampler-seed salt (XORed with virtual time at experiment start).
const SEED_SALT: u64 = 0x303;

/// User agent our own proxied requests carry (refetches carry the
/// monitoring product's own UA, an attribution signal).
const OWN_UA: &str = "Hola/1.108";

/// Run the experiment: probe, then hold the observation window open.
pub fn run(world: &mut World, cfg: &StudyConfig) -> MonitorDataset {
    let scope = ProbeScope::full(world);
    run_scoped(world, cfg, scope)
}

/// Run one population shard (parallel executor entry point).
pub(crate) fn run_shard(world: &mut World, cfg: &StudyConfig, scope: ProbeScope) -> MonitorDataset {
    run_scoped(world, cfg, scope)
}

// tft-lint: hot-root — per-probe monitor experiment loop
fn run_scoped(world: &mut World, cfg: &StudyConfig, scope: ProbeScope) -> MonitorDataset {
    let mut sampler = Sampler::new(
        &scope.counts,
        scope.rng(world.now().as_millis(), SEED_SALT),
        cfg.saturation_window,
        cfg.saturation_min_new,
    )
    .with_session_base(scope.session_base);
    let mut data = MonitorDataset {
        window_hours: cfg.monitor_window_hours,
        ..Default::default()
    };
    // One reusable option set per shard: the customer string is owned
    // once, not re-allocated per sample (DESIGN.md §10).
    let mut opts = UsernameOptions::new(&cfg.customer);
    let apex = world.auth_apex().clone();
    let web_ip = world.web_ip();
    // zid → (domain, reported exit ip, probe issue time)
    let mut probed: HashMap<ZId, (String, std::net::Ipv4Addr)> = HashMap::new();
    // Reused per-probe label scratch (see dns_exp.rs).
    use std::fmt::Write as _;
    let mut label = String::new();

    for i in 0..cfg.max_samples {
        if sampler.saturated() {
            break;
        }
        let (country, session) = sampler.next_probe();
        data.samples_issued += 1;
        label.clear();
        let _ = write!(label, "{}m{i}", scope.tag);
        let name = apex.child(&label).expect("valid label");
        let host = name.to_string();
        world
            .auth_server_mut()
            .zone_mut()
            .add_a(name.clone(), web_ip);
        world.web_server_mut().put(
            &host,
            "/",
            Response::ok(
                "text/html",
                b"<html><body>tft monitor probe</body></html>".to_vec(),
            ),
        );
        opts.country = Some(country);
        opts.session = Some(session);
        match world.proxy_get(&opts, &Uri::http(&host, "/")) {
            Ok(resp) => {
                let Some(zid) = resp.debug.final_zid().cloned() else {
                    data.quality.record_failure(country);
                    sampler.record_miss();
                    continue;
                };
                data.quality.record(country, delivery_outcome(&resp.debug));
                if sampler.record(&zid) {
                    probed.insert(zid, (host, resp.exit_ip));
                } else {
                    // Duplicate node: withdraw the unused probe name.
                    world.auth_server_mut().zone_mut().remove(&name);
                    world.web_server_mut().remove(&host, "/");
                }
            }
            Err(e) => {
                data.quality.record_error(country, &e);
                sampler.record_miss();
                world.auth_server_mut().zone_mut().remove(&name);
                world.web_server_mut().remove(&host, "/");
            }
        }
    }

    // Hold the observation window open (the paper watched for 24 hours).
    world.advance(SimDuration::from_hours(cfg.monitor_window_hours));

    // Assemble observations from the web log.
    let log = world.web_server().log_sorted();
    let mut by_host: HashMap<&str, Vec<&proxynet::WebLogEntry>> = HashMap::new();
    for e in &log {
        by_host.entry(e.host.as_str()).or_default().push(e);
    }
    for (zid, (host, exit_ip)) in probed {
        let entries = by_host.remove(host.as_str()).unwrap_or_default();
        // The node's own request: matches the reported exit address, or —
        // when a VPN hides it — the earliest request carrying our proxy
        // client's UA.
        let own = entries
            .iter()
            .find(|e| e.src == exit_ip)
            .or_else(|| {
                entries
                    .iter()
                    .find(|e| e.user_agent.as_deref() == Some(OWN_UA))
            })
            .map(|e| (*e).clone());
        let unexpected: Vec<proxynet::WebLogEntry> = entries
            .iter()
            .filter(|e| {
                own.as_ref()
                    .map(|o| e.at != o.at || e.src != o.src)
                    .unwrap_or(true)
            })
            .map(|e| (*e).clone())
            .collect();
        data.observations.push(MonitorObservation {
            zid,
            reported_exit_ip: exit_ip,
            domain: host,
            own_request: own,
            unexpected,
        });
    }
    data.observations.sort_by(|a, b| a.domain.cmp(&b.domain));
    data
}
