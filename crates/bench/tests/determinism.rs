//! Determinism regression for the bench harness entry point: two
//! `run_full(scale, seed)` invocations must render byte-identical Markdown
//! tables. This is the contract `BENCH_substrate.json` trend tracking and
//! every pinned regression value rely on.

#[test]
fn run_full_is_deterministic() {
    let a = tft_bench::run_full(0.004, 0xBE7C);
    let b = tft_bench::run_full(0.004, 0xBE7C);
    let ra = tft_bench::render_all(&a);
    let rb = tft_bench::render_all(&b);
    assert!(!ra.is_empty());
    assert_eq!(
        ra, rb,
        "same (scale, seed) must render byte-identical output"
    );
}

#[test]
fn run_full_seed_changes_output() {
    let a = tft_bench::render_all(&tft_bench::run_full(0.004, 1));
    let b = tft_bench::render_all(&tft_bench::run_full(0.004, 2));
    assert_ne!(a, b, "different seeds should not collide");
}
