//! Deterministic string interning: [`Symbol`] + [`SymbolTable`].
//!
//! A `SymbolTable` maps strings to dense `u32` ids in **insertion order**:
//! the first distinct string interned gets id 0, the next id 1, and so on.
//! Because ids are a pure function of the sequence of `intern` calls, two
//! runs that intern the same strings in the same order produce identical
//! tables — which is what lets symbols live inside observation records
//! without threatening the byte-identical-at-any-worker-count contract.
//!
//! The intended discipline (DESIGN.md §10) is **pre-population**: build the
//! table once, deterministically, at world-construction time (site lists,
//! AS organisation names, country labels), share it read-only across
//! shards, and have probe loops only *look up* symbols. Probe loops never
//! insert, so shard execution order cannot perturb ids. For pipelines that
//! must grow tables concurrently, [`SymbolTable::merge`] folds one table
//! into another and returns the id remapping; merging is deterministic in
//! the operand order, which the parallel executor already fixes.
//!
//! Interned comparisons are u32 compares; a resolved `&str` is only needed
//! at the analysis/report boundary.

use crate::json::{FromJson, Json, JsonError, ToJson};
use std::collections::HashMap;

/// A dense id into one [`SymbolTable`].
///
/// Symbols are meaningful only relative to the table that issued them;
/// resolving a symbol against a different table is a logic error (caught
/// by [`SymbolTable::resolve`]'s bounds check at best).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index this symbol occupies in its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a symbol from a dense index previously obtained via
    /// [`Symbol::index`] (e.g. after JSON round-tripping).
    pub fn from_index(index: usize) -> Option<Symbol> {
        u32::try_from(index).ok().map(Symbol)
    }
}

impl ToJson for Symbol {
    fn to_json(&self) -> Json {
        Json::uint(u64::from(self.0))
    }
}

impl FromJson for Symbol {
    fn from_json(v: &Json) -> Result<Symbol, JsonError> {
        let n = v
            .as_u64()
            .ok_or_else(|| JsonError::shape("Symbol: expected unsigned integer"))?;
        u32::try_from(n)
            .map(Symbol)
            .map_err(|_| JsonError::shape("Symbol: id exceeds u32"))
    }
}

/// A string interner with stable insertion-order ids.
///
/// The table stores each distinct string exactly once; `intern` of an
/// already-known string returns the existing id without allocating. The
/// reverse map (`HashMap`) is used for point lookups only — every
/// iteration-order-sensitive API walks the insertion-ordered `strings`
/// vector, so nothing downstream can observe hash order.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    /// id → string, in insertion order. The source of truth.
    strings: Vec<String>,
    /// string → id point-lookup accelerator; never iterated.
    index: HashMap<String, u32>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern `s`, returning its stable id. Existing strings return their
    /// original id; new strings get the next dense id.
    ///
    /// # Panics
    /// Panics if the table would exceed `u32::MAX` distinct strings.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.index.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(self.strings.len()).expect("SymbolTable overflow");
        // tft-lint: allow(hot-path-alloc, reason = "first-insertion ownership IS the interner's job: each distinct string is copied exactly once, and steady-state callers hit the early return or lookup()")
        self.strings.push(s.to_string());
        // tft-lint: allow(hot-path-alloc, reason = "first-insertion ownership IS the interner's job: each distinct string is copied exactly once, and steady-state callers hit the early return or lookup()")
        self.index.insert(s.to_string(), id);
        Symbol(id)
    }

    /// The id of `s` if it is already interned. Never allocates — this is
    /// the probe-loop entry point.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.index.get(s).copied().map(Symbol)
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was not issued by this table (index out of range).
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// The string behind `sym`, or `None` for a foreign/out-of-range id.
    pub fn get(&self, sym: Symbol) -> Option<&str> {
        self.strings.get(sym.index()).map(String::as_str)
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(symbol, string)` pairs in insertion (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_str()))
    }

    /// Fold `other` into `self`: every string of `other` is interned here
    /// (keeping existing ids, appending genuinely new strings in `other`'s
    /// insertion order). Returns the remap `other`-id → `self`-symbol, so
    /// records carrying `other` symbols can be rewritten.
    ///
    /// Merging is deterministic in the operand order: merging the same
    /// tables in the same order always yields the same result table and
    /// remaps.
    pub fn merge(&mut self, other: &SymbolTable) -> Vec<Symbol> {
        other.strings.iter().map(|s| self.intern(s)).collect()
    }
}

impl ToJson for SymbolTable {
    /// Canonical form: the insertion-ordered string array. Ids are implied
    /// by position, so the rendering is unique per table.
    fn to_json(&self) -> Json {
        Json::Arr(self.strings.iter().map(Json::str).collect())
    }
}

impl FromJson for SymbolTable {
    fn from_json(v: &Json) -> Result<SymbolTable, JsonError> {
        let arr = v
            .as_arr()
            .ok_or_else(|| JsonError::shape("SymbolTable: expected array of strings"))?;
        let mut table = SymbolTable::new();
        for item in arr {
            let s = item
                .as_str()
                .ok_or_else(|| JsonError::shape("SymbolTable: expected string element"))?;
            if table.lookup(s).is_some() {
                return Err(JsonError::shape(format!(
                    "SymbolTable: duplicate string {s:?}"
                )));
            }
            table.intern(s);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qc;

    #[test]
    fn ids_are_dense_and_insertion_ordered() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        let a2 = t.intern("alpha");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(a, a2, "re-intern must return the original id");
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
        assert_eq!(t.lookup("beta"), Some(b));
        assert_eq!(t.lookup("gamma"), None);
        assert_eq!(t.get(Symbol(7)), None);
    }

    #[test]
    fn iter_is_insertion_order() {
        let mut t = SymbolTable::new();
        for s in ["z", "a", "m", "a"] {
            t.intern(s);
        }
        let seen: Vec<&str> = t.iter().map(|(_, s)| s).collect();
        assert_eq!(seen, vec!["z", "a", "m"]);
    }

    #[test]
    fn json_round_trip_is_canonical() {
        let mut t = SymbolTable::new();
        for s in ["host.example", "other.example", "host.example", ""] {
            t.intern(s);
        }
        let rendered = t.to_json().render();
        let back = SymbolTable::from_json(&crate::json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back.to_json().render(), rendered);
        for (sym, s) in t.iter() {
            assert_eq!(back.lookup(s), Some(sym), "ids must survive round-trip");
        }
    }

    #[test]
    fn json_rejects_duplicates_and_non_strings() {
        assert!(SymbolTable::from_json(&crate::json::parse("[\"a\",\"a\"]").unwrap()).is_err());
        assert!(SymbolTable::from_json(&crate::json::parse("[1]").unwrap()).is_err());
        assert!(SymbolTable::from_json(&crate::json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn merge_keeps_existing_ids_and_appends_new() {
        let mut base = SymbolTable::new();
        base.intern("a");
        base.intern("b");
        let mut other = SymbolTable::new();
        other.intern("b");
        other.intern("c");
        let remap = base.merge(&other);
        assert_eq!(remap.len(), 2);
        assert_eq!(base.resolve(remap[0]), "b");
        assert_eq!(base.resolve(remap[1]), "c");
        assert_eq!(base.len(), 3);
        assert_eq!(base.lookup("a").unwrap().index(), 0);
        assert_eq!(base.lookup("c").unwrap().index(), 2);
    }

    /// Arbitrary short strings over a mixed alphabet (empty allowed).
    fn gen_strings() -> qc::Gen<Vec<String>> {
        qc::vec_of(qc::string_of("abz09.-\u{e9}", 0..=6), 0..=24)
    }

    #[test]
    fn qc_intern_resolve_round_trip() {
        qc::check(
            "intern/resolve round-trip",
            &qc::Config::new(),
            &gen_strings(),
            |strings| {
                let mut t = SymbolTable::new();
                for s in strings {
                    let sym = t.intern(s);
                    if t.resolve(sym) != s || t.lookup(s) != Some(sym) {
                        return qc::TestResult::Fail(format!("round-trip broke for {s:?}"));
                    }
                }
                qc::pass()
            },
        );
    }

    #[test]
    fn qc_ids_stable_under_reintern() {
        qc::check(
            "id stability under re-intern",
            &qc::Config::new(),
            &gen_strings(),
            |strings| {
                let mut t = SymbolTable::new();
                let first: Vec<Symbol> = strings.iter().map(|s| t.intern(s)).collect();
                let len_after_first = t.len();
                let second: Vec<Symbol> = strings.iter().map(|s| t.intern(s)).collect();
                if first != second {
                    return qc::TestResult::Fail("re-intern changed an id".into());
                }
                if t.len() != len_after_first {
                    return qc::TestResult::Fail("re-intern grew the table".into());
                }
                qc::pass()
            },
        );
    }

    #[test]
    fn qc_merge_is_deterministic_and_complete() {
        qc::check(
            "table-merge determinism",
            &qc::Config::new(),
            &qc::tuple2(gen_strings(), gen_strings()),
            |(left, right)| {
                let build = |items: &[String]| {
                    let mut t = SymbolTable::new();
                    for s in items {
                        t.intern(s);
                    }
                    t
                };
                let mut merged_a = build(left);
                let other = build(right);
                let remap_a = merged_a.merge(&other);
                // Same operands, same order → identical table and remap.
                let mut merged_b = build(left);
                let remap_b = merged_b.merge(&build(right));
                if merged_a.to_json().render() != merged_b.to_json().render() {
                    return qc::TestResult::Fail("merge result diverged".into());
                }
                if remap_a != remap_b {
                    return qc::TestResult::Fail("remap diverged".into());
                }
                // Every remapped symbol resolves to the original string.
                for (sym_other, s) in other.iter() {
                    if merged_a.resolve(remap_a[sym_other.index()]) != s {
                        return qc::TestResult::Fail(format!("remap lost {s:?}"));
                    }
                }
                qc::pass()
            },
        );
    }
}
