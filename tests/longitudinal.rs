//! The longitudinal mode detects an operator changing behaviour between
//! measurement epochs: TMnet turns its hijacking appliance off, Malaysia's
//! ratio collapses, everyone else stays flat.

use tft::netsim::SimDuration;
use tft::prelude::*;
use tft::tft_core::longitudinal;

#[test]
fn operator_change_shows_up_as_a_trend() {
    let scale = 0.006;
    let mut built = build(&paper_spec(scale, 0x1057));
    let cfg = StudyConfig::scaled(scale);

    let epochs = longitudinal::run(
        &mut built.world,
        &cfg,
        2,
        SimDuration::from_days(7),
        |world, epoch| {
            if epoch == 0 {
                // TMnet retires its hijacking: resolvers answer honestly and
                // the transparent proxy is unplugged.
                let tmnet_resolvers: Vec<_> = world
                    .resolvers()
                    .filter(|def| {
                        world
                            .registry
                            .asn_to_org(def.asn)
                            .map(|o| o.name == "TMnet")
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect();
                let tmnet_asns: Vec<_> = world
                    .registry
                    .asns()
                    .filter(|a| {
                        world
                            .registry
                            .asn_to_org(*a)
                            .map(|o| o.name == "TMnet")
                            .unwrap_or(false)
                    })
                    .collect();
                assert!(!tmnet_resolvers.is_empty(), "TMnet resolvers exist");
                for mut def in tmnet_resolvers {
                    def.hijacker = None;
                    world.add_resolver(def);
                }
                for asn in tmnet_asns {
                    world.clear_transparent_dns(asn);
                }
            }
        },
    );

    assert_eq!(epochs.len(), 2);
    let my = inetdb::CountryCode::new("MY");
    let before = epochs[0].country_ratios()[&my];
    let after = epochs[1].country_ratios().get(&my).copied().unwrap_or(0.0);
    assert!(before > 0.35, "epoch 0 MY ratio {before:.3}");
    assert!(
        after < before / 3.0,
        "after retirement MY should collapse: {after:.3} vs {before:.3}"
    );

    // The trend report names Malaysia as the mover.
    let trends = longitudinal::trends(&epochs, 0.05);
    assert!(
        trends.first().map(|t| t.country) == Some(my),
        "top trend should be MY, got {trends:?}"
    );
    // A control country without changes stays flat.
    let de = inetdb::CountryCode::new("DE");
    let de_before = epochs[0].country_ratios().get(&de).copied();
    let de_after = epochs[1].country_ratios().get(&de).copied();
    if let (Some(x), Some(y)) = (de_before, de_after) {
        assert!((x - y).abs() < 0.1, "DE drifted: {x:.3} → {y:.3}");
    }

    let report = longitudinal::render(&epochs);
    assert!(report.contains("trend: MY"));
}
