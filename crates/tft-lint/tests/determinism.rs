//! Parallel-lint determinism: the rendered `LINT_report.json` must be
//! byte-identical at workers 1, 2, and 8.
//!
//! The engine parallelizes over files with `substrate::pool::par_map`,
//! which returns results in submission order; the merge then sorts
//! diagnostics. This test pins the end-to-end guarantee over the *real*
//! workspace — the largest, most branch-diverse input we have — so any
//! ordering regression (a `HashMap` sneaking into the merge, a worker-id
//! leaking into a message) fails loudly.

use std::path::Path;
use tft_lint::{report_to_json, workspace_files, Engine};

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_files(&root).expect("workspace scan");
    assert!(
        files.len() > 50,
        "workspace scan looks truncated: {} files",
        files.len()
    );

    let render = |workers: usize| {
        let engine = Engine::with_default_passes().with_workers(workers);
        let report = engine.run_files(&files);
        report_to_json(&engine, &report).render_pretty()
    };

    let w1 = render(1);
    let w2 = render(2);
    let w8 = render(8);
    assert_eq!(w1, w2, "workers 1 vs 2 diverge");
    assert_eq!(w1, w8, "workers 1 vs 8 diverge");
}
