//! One bench per table and figure: how fast each analysis + rendering
//! stage regenerates its artifact from a collected dataset, plus the full
//! end-to-end study.
//!
//! The datasets are collected once (outside the timing loops); the benches
//! measure the per-table inference work, which is the part a user re-runs
//! while exploring data.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tft_core::report::{figures, tables};
use tft_core::{analysis, StudyConfig};

struct Fixture {
    run: tft_bench::HarnessRun,
    cfg: StudyConfig,
    world: proxynet::World,
}

fn fixture() -> &'static Fixture {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scale = 0.01;
        let run = tft_bench::run_full(scale, 0xBE7C);
        // A second world for re-running analyses (the run consumed its own).
        let built = worldgen::build(&worldgen::paper_spec(scale, 0xBE7C));
        Fixture {
            run,
            cfg: StudyConfig::scaled(scale),
            world: built.world,
        }
    })
}

fn bench_study(c: &mut Criterion) {
    let mut g = c.benchmark_group("study");
    g.sample_size(10);
    g.bench_function("end_to_end_scale_0.004", |b| {
        b.iter(|| black_box(tft_bench::run_full(0.004, 0xEE)))
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1_coverage", |b| {
        b.iter(|| black_box(tables::table1(&f.run.report)))
    });
    g.bench_function("table2_experiments", |b| {
        b.iter(|| black_box(tables::table2(&f.run.report)))
    });
    g.bench_function("table3_dns_country", |b| {
        b.iter(|| {
            let a = analysis::dns::analyze(&f.run.report.dns_data, &f.world, &f.cfg);
            black_box(tables::table3(&a))
        })
    });
    g.bench_function("table4_isp_dns", |b| {
        b.iter(|| {
            let a = analysis::dns::analyze(&f.run.report.dns_data, &f.world, &f.cfg);
            black_box(tables::table4(&a))
        })
    });
    g.bench_function("table5_google_dns", |b| {
        b.iter(|| {
            let a = analysis::dns::analyze(&f.run.report.dns_data, &f.world, &f.cfg);
            black_box(tables::table5(&a))
        })
    });
    g.bench_function("table6_js_injection", |b| {
        b.iter(|| {
            let a = analysis::http::analyze(&f.run.report.http_data, &f.world, &f.cfg);
            black_box(tables::table6(&a))
        })
    });
    g.bench_function("table7_image", |b| {
        b.iter(|| {
            let a = analysis::http::analyze(&f.run.report.http_data, &f.world, &f.cfg);
            black_box(tables::table7(&a))
        })
    });
    g.bench_function("table8_issuers", |b| {
        b.iter(|| {
            let a = analysis::https::analyze(&f.run.report.https_data, &f.world, &f.cfg);
            black_box(tables::table8(&a))
        })
    });
    g.bench_function("table9_monitors", |b| {
        b.iter(|| {
            let a = analysis::monitor::analyze(&f.run.report.monitor_data, &f.world, &f.cfg);
            black_box(tables::table9(&a))
        })
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("figures");
    g.bench_function("figure5_delay_cdf", |b| {
        b.iter(|| {
            let a = analysis::monitor::analyze(&f.run.report.monitor_data, &f.world, &f.cfg);
            black_box(figures::figure5(&a))
        })
    });
    g.sample_size(20);
    g.bench_function("figures_1_to_4_timelines", |b| {
        b.iter(|| {
            let mut world = figures::demo_world();
            black_box((
                figures::figure1(&mut world),
                figures::figure2(&mut world),
                figures::figure3(&mut world),
                figures::figure4(&mut world),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_study, bench_tables, bench_figures);
criterion_main!(benches);
