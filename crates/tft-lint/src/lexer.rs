//! A small but real Rust lexer.
//!
//! Produces a flat token stream with byte spans and line/column positions —
//! enough structure for the lint passes to distinguish code from comments
//! and string literals (so the literal `"unwrap()"` inside a doc comment
//! never fires a lint), to disambiguate lifetimes from char literals, and
//! to match nesting-aware bracket structure.
//!
//! The lexer is total: it never panics, whatever the input. Unterminated
//! strings and comments simply extend to end-of-file, and bytes that are
//! not valid Rust lexemes become single-character [`TokKind::Punct`]
//! tokens. Both properties are pinned by `substrate::qc` property tests in
//! `tests/prop.rs`.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// Lifetime (`'a`), including the leading quote.
    Lifetime,
    /// Integer literal (suffix included, e.g. `42u64`, `0xC0DE`).
    Int,
    /// Float literal (suffix included).
    Float,
    /// String literal `"…"`, escapes unresolved.
    Str,
    /// Raw string literal `r"…"` / `r#"…"#`.
    RawStr,
    /// Byte-string literal `b"…"` / raw byte string `br#"…"#`.
    ByteStr,
    /// Char literal `'x'`.
    Char,
    /// Byte literal `b'x'`.
    Byte,
    /// Line comment `// …` (doc comments included), newline excluded.
    LineComment,
    /// Block comment `/* … */`, nesting-aware.
    BlockComment,
    /// Any single punctuation character.
    Punct,
}

/// One token: a classification plus its byte span and position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based source line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Character cursor with byte offsets and line/column tracking.
struct Cursor {
    /// `(byte_offset, char)` pairs for the whole input.
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    idx: usize,
    /// Total byte length of the input.
    len: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Cursor {
        Cursor {
            chars: src.char_indices().collect(),
            idx: 0,
            len: src.len(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.idx + ahead).map(|&(_, c)| c)
    }

    /// Byte offset of the current position (input length at EOF).
    fn offset(&self) -> usize {
        self.chars
            .get(self.idx)
            .map(|&(o, _)| o)
            .unwrap_or(self.len)
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.idx)?;
        self.idx += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consume characters while `pred` holds.
    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `src`. Total: returns a token stream for any input.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    loop {
        cur.bump_while(char::is_whitespace);
        let (start, line, col) = (cur.offset(), cur.line, cur.col);
        let Some(c) = cur.peek(0) else {
            break;
        };
        let kind = lex_one(&mut cur, c);
        // Defensive: guarantee forward progress even if a lexer branch
        // consumed nothing, so the loop terminates on any input.
        if cur.offset() == start {
            cur.bump();
        }
        out.push(Token {
            kind,
            start,
            end: cur.offset(),
            line,
            col,
        });
    }
    out
}

/// Lex one token starting at `c`; consumes at least one character.
fn lex_one(cur: &mut Cursor, c: char) -> TokKind {
    match c {
        '/' if cur.peek(1) == Some('/') => {
            cur.bump_while(|c| c != '\n');
            TokKind::LineComment
        }
        '/' if cur.peek(1) == Some('*') => {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            TokKind::BlockComment
        }
        '"' => lex_string(cur),
        '\'' => lex_char_or_lifetime(cur),
        'r' if matches!(cur.peek(1), Some('"') | Some('#')) => {
            lex_raw_or_ident(cur, TokKind::RawStr)
        }
        'b' => lex_b_prefixed(cur),
        _ if c.is_ascii_digit() => lex_number(cur),
        _ if is_ident_start(c) => {
            cur.bump_while(is_ident_continue);
            TokKind::Ident
        }
        _ => {
            cur.bump();
            TokKind::Punct
        }
    }
}

/// A `"…"` string with escapes; unterminated extends to EOF.
fn lex_string(cur: &mut Cursor) -> TokKind {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump();
            }
            Some('"') | None => break,
            Some(_) => {}
        }
    }
    TokKind::Str
}

/// After a leading `'`: either a lifetime (`'a`) or a char literal (`'a'`,
/// `'\n'`). The standard disambiguation: an identifier-shaped body followed
/// by a closing quote is a char literal, otherwise a lifetime.
fn lex_char_or_lifetime(cur: &mut Cursor) -> TokKind {
    cur.bump(); // opening quote
    match cur.peek(0) {
        Some('\\') => {
            // Escape ⇒ definitely a char literal; consume to closing quote.
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek(0) {
                cur.bump();
                if c == '\'' {
                    break;
                }
            }
            TokKind::Char
        }
        Some(c) if is_ident_start(c) => {
            cur.bump_while(is_ident_continue);
            if cur.peek(0) == Some('\'') {
                cur.bump();
                TokKind::Char
            } else {
                TokKind::Lifetime
            }
        }
        Some('\'') => {
            // `''` — empty (invalid Rust, but we must not panic).
            cur.bump();
            TokKind::Char
        }
        Some(_) => {
            // `'+'` etc.: single char then closing quote.
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            TokKind::Char
        }
        None => TokKind::Punct,
    }
}

/// At `r` followed by `"` or `#`: a raw string `r"…"`, `r#"…"#`, a raw
/// identifier `r#ident`, or just the identifier `r`.
fn lex_raw_or_ident(cur: &mut Cursor, kind: TokKind) -> TokKind {
    // Count `#` after the prefix.
    let mut hashes = 0usize;
    while cur.peek(1 + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(1 + hashes) == Some('"') {
        cur.bump(); // r
        for _ in 0..hashes {
            cur.bump();
        }
        cur.bump(); // opening quote
                    // Scan for `"` followed by `hashes` hashes.
        'scan: while let Some(c) = cur.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if cur.peek(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
        kind
    } else if hashes >= 1 && cur.peek(1 + hashes).is_some_and(is_ident_start) {
        // Raw identifier `r#type` (only one `#` is valid; be lenient).
        cur.bump(); // r
        cur.bump(); // #
        cur.bump_while(is_ident_continue);
        TokKind::Ident
    } else {
        cur.bump_while(is_ident_continue);
        TokKind::Ident
    }
}

/// At `b`: byte string `b"…"`, raw byte string `br"…"`, byte literal
/// `b'x'`, or an ordinary identifier starting with `b`.
fn lex_b_prefixed(cur: &mut Cursor) -> TokKind {
    match cur.peek(1) {
        Some('"') => {
            cur.bump(); // b
            lex_string(cur);
            TokKind::ByteStr
        }
        Some('\'') => {
            cur.bump(); // b
            lex_char_or_lifetime(cur);
            TokKind::Byte
        }
        Some('r') if matches!(cur.peek(2), Some('"') | Some('#')) => {
            cur.bump(); // b — the raw-scan helper looks from position 0
            lex_raw_or_ident(cur, TokKind::ByteStr)
        }
        _ => {
            cur.bump_while(is_ident_continue);
            TokKind::Ident
        }
    }
}

/// A numeric literal. `0..10` lexes as Int, Punct, Punct, Int; `1.5` and
/// `1e3` as Float; suffixes (`42u64`) fold into the token.
fn lex_number(cur: &mut Cursor) -> TokKind {
    let mut kind = TokKind::Int;
    if cur.peek(0) == Some('0')
        && matches!(
            cur.peek(1),
            Some('x') | Some('X') | Some('o') | Some('O') | Some('b') | Some('B')
        )
    {
        cur.bump();
        cur.bump();
        cur.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return TokKind::Int;
    }
    cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    // Fractional part: `.` followed by a digit (so `0..10` and `x.0` and
    // tuple access `t.0` stay separate tokens).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        kind = TokKind::Float;
        cur.bump();
        cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e') | Some('E')) {
        let sign = matches!(cur.peek(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            kind = TokKind::Float;
            cur.bump();
            if sign {
                cur.bump();
            }
            cur.bump_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Suffix (`u64`, `f32`, …).
    if cur.peek(0).is_some_and(is_ident_start) {
        let float_suffix = cur.peek(0) == Some('f');
        cur.bump_while(is_ident_continue);
        if float_suffix {
            kind = TokKind::Float;
        }
    }
    kind
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        tokenize(src).iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        tokenize(src)
            .iter()
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                TokKind::Ident,
                TokKind::Ident,
                TokKind::Punct,
                TokKind::Int,
                TokKind::Punct
            ]
        );
        assert_eq!(texts("a.b(c)"), vec!["a", ".", "b", "(", "c", ")"]);
    }

    #[test]
    fn comments_are_single_tokens() {
        assert_eq!(kinds("// has unwrap() inside"), vec![TokKind::LineComment]);
        assert_eq!(
            kinds("/* outer /* nested */ still */ x"),
            vec![TokKind::BlockComment, TokKind::Ident]
        );
        // Unterminated block comment must not loop or panic.
        assert_eq!(kinds("/* open"), vec![TokKind::BlockComment]);
    }

    #[test]
    fn strings_swallow_their_contents() {
        assert_eq!(
            kinds(r#"let s = "unwrap() \" HashMap";"#)
                .iter()
                .filter(|k| **k == TokKind::Str)
                .count(),
            1
        );
        assert_eq!(kinds(r##"r#"raw "quoted" body"#"##), vec![TokKind::RawStr]);
        assert_eq!(kinds(r#"b"bytes""#), vec![TokKind::ByteStr]);
        assert_eq!(kinds("\"unterminated"), vec![TokKind::Str]);
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'"), vec![TokKind::Char]);
        assert_eq!(kinds("'\\n'"), vec![TokKind::Char]);
        assert_eq!(
            kinds("&'a str"),
            vec![TokKind::Punct, TokKind::Lifetime, TokKind::Ident]
        );
        assert_eq!(
            kinds("<'static>"),
            vec![TokKind::Punct, TokKind::Lifetime, TokKind::Punct]
        );
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(kinds("r#type"), vec![TokKind::Ident]);
        assert_eq!(texts("r#type"), vec!["r#type"]);
        assert_eq!(kinds("radius"), vec![TokKind::Ident]);
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            kinds("0..10"),
            vec![TokKind::Int, TokKind::Punct, TokKind::Punct, TokKind::Int]
        );
        assert_eq!(kinds("1.5"), vec![TokKind::Float]);
        assert_eq!(kinds("1e9"), vec![TokKind::Float]);
        assert_eq!(kinds("0xC0DE"), vec![TokKind::Int]);
        assert_eq!(kinds("42u64"), vec![TokKind::Int]);
        assert_eq!(kinds("2f64"), vec![TokKind::Float]);
        assert_eq!(
            kinds("t.0"),
            vec![TokKind::Ident, TokKind::Punct, TokKind::Int]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let toks = tokenize("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn spans_cover_all_non_whitespace() {
        let src = "fn f() { // c\n  \"s\" }";
        let toks = tokenize(src);
        let mut prev_end = 0usize;
        for t in &toks {
            assert!(t.start >= prev_end, "overlap at {t:?}");
            assert!(src
                .get(prev_end..t.start)
                .is_some_and(|gap| gap.chars().all(char::is_whitespace)));
            prev_end = t.end;
        }
        assert!(src
            .get(prev_end..)
            .is_some_and(|gap| gap.chars().all(char::is_whitespace)));
    }
}
