//! # tft-serve — study-as-a-service
//!
//! The serving layer over the reproduction: accept [`worldgen::WorldSpec`]
//! JSON over [`httpwire`], execute studies on [`substrate::pool`] workers,
//! and serve results — deduplicated, cached, and streamed — to simulated
//! clients at scale.
//!
//! - [`cache`]: content-addressed two-tier caching — canonical-JSON spec
//!   hashing ([`cache::StudyKey`]), pristine worlds (tier 1), rendered
//!   reports (tier 2), insertion-order eviction;
//! - [`queue`]: the bounded FIFO admission queue with explicit
//!   backpressure;
//! - [`gateway`]: the HTTP front end — `POST /studies`, incremental
//!   `GET /studies/{id}` over chunked transfer, single-flight dedup,
//!   `429 + Retry-After` when saturated — driven entirely by virtual time;
//! - [`loadgen`]: a deterministic open-loop load generator simulating
//!   thousands of clients, whose response digest pins byte-identical
//!   serving at any worker count.
//!
//! Everything here keeps the workspace determinism contract (DESIGN.md §5):
//! no wall clock, no unordered iteration, all randomness from forked
//! [`netsim::SimRng`] streams. The `tft-lint` passes that enforce those
//! rules cover this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod gateway;
pub mod loadgen;
pub mod queue;

pub use cache::{StudyCache, StudyKey, TierStats};
pub use gateway::{Gateway, GatewayConfig, GatewayStats};
pub use loadgen::{LoadGenConfig, LoadReport};
pub use queue::{BoundedFifo, QueueFull};
