//! End-to-end: build the calibrated world at small scale, run the full
//! four-experiment study, and check the measured results against both the
//! planted ground truth and the paper's qualitative claims.

use tft_core::{render_tables, run_study, score_report, StudyConfig};
use worldgen::{build, paper_spec};

struct Run {
    report: tft_core::StudyReport,
    card: tft_core::ScoreCard,
}

fn study() -> &'static Run {
    use std::sync::OnceLock;
    static RUN: OnceLock<Run> = OnceLock::new();
    RUN.get_or_init(|| {
        let scale = 0.01;
        // At scale 0.01 the planted OPT Benin AS has ~3 nodes, exactly the
        // google-dominant detection threshold, so its visibility depends on
        // which nodes the DNS experiment observes under a given seed. This
        // seed keeps every planted entity above its detection threshold.
        let mut built = build(&paper_spec(scale, 0xE31));
        let cfg = StudyConfig::scaled(scale);
        let report = run_study(&mut built.world, &cfg);
        let card = score_report(&report, &built.truth);
        Run { report, card }
    })
}

#[test]
fn dns_experiment_covers_most_nodes() {
    let r = study();
    assert!(
        r.report.dns.nodes > 3_000,
        "measured {} nodes",
        r.report.dns.nodes
    );
    assert!(r.report.dns.countries >= 50);
}

#[test]
fn dns_hijack_rate_matches_paper_shape() {
    let r = study();
    let rate = r.report.dns.hijacked as f64 / r.report.dns.nodes as f64;
    assert!(
        (0.025..0.085).contains(&rate),
        "hijack rate {rate:.4} (paper 4.8%)"
    );
}

#[test]
fn dns_detection_is_accurate() {
    let r = study();
    assert!(r.card.dns.precision() > 0.99, "{}", r.card.dns);
    assert!(r.card.dns.recall() > 0.95, "{}", r.card.dns);
}

#[test]
fn dns_attribution_is_isp_dominated() {
    let r = study();
    let (isp, public, other) = r.report.dns.attribution.shares();
    assert!(isp > 0.7, "isp {isp:.3} (paper 0.896)");
    assert!(public < 0.2, "public {public:.3} (paper 0.077)");
    assert!(other < 0.2, "other {other:.3} (paper 0.027)");
}

#[test]
fn malaysia_tops_country_table() {
    let r = study();
    let top: Vec<&str> = r
        .report
        .dns
        .by_country
        .iter()
        .take(3)
        .map(|row| row.country.as_str())
        .collect();
    assert!(top.contains(&"MY"), "top-3 countries {top:?}");
}

#[test]
fn named_isp_resolvers_recovered() {
    let r = study();
    let isps: Vec<&str> = r
        .report
        .dns
        .isp_rows
        .iter()
        .map(|x| x.isp.as_str())
        .collect();
    for want in ["TMnet", "Talk Talk", "Verizon"] {
        assert!(isps.contains(&want), "missing {want} in {isps:?}");
    }
}

#[test]
fn http_detects_injection_signatures() {
    let r = study();
    assert!(r.report.http.nodes > 500, "{} nodes", r.report.http.nodes);
    let sigs: Vec<&str> = r
        .report
        .http
        .signatures
        .iter()
        .map(|s| s.signature.as_str())
        .collect();
    assert!(
        sigs.iter().any(|s| s.contains("d36mw5gp02ykm5")),
        "missing cloudfront signature in {sigs:?}"
    );
    assert!(r.card.http_html.precision() > 0.99, "{}", r.card.http_html);
}

#[test]
fn http_detects_image_transcoding_with_ratios() {
    let r = study();
    assert!(
        !r.report.http.image_rows.is_empty(),
        "no transcoding ASes found"
    );
    // Single-ratio carriers report one operating point near the planted
    // value. (Multi-ratio detection needs more nodes per AS than this
    // 0.01-scale world provides; the full harness asserts it.)
    let any_single = r.report.http.image_rows.iter().any(|x| !x.multi_ratio());
    assert!(any_single, "expected single-ratio carriers");
    for row in &r.report.http.image_rows {
        for ratio in &row.ratios {
            assert!((0.2..0.8).contains(ratio), "ratio {ratio} in {row:?}");
        }
    }
    assert!(
        r.card.http_image.precision() > 0.99,
        "{}",
        r.card.http_image
    );
}

#[test]
fn https_recovers_issuer_table() {
    let r = study();
    assert!(
        r.report.https.replaced_nodes > 0,
        "no replaced certificates detected"
    );
    let issuers: Vec<&str> = r
        .report
        .https
        .issuers
        .iter()
        .map(|x| x.issuer.as_str())
        .collect();
    assert!(
        issuers.iter().any(|i| i.contains("Avast")),
        "Avast missing from {issuers:?}"
    );
    // Avast should dominate, as in Table 8.
    assert!(
        r.report.https.issuers[0].issuer.contains("Avast"),
        "top issuer {:?}",
        r.report.https.issuers.first()
    );
    assert!(r.card.https.precision() > 0.99, "{}", r.card.https);
}

#[test]
fn https_interception_is_software_not_network() {
    let r = study();
    assert!(
        r.report.https.ases_over_10pct < 0.1,
        "ASes with >10% replacement: {:.3} (paper: 1.2%)",
        r.report.https.ases_over_10pct
    );
}

#[test]
fn monitoring_entities_recovered_with_signatures() {
    let r = study();
    assert!(
        r.report.monitor.monitored_nodes > 0,
        "no monitoring detected"
    );
    let entities: Vec<&str> = r
        .report
        .monitor
        .entities
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    for want in ["Trend Micro", "Commtouch"] {
        assert!(
            entities.iter().any(|e| e.contains(want)),
            "{want} missing from {entities:?}"
        );
    }
    assert!(r.card.monitor.precision() > 0.99, "{}", r.card.monitor);
}

#[test]
fn monitor_rate_matches_paper_shape() {
    let r = study();
    let rate = r.report.monitor.monitored_nodes as f64 / r.report.monitor.nodes as f64;
    assert!(
        (0.005..0.04).contains(&rate),
        "monitor rate {rate:.4} (paper 1.5%)"
    );
}

#[test]
fn bluecoat_prefetches_and_tiscali_is_isp_level() {
    let r = study();
    if let Some(bluecoat) = r
        .report
        .monitor
        .entities
        .iter()
        .find(|e| e.name.contains("Bluecoat"))
    {
        // 83% of *first* requests precede the user's; with two requests per
        // node that is ~41% of all refetches.
        assert!(
            (0.2..0.7).contains(&bluecoat.prefetch_fraction()),
            "Bluecoat prefetch fraction {:.2} (paper: 0.83 of first requests)",
            bluecoat.prefetch_fraction()
        );
    }
    if let Some(talktalk) = r
        .report
        .monitor
        .entities
        .iter()
        .find(|e| e.name.contains("Talk"))
    {
        assert!(talktalk.isp_level, "TalkTalk should be ISP-level");
        assert!(
            (0.2..0.7).contains(&talktalk.isp_share),
            "TalkTalk share {:.3} (paper 0.452)",
            talktalk.isp_share
        );
    }
}

#[test]
fn shared_js_vendor_family_is_clustered() {
    let r = study();
    // Five ISPs were planted with the shared vendor script (Cox, Oi,
    // TalkTalk, BT, Verizon). The normalizer must cluster them into one
    // family; bespoke hijack pages must not join it.
    let fam = r
        .report
        .dns
        .shared_js_families
        .first()
        .expect("at least one shared family");
    assert!(
        fam.isps.len() >= 4,
        "expected the five-ISP vendor family, got {:?}",
        fam.isps
    );
    for isp in ["Talk Talk", "Verizon", "Cox Communications"] {
        assert!(
            fam.isps.iter().any(|i| i == isp),
            "{isp} missing from family {:?}",
            fam.isps
        );
    }
    assert!(
        !fam.isps.iter().any(|i| i == "TMnet"),
        "TMnet uses bespoke JS and must not join the vendor family"
    );
}

#[test]
fn google_dominant_as_detected() {
    let r = study();
    // OPT Benin was planted with a 99% Google-DNS share (footnote 9).
    assert!(
        r.report
            .dns
            .google_dominant_ases
            .iter()
            .any(|g| g.org == "OPT Benin" && g.google_share > 0.9),
        "OPT Benin missing from {:?}",
        r.report.dns.google_dominant_ases
    );
}

#[test]
fn monitoring_was_discoverable_from_dns_experiment_logs() {
    // The §7.1 origin story: unique d1 probe domains from the DNS
    // experiment already show unexpected extra requests. We can't reach
    // the world's web log from the cached report, so run the scan on a
    // fresh small world.
    let scale = 0.004;
    let mut built = worldgen::build(&worldgen::paper_spec(scale, 0xD15C));
    let cfg = tft_core::StudyConfig::scaled(scale);
    let _ = tft_core::dns_exp::run(&mut built.world, &cfg);
    built.world.run_to_quiescence();
    let scan = tft_core::analysis::monitor::discovery_scan(
        built.world.web_server().log().iter(),
        |host| host.starts_with("d1-"),
    );
    assert!(scan.probe_domains > 500);
    assert!(
        scan.multi_source_domains > 0,
        "monitors should have refetched some d1 probes"
    );
    let rate = scan.multi_source_domains as f64 / scan.probe_domains as f64;
    assert!(
        (0.002..0.06).contains(&rate),
        "discovery rate {rate:.4} (≈ the 1.5% monitoring rate)"
    );
}

#[test]
fn tables_render_without_panic() {
    let r = study();
    let text = render_tables(&r.report);
    for needle in ["Table 1", "Table 3", "Table 7", "Table 9", "hijack rate"] {
        assert!(text.contains(needle), "missing {needle}");
    }
}
