//! Study orchestration: run all four experiments on a world and analyze
//! the results.
//!
//! Execution is sharded and parallel (see [`crate::exec`]): each
//! experiment's population is partitioned by country, every
//! (experiment × shard) pair forks the study-start world snapshot, and all
//! of them drain through **one** work queue on [`substrate::pool`] worker
//! threads — no barrier between experiments. The five analysis passes run
//! concurrently afterwards. Output is byte-identical at any worker count —
//! the worker knob trades wall-clock for cores, nothing else.

use crate::analysis;
use crate::config::StudyConfig;
use crate::exec::{self, ExecOptions, ExpData, Experiment};
use crate::obs::{DnsDataset, HttpDataset, HttpsDataset, MonitorDataset};
use inetdb::{Asn, CountryCode};
use netsim::SimTime;
use proxynet::{EvidenceMark, World, ZId};
use std::collections::BTreeSet;
use substrate::pool::Pool;

/// Everything one full study run produces.
pub struct StudyReport {
    /// DNS experiment raw data.
    pub dns_data: DnsDataset,
    /// DNS analysis.
    pub dns: analysis::dns::DnsAnalysis,
    /// HTTP experiment raw data.
    pub http_data: HttpDataset,
    /// HTTP analysis.
    pub http: analysis::http::HttpAnalysis,
    /// HTTPS experiment raw data.
    pub https_data: HttpsDataset,
    /// HTTPS analysis.
    pub https: analysis::https::HttpsAnalysis,
    /// Monitoring experiment raw data.
    pub monitor_data: MonitorDataset,
    /// Monitoring analysis.
    pub monitor: analysis::monitor::MonitorAnalysis,
    /// Virtual time the study started.
    pub started: SimTime,
    /// Virtual time the study finished.
    pub finished: SimTime,
    /// Unique-node / AS / country tallies across experiments, computed
    /// against the public registry at collection time.
    pub coverage: Coverage,
}

/// Cross-experiment coverage (the Table 1 row).
#[derive(Debug, Default)]
pub struct Coverage {
    /// Unique zIDs across all experiments.
    pub nodes: usize,
    /// Unique exit ASes.
    pub ases: usize,
    /// Unique exit countries.
    pub countries: usize,
}

impl StudyReport {
    /// Unique nodes across experiments.
    pub fn unique_nodes(&self) -> usize {
        self.coverage.nodes
    }

    /// Unique ASes across experiments.
    pub fn unique_ases(&self) -> usize {
        self.coverage.ases
    }

    /// Unique countries across experiments.
    pub fn unique_countries(&self) -> usize {
        self.coverage.countries
    }
}

/// Run the full study: the DNS, HTTP, HTTPS, and monitoring experiments as
/// one overlapping wave (the paper likewise overlapped its measurement
/// windows rather than running the experiments back-to-back), then all
/// analyses.
///
/// ```
/// let mut built = worldgen::build(&worldgen::smoke_spec(7));
/// let cfg = tft_core::StudyConfig {
///     min_nodes_per_country: 5,
///     min_nodes_per_dns_server: 3,
///     ..tft_core::StudyConfig::default()
/// };
/// let report = tft_core::run_study(&mut built.world, &cfg);
/// assert!(report.dns.nodes > 100);
/// assert!(report.dns.hijacked > 0, "the smoke world plants one hijacker");
/// ```
pub fn run_study(world: &mut World, cfg: &StudyConfig) -> StudyReport {
    run_study_with(world, cfg, &ExecOptions::default())
}

/// One analysis pass's output, so heterogeneous passes can share the pool.
enum AnalysisOut {
    Dns(analysis::dns::DnsAnalysis),
    Http(analysis::http::HttpAnalysis),
    Https(analysis::https::HttpsAnalysis),
    Monitor(analysis::monitor::MonitorAnalysis),
    Coverage(Coverage),
}

/// [`run_study`] with explicit execution options (worker count).
///
/// The report is byte-identical for any `exec.workers`: shards and their
/// seeds are fixed by the campaign plan, and results merge in canonical
/// order regardless of which worker ran what when.
pub fn run_study_with(
    world: &mut World,
    cfg: &StudyConfig,
    exec_opts: &ExecOptions,
) -> StudyReport {
    let started = world.now();
    let workers = exec_opts.workers;

    // Fork point for every shard of every experiment: the study-start
    // snapshot. The clone is cheap (shared-`Arc` world, see
    // [`proxynet::World`]); `mark` is where absorbed shard evidence starts.
    let base = world.clone();
    let mark = world.evidence_mark();
    let mut waves = exec::run_wave(
        world,
        &base,
        &mark,
        cfg,
        workers,
        &[
            Experiment::Dns,
            Experiment::Http,
            Experiment::Https,
            Experiment::Monitor,
        ],
        false,
        None,
    )
    .into_iter();
    let (
        Some(ExpData::Dns(dns_data)),
        Some(ExpData::Http(http_data)),
        Some(ExpData::Https(https_data)),
        Some(ExpData::Monitor(monitor_data)),
    ) = (waves.next(), waves.next(), waves.next(), waves.next())
    else {
        unreachable!("run_wave returns one dataset per requested experiment, in order");
    };

    analyze_into_report(
        world,
        cfg,
        workers,
        started,
        dns_data,
        http_data,
        https_data,
        monitor_data,
    )
}

/// The shared back half of a study: run all analysis passes over the four
/// merged datasets and assemble the report. Both [`run_study_with`] and
/// [`StudyDriver`] end here, so the two entry points cannot drift.
#[allow(clippy::too_many_arguments)]
fn analyze_into_report(
    world: &World,
    cfg: &StudyConfig,
    workers: usize,
    started: SimTime,
    dns_data: DnsDataset,
    http_data: HttpDataset,
    https_data: HttpsDataset,
    monitor_data: MonitorDataset,
) -> StudyReport {
    // All four analysis passes (plus the coverage tally) are read-only over
    // the merged datasets and the world; run them concurrently. Pool::run
    // clamps workers to the task count itself and returns in index order,
    // so destructuring below is deterministic.
    let mut outs = Pool::new(workers).run(vec![0usize, 1, 2, 3, 4], |_, which| match which {
        0 => AnalysisOut::Dns(analysis::dns::analyze(&dns_data, world, cfg)),
        1 => AnalysisOut::Http(analysis::http::analyze(&http_data, world, cfg)),
        2 => AnalysisOut::Https(analysis::https::analyze(&https_data, world, cfg)),
        3 => AnalysisOut::Monitor(analysis::monitor::analyze(&monitor_data, world, cfg)),
        _ => AnalysisOut::Coverage(coverage(
            world,
            &dns_data,
            &http_data,
            &https_data,
            &monitor_data,
        )),
    });
    let (
        Some(AnalysisOut::Coverage(coverage)),
        Some(AnalysisOut::Monitor(monitor)),
        Some(AnalysisOut::Https(https)),
        Some(AnalysisOut::Http(http)),
        Some(AnalysisOut::Dns(dns)),
    ) = (outs.pop(), outs.pop(), outs.pop(), outs.pop(), outs.pop())
    else {
        unreachable!("Pool::run returns results in index order");
    };

    StudyReport {
        dns_data,
        dns,
        http_data,
        http,
        https_data,
        https,
        monitor_data,
        monitor,
        started,
        finished: world.now(),
        coverage,
    }
}

/// The stages of a study, in the order [`StudyDriver::step`] runs them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StudyStage {
    /// The d₁/d₂ NXDOMAIN experiment.
    Dns,
    /// The four-object content-comparison experiment.
    Http,
    /// The two-phase CONNECT certificate experiment.
    Https,
    /// The unique-domain refetch experiment.
    Monitor,
    /// All analysis passes plus the coverage tally.
    Analyze,
    /// Nothing left to run; the report is available.
    Done,
}

impl StudyStage {
    /// A stable lowercase label for progress output.
    pub fn label(self) -> &'static str {
        match self {
            StudyStage::Dns => "dns",
            StudyStage::Http => "http",
            StudyStage::Https => "https",
            StudyStage::Monitor => "monitor",
            StudyStage::Analyze => "analyze",
            StudyStage::Done => "done",
        }
    }
}

/// [`run_study_with`], resumable one stage at a time.
///
/// A server that wants to stream progress while a study runs cannot call
/// [`run_study_with`] — it blocks until the whole study finishes. The driver
/// owns the world and exposes the same pipeline as an explicit state
/// machine: each [`step`](StudyDriver::step) runs exactly one stage
/// (experiment or analysis), and after the last one the report is ready.
/// Stepping through all stages produces a report **byte-identical** to
/// [`run_study_with`] at the same worker count — every stage forks its
/// shards from the same study-start snapshot the batch path uses and
/// absorbs them in the same canonical order, so splitting the wave across
/// steps cannot change a byte. The equivalence is pinned by a test.
pub struct StudyDriver {
    pub(crate) world: World,
    /// The study-start snapshot every stage's shards fork from — the same
    /// fork point [`run_study_with`]'s single wave uses.
    pub(crate) base: World,
    /// Evidence high-water mark at study start, for shard absorption.
    pub(crate) mark: EvidenceMark,
    pub(crate) cfg: StudyConfig,
    pub(crate) workers: usize,
    pub(crate) started: SimTime,
    pub(crate) next: StudyStage,
    pub(crate) dns_data: Option<DnsDataset>,
    pub(crate) http_data: Option<HttpDataset>,
    pub(crate) https_data: Option<HttpsDataset>,
    pub(crate) monitor_data: Option<MonitorDataset>,
    pub(crate) report: Option<StudyReport>,
    /// Supervised-execution policy for stage waves; `None` runs stages
    /// unsupervised (a task panic unwinds, the historical behaviour).
    pub(crate) fault: Option<substrate::pool::FaultPolicy>,
}

impl StudyDriver {
    /// Start a driver over `world`. No work happens until
    /// [`step`](StudyDriver::step) is called.
    pub fn new(world: World, cfg: StudyConfig, exec_opts: &ExecOptions) -> StudyDriver {
        let started = world.now();
        let base = world.clone();
        let mark = world.evidence_mark();
        StudyDriver {
            world,
            base,
            mark,
            cfg,
            workers: exec_opts.workers,
            started,
            next: StudyStage::Dns,
            dns_data: None,
            http_data: None,
            https_data: None,
            monitor_data: None,
            report: None,
            fault: None,
        }
    }

    /// Run stage waves under supervision: per-task panics are contained and
    /// retried per `policy` instead of unwinding (see
    /// [`substrate::pool::Pool::run_supervised`]). Retries re-fork their
    /// shard from the study-start snapshot, so a stage where a shard
    /// succeeded on retry `k` is byte-identical to a fault-free stage.
    pub fn set_fault_policy(&mut self, policy: substrate::pool::FaultPolicy) {
        self.fault = Some(policy);
    }

    /// The stage the next [`step`](StudyDriver::step) will run, or
    /// [`StudyStage::Done`] if the study is complete.
    pub fn next_stage(&self) -> StudyStage {
        self.next
    }

    /// Whether every stage has run and the report is available.
    pub fn is_done(&self) -> bool {
        self.next == StudyStage::Done
    }

    /// Run the next pending stage and return it. Returns
    /// [`StudyStage::Done`] (running nothing) once the study is complete.
    pub fn step(&mut self) -> StudyStage {
        let stage = self.next;
        match stage {
            StudyStage::Dns => {
                let ExpData::Dns(d) = self.run_stage(Experiment::Dns) else {
                    unreachable!("run_wave returns the requested experiment");
                };
                self.dns_data = Some(d);
                self.next = StudyStage::Http;
            }
            StudyStage::Http => {
                let ExpData::Http(d) = self.run_stage(Experiment::Http) else {
                    unreachable!("run_wave returns the requested experiment");
                };
                self.http_data = Some(d);
                self.next = StudyStage::Https;
            }
            StudyStage::Https => {
                let ExpData::Https(d) = self.run_stage(Experiment::Https) else {
                    unreachable!("run_wave returns the requested experiment");
                };
                self.https_data = Some(d);
                self.next = StudyStage::Monitor;
            }
            StudyStage::Monitor => {
                let ExpData::Monitor(d) = self.run_stage(Experiment::Monitor) else {
                    unreachable!("run_wave returns the requested experiment");
                };
                self.monitor_data = Some(d);
                self.next = StudyStage::Analyze;
            }
            StudyStage::Analyze => {
                let (Some(dns), Some(http), Some(https), Some(monitor)) = (
                    self.dns_data.take(),
                    self.http_data.take(),
                    self.https_data.take(),
                    self.monitor_data.take(),
                ) else {
                    unreachable!("experiment stages run before Analyze");
                };
                self.report = Some(analyze_into_report(
                    &self.world,
                    &self.cfg,
                    self.workers,
                    self.started,
                    dns,
                    http,
                    https,
                    monitor,
                ));
                self.next = StudyStage::Done;
            }
            StudyStage::Done => {}
        }
        stage
    }

    /// Run one experiment as a single-entry wave: shards fork from the
    /// study-start snapshot and absorb into the live world exactly as the
    /// batch path's combined wave would.
    fn run_stage(&mut self, exp: Experiment) -> ExpData {
        exec::run_wave(
            &mut self.world,
            &self.base,
            &self.mark,
            &self.cfg,
            self.workers,
            &[exp],
            false,
            self.fault.as_ref(),
        )
        .pop()
        .expect("run_wave returns one dataset per requested experiment")
    }

    /// Run every remaining stage.
    pub fn run_to_completion(&mut self) {
        while !self.is_done() {
            self.step();
        }
    }

    /// The finished report, once [`is_done`](StudyDriver::is_done).
    pub fn report(&self) -> Option<&StudyReport> {
        self.report.as_ref()
    }

    /// Read-only access to the driven world (e.g. for billing queries).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Consume the driver, returning the report and the mutated world.
    ///
    /// # Panics
    /// Panics if the study has not run to completion — callers must drain
    /// [`step`](StudyDriver::step) (or call
    /// [`run_to_completion`](StudyDriver::run_to_completion)) first.
    pub fn into_parts(self) -> (StudyReport, World) {
        let report = self
            .report
            .expect("StudyDriver::into_parts before the study completed");
        (report, self.world)
    }
}

/// Unique-node / AS / country tallies across all four datasets.
fn coverage(
    world: &World,
    dns_data: &DnsDataset,
    http_data: &HttpDataset,
    https_data: &HttpsDataset,
    monitor_data: &MonitorDataset,
) -> Coverage {
    let mut zids: BTreeSet<ZId> = BTreeSet::new();
    let mut ases: BTreeSet<Asn> = BTreeSet::new();
    let mut countries: BTreeSet<CountryCode> = BTreeSet::new();
    let add_ip = |ip: std::net::Ipv4Addr,
                  ases: &mut BTreeSet<Asn>,
                  countries: &mut BTreeSet<CountryCode>| {
        if let Some(a) = world.registry.ip_to_asn(ip) {
            ases.insert(a);
        }
        if let Some(c) = world.registry.country_of_ip(ip) {
            countries.insert(c);
        }
    };
    for o in &dns_data.observations {
        zids.insert(o.zid);
        add_ip(o.node_ip, &mut ases, &mut countries);
    }
    for o in &http_data.observations {
        zids.insert(o.zid);
        add_ip(o.node_ip, &mut ases, &mut countries);
    }
    for o in &https_data.observations {
        zids.insert(o.zid);
        add_ip(o.exit_ip, &mut ases, &mut countries);
    }
    for o in &monitor_data.observations {
        zids.insert(o.zid);
        add_ip(o.reported_exit_ip, &mut ases, &mut countries);
    }
    Coverage {
        nodes: zids.len(),
        ases: ases.len(),
        countries: countries.len(),
    }
}

/// Render every table into one report string.
pub fn render_tables(report: &StudyReport) -> String {
    use crate::report::tables;
    let mut s = String::new();
    s.push_str(&tables::table1(report));
    s.push_str(&tables::table2(report));
    s.push_str(&tables::table3(&report.dns));
    s.push_str(&tables::table4(&report.dns));
    s.push_str(&tables::table5(&report.dns));
    s.push_str(&tables::table6(&report.http));
    s.push_str(&tables::table7(&report.http));
    s.push_str(&tables::table8(&report.https));
    s.push_str(&tables::table9(&report.monitor));
    s
}
