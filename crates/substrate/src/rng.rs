//! Deterministic randomness: splitmix64 seeding, a xoshiro256++ core, and
//! the `Rng`/`RngExt` trait pair the workspace samples through.
//!
//! The generator algorithms are the public-domain constructions of Blackman
//! and Vigna. Two properties matter here more than statistical exotica:
//!
//! 1. **Stability.** The output stream for a given seed is part of this
//!    workspace's compatibility contract — regression tests pin golden
//!    values against it. Never change the constants.
//! 2. **Cheap seeding.** `netsim::SimRng` derives thousands of child
//!    generators by hashing `(seed, label)`; splitmix64 turns any `u64`
//!    (including pathological ones like 0 or 1) into a well-spread
//!    xoshiro256++ state.

use std::ops::{Bound, RangeBounds};

/// A splitmix64 generator: one `u64` of state, one multiply-xor-shift chain
/// per output. Used to expand seeds into [`Xoshiro256pp`] state and as the
/// mixing primitive for label-keyed forking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produce the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }
}

/// The splitmix64 finalizer: a full-avalanche bijection on `u64`.
pub fn mix64(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++: 256 bits of state, 64 bits out per step, period 2^256−1.
///
/// This is the workspace's only general-purpose generator; everything
/// random ultimately draws from one of these, seeded through splitmix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expand a `u64` seed into a full state via four splitmix64 outputs.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is the one fixed point; splitmix64 cannot
        // produce four consecutive zeros, but guard against future callers
        // constructing state directly.
        debug_assert!(s.iter().any(|&w| w != 0));
        Xoshiro256pp { s }
    }

    /// Advance and return the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The core random source interface: raw 32/64-bit words and byte fill.
///
/// Mirrors the shape of the `rand` crate's core trait so call sites read
/// idiomatically; all sampling conveniences live on [`RngExt`].
pub trait Rng {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u32(&mut self) -> u32 {
        // Upper bits: xoshiro's low bits are its weakest.
        (Xoshiro256pp::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        Xoshiro256pp::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An unbiased draw in `[0, bound)` via Lemire's widening-multiply method.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "bounded_u64 with zero bound");
    let mut m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
    let mut low = m as u64;
    if low < bound {
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A type that can be sampled uniformly over its whole domain
/// (`rng.random::<T>()`).
pub trait Sample: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_from_u64 {
    ($($t:ty),+) => {$(
        impl Sample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_sample_from_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}
impl Sample for i128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}
impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}
impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A scalar that supports uniform sampling over an arbitrary sub-range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi]` (both ends inclusive).
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The largest representable value (used to translate `lo..` ranges).
    const DOMAIN_MAX: Self;
    /// Step `hi` down by one unit for exclusive upper bounds. Returns `None`
    /// if the resulting range would be empty.
    fn step_down(hi: Self) -> Option<Self>;
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                // Work in i128 so every 64-bit signed/unsigned span fits.
                let span = (hi as i128) - (lo as i128) + 1;
                if span > u64::MAX as i128 {
                    // Only possible for a full 64-bit domain: raw draw.
                    return rng.next_u64() as $t;
                }
                let r = bounded_u64(rng, span as u64);
                ((lo as i128) + r as i128) as $t
            }
            const DOMAIN_MAX: Self = <$t>::MAX;
            fn step_down(hi: Self) -> Option<Self> {
                hi.checked_sub(1)
            }
        }
    )+};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        assert!(lo.is_finite() && hi.is_finite(), "non-finite range bound");
        let u = f64::sample(rng);
        // lo + u*(hi-lo); clamp guards the rare rounding overshoot.
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
    const DOMAIN_MAX: Self = f64::MAX;
    fn step_down(hi: Self) -> Option<Self> {
        // `lo..hi` on floats excludes `hi` with probability ~1 already; the
        // uniform draw in [0,1) cannot produce u == 1.
        Some(hi)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
    const DOMAIN_MAX: Self = f32::MAX;
    fn step_down(hi: Self) -> Option<Self> {
        Some(hi)
    }
}

/// A range argument accepted by [`RngExt::random_range`]: `lo..hi`,
/// `lo..=hi`, or `lo..` over any [`SampleUniform`] scalar.
pub trait SampleRange<T> {
    /// Draw a uniform value from this range. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let hi = T::step_down(self.end).expect("cannot sample empty range");
        T::sample_inclusive(rng, self.start, hi)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeFrom<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, T::DOMAIN_MAX)
    }
}

/// Sampling conveniences over any [`Rng`]; blanket-implemented.
pub trait RngExt: Rng {
    /// A uniform draw over `T`'s whole domain (`f64`/`f32`: `[0,1)`).
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range` (`lo..hi`, `lo..=hi`, or `lo..`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = bounded_u64(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[bounded_u64(self, slice.len() as u64) as usize])
        }
    }

    /// An element chosen with probability proportional to `weight(item)`.
    /// Returns `None` if the slice is empty or all weights are zero.
    fn choose_weighted<'a, T>(
        &mut self,
        slice: &'a [T],
        weight: impl Fn(&T) -> u64,
    ) -> Option<&'a T> {
        let total: u64 = slice.iter().map(&weight).sum();
        if total == 0 {
            return None;
        }
        let mut x = bounded_u64(self, total);
        for item in slice {
            let w = weight(item);
            if x < w {
                return Some(item);
            }
            x -= w;
        }
        unreachable!("weights summed to total")
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Normalize any `RangeBounds<usize>` into concrete `[lo, hi]` inclusive
/// bounds (used by `qc` collection generators).
pub(crate) fn usize_bounds(r: &impl RangeBounds<usize>, unbounded_hi: usize) -> (usize, usize) {
    let lo = match r.start_bound() {
        Bound::Included(&n) => n,
        Bound::Excluded(&n) => n + 1,
        Bound::Unbounded => 0,
    };
    let hi = match r.end_bound() {
        Bound::Included(&n) => n,
        Bound::Excluded(&n) => n.saturating_sub(1),
        Bound::Unbounded => unbounded_hi,
    };
    assert!(lo <= hi, "empty length range");
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn xoshiro_is_deterministic_and_distinct_by_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let av: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(bounded_u64(&mut r, bound) < bound);
            }
        }
    }

    #[test]
    fn range_forms_all_work() {
        let mut r = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..500 {
            let a: u32 = r.random_range(10..20);
            assert!((10..20).contains(&a));
            let b: u8 = r.random_range(1..=255);
            assert!(b >= 1);
            let c: u16 = r.random_range(5..);
            assert!(c >= 5);
            let d: i64 = r.random_range(-50..=50);
            assert!((-50..=50).contains(&d));
            let e: f64 = r.random_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&e));
            let f: f64 = r.random_range(2.0..=3.0);
            assert!((2.0..=3.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Xoshiro256pp::seed_from_u64(1);
        let _: u32 = r.random_range(5..5);
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = Xoshiro256pp::seed_from_u64(4);
        for _ in 0..100 {
            assert!(!r.random_bool(0.0));
            assert!(r.random_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256pp::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes");
    }

    #[test]
    fn choose_and_weighted_choose() {
        let mut r = Xoshiro256pp::seed_from_u64(6);
        assert_eq!(r.choose::<u8>(&[]), None);
        assert_eq!(r.choose(&[9]), Some(&9));
        let items = [("a", 0u64), ("b", 5), ("c", 0)];
        for _ in 0..50 {
            let picked = r.choose_weighted(&items, |(_, w)| *w).unwrap();
            assert_eq!(picked.0, "b");
        }
        assert!(r.choose_weighted(&items, |_| 0).is_none());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Xoshiro256pp::seed_from_u64(8);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "64 zero bits is ~2^-64");
            }
        }
    }
}
