//! `tft-lint` — first-party static analysis for the workspace.
//!
//! A zero-dependency lint engine enforcing the invariants the reproduction's
//! guarantees rest on: determinism (no wall clock, no unordered iteration
//! into rendered output, disciplined seeding), panic-safety in the wire
//! parsers, and hermetic path-only manifests. See `DESIGN.md` ("The lint
//! layer") for the pass list, the allow syntax, and how to add a pass.
//!
//! ```text
//! cargo run -p tft-lint            # human diagnostics, exit 1 if any
//! cargo run -p tft-lint -- --json  # machine-readable report on stdout
//! ```

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod passes;
pub mod symbols;

pub use baseline::{Baseline, BaselineEntry};
pub use engine::{
    parse_allows, workspace_files, Allow, Analysis, Diagnostic, Engine, FileKind, Pass, Report,
    SourceFile,
};

use substrate::json::Json;

/// Render a lint [`Report`] as the `LINT_report.json` document.
pub fn report_to_json(engine: &Engine, report: &Report) -> Json {
    let passes = engine
        .passes()
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("id".into(), Json::str(p.id())),
                ("description".into(), Json::str(p.description())),
            ])
        })
        .collect();
    let diagnostics = report
        .diagnostics
        .iter()
        .map(|d| {
            Json::Obj(vec![
                ("pass".into(), Json::str(d.pass.as_str())),
                ("file".into(), Json::str(d.file.as_str())),
                ("line".into(), Json::uint(u64::from(d.line))),
                ("col".into(), Json::uint(u64::from(d.col))),
                ("message".into(), Json::str(d.message.as_str())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("tool".into(), Json::str("tft-lint")),
        ("version".into(), Json::uint(2)),
        ("clean".into(), Json::Bool(report.is_clean())),
        (
            "files_scanned".into(),
            Json::uint(report.files_scanned as u64),
        ),
        ("suppressed".into(), Json::uint(report.suppressed as u64)),
        ("baselined".into(), Json::uint(report.baselined as u64)),
        ("passes".into(), Json::Arr(passes)),
        ("diagnostics".into(), Json::Arr(diagnostics)),
    ])
}
