//! Guard: the workspace must stay hermetic — every dependency in every
//! `Cargo.toml` is a path dependency (directly or via `workspace = true`),
//! never a registry or git dependency. The build must succeed with zero
//! network access.

use std::path::{Path, PathBuf};

/// Collect every Cargo.toml in the workspace (root + crates/*).
fn manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    for entry in std::fs::read_dir(root.join("crates")).expect("crates/ exists") {
        let dir = entry.expect("readable entry").path();
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    assert!(
        out.len() >= 12,
        "expected >= 12 manifests, found {}",
        out.len()
    );
    out
}

/// The dependency-ish sections whose entries we must audit.
fn is_dep_section(header: &str) -> bool {
    let h = header.trim_start_matches('[').trim_end_matches(']').trim();
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.starts_with("target.") && h.ends_with("dependencies")
}

#[test]
fn every_dependency_is_a_path_dependency() {
    let mut violations = Vec::new();
    for manifest in manifests() {
        let text = std::fs::read_to_string(&manifest).expect("readable manifest");
        let mut in_dep_section = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_dep_section = is_dep_section(line);
                continue;
            }
            if !in_dep_section {
                continue;
            }
            // Each entry must be `name = { path = ... }`, `name.workspace = true`,
            // or `name = { workspace = true }`. Registry (`version =`) and
            // `git =` forms are forbidden.
            let ok = line.contains("path =")
                || line.contains("path=")
                || line.contains("workspace = true")
                || line.contains("workspace=true");
            let forbidden = line.contains("version =")
                || line.contains("version=")
                || line.contains("git =")
                || line.contains("git=")
                || line.contains("registry");
            if !ok || forbidden {
                violations.push(format!(
                    "{}:{}: `{}`",
                    manifest.display(),
                    lineno + 1,
                    raw.trim()
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependency declarations (must be path-only):\n{}",
        violations.join("\n")
    );
}

#[test]
fn no_proptest_regression_artifacts() {
    // proptest is gone; its regression files would be dead weight that
    // suggests the old framework is still in use.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut found = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "proptest-regressions")
                || p.to_string_lossy().ends_with(".proptest-regressions")
            {
                found.push(p);
            }
        }
    }
    assert!(found.is_empty(), "stale proptest artifacts: {found:?}");
}
