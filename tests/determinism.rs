//! Workspace invariant: the entire stack — world construction, four
//! experiments, analysis, rendering — is a pure function of (spec, seed).

use tft::prelude::*;

fn run_once(seed: u64) -> (String, usize, u64) {
    let mut built = build(&paper_spec(0.004, seed));
    let cfg = StudyConfig::scaled(0.004);
    let report = run_study(&mut built.world, &cfg);
    (
        render_tables(&report),
        report.unique_nodes(),
        built.world.bytes_billed(&cfg.customer),
    )
}

#[test]
fn identical_seeds_produce_identical_reports() {
    let a = run_once(0xD00D);
    let b = run_once(0xD00D);
    assert_eq!(a.1, b.1, "node counts differ");
    assert_eq!(a.2, b.2, "billing differs");
    assert_eq!(a.0, b.0, "rendered tables differ");
}

#[test]
fn different_seeds_produce_different_measurements() {
    let a = run_once(1);
    let b = run_once(2);
    assert_ne!(a.0, b.0, "different seeds should not collide");
}

/// The parallel executor's core invariant: worker count is a pure
/// throughput knob. The rendered tables, data-quality annex, node counts,
/// and billing must be byte-identical whether the study's wave runs on 1
/// worker or 32 — including counts far beyond the machine's cores and
/// beyond the 32 tasks of a full four-experiment wave.
#[test]
fn worker_count_never_changes_output() {
    let run_with_workers = |workers: usize| {
        let mut built = build(&paper_spec(0.004, 0x51AB));
        let cfg = StudyConfig::scaled(0.004);
        let report = run_study_with(&mut built.world, &cfg, &ExecOptions::with_workers(workers));
        (
            render_tables(&report),
            render_annex(&report, &cfg),
            report.unique_nodes(),
            built.world.bytes_billed(&cfg.customer),
            built.world.auth_server().log().len(),
            built.world.web_server().log().len(),
        )
    };
    let w1 = run_with_workers(1);
    for workers in [2usize, 8, 16, 32] {
        let w = run_with_workers(workers);
        assert_eq!(w1, w, "workers=1 vs workers={workers} diverged");
    }
}

/// Chaos does not erode determinism: a scripted fault campaign (regional
/// outage + flapping ISP + global noise), retry backoff, and circuit
/// breakers all replay byte-identically at any worker count — tables,
/// data-quality annex, billing, and server logs included.
#[test]
fn chaos_campaign_replays_identically_across_worker_counts() {
    use tft::netsim::SimDuration;
    use tft::proxynet::{CircuitBreakerConfig, RetryPolicy};

    let run_with_workers = |workers: usize| {
        let mut built = build(&worldgen::chaos_campaign_spec(0.004, 0xCA05));
        built.world.set_retry_policy(RetryPolicy::exponential(
            SimDuration::from_millis(250),
            SimDuration::from_secs(4),
        ));
        built.world.set_circuit_breaker(
            Some(CircuitBreakerConfig {
                failure_threshold: 5,
                cooldown: SimDuration::from_secs(60),
            }),
            None,
        );
        let cfg = StudyConfig::scaled(0.004);
        let report = run_study_with(&mut built.world, &cfg, &ExecOptions::with_workers(workers));
        (
            render_tables(&report),
            render_annex(&report, &cfg),
            report.unique_nodes(),
            built.world.bytes_billed(&cfg.customer),
            built.world.auth_server().log().len(),
            built.world.web_server().log().len(),
        )
    };
    let w1 = run_with_workers(1);
    for workers in [2usize, 8, 16] {
        let w = run_with_workers(workers);
        assert_eq!(w1, w, "chaos workers=1 vs workers={workers} diverged");
    }
}
