//! Lint engine bench: the full workspace analysis (scan → parse → symbol
//! table → call graph → passes) at workers ∈ {1, 2, 8}.
//!
//! Two jobs in one binary, mirroring the serve bench:
//!
//! 1. **Regression gate** — the rendered `LINT_report.json` must be
//!    byte-identical at every worker count (the same guarantee
//!    `tft-lint`'s own `tests/determinism.rs` pins; asserting it here too
//!    means a violation fails the bench stage even if someone skips the
//!    test suite).
//! 2. **Trajectory** — wall-clock per full workspace lint, per worker
//!    count, written as `BENCH_lint.json` and archived across PRs. The
//!    call-graph engine made the lint meaningfully heavier than the v1
//!    per-file passes; this is where we watch that cost.
//!
//! The filesystem scan is hoisted out of the timed body: the bench
//! measures analysis, not directory walking.

use std::hint::black_box;
use std::path::Path;
use substrate::bench::Harness;
use substrate::json::Json;
use tft_lint::{report_to_json, workspace_files, Engine};

fn main() {
    let mut h = Harness::new("lint");
    // crates/bench → crates → workspace root
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_files(&root).expect("workspace scan");
    assert!(
        files.len() > 50,
        "workspace scan looks truncated: {} files",
        files.len()
    );

    let render = |workers: usize| {
        let engine = Engine::with_default_passes().with_workers(workers);
        let report = engine.run_files(&files);
        report_to_json(&engine, &report).render_pretty()
    };

    let worker_counts = [1usize, 2, 8];
    let baseline = render(1);
    for &w in &worker_counts[1..] {
        assert_eq!(
            render(w),
            baseline,
            "LINT_report.json diverged at workers={w} — parallel lint is no \
             longer deterministic"
        );
    }
    eprintln!(
        "[lint] report byte-identical at workers {worker_counts:?} \
         ({} files)",
        files.len()
    );

    for workers in worker_counts {
        h.bench(&format!("workspace/workers{workers}"), || {
            black_box(render(workers).len())
        });
    }
    h.note("files_scanned", Json::uint(files.len() as u64));
    h.finish();
}
