//! Attribution analyses over the four datasets — the inference half of the
//! paper's contribution.

pub mod dns;
pub mod http;
pub mod https;
pub mod monitor;
pub mod smtp;
