//! The super proxy's session table: `-session-N` pins requests to one exit
//! node for 60 seconds after last use (§2.3).

use crate::node::NodeId;
use netsim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Session-stickiness window.
pub const SESSION_TTL: SimDuration = SimDuration::from_secs(60);

#[derive(Debug, Clone, Copy)]
struct SessionEntry {
    node: NodeId,
    last_used: SimTime,
}

/// Session table keyed by `(customer, session id)`.
#[derive(Debug, Clone)]
pub struct SessionTable {
    entries: HashMap<(String, u64), SessionEntry>,
    ttl: SimDuration,
}

impl Default for SessionTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionTable {
    /// An empty table with the service's standard 60 s stickiness.
    pub fn new() -> Self {
        SessionTable {
            entries: HashMap::new(),
            ttl: SESSION_TTL,
        }
    }

    /// Override the stickiness window (0 disables sessions entirely — the
    /// ablation knob; the d1/d2 methodology depends on stickiness).
    pub fn set_ttl(&mut self, ttl: SimDuration) {
        self.ttl = ttl;
    }

    /// The node pinned for this session, if the pin is still fresh.
    pub fn lookup(&self, customer: &str, session: u64, now: SimTime) -> Option<NodeId> {
        if self.ttl.is_zero() {
            return None;
        }
        self.entries
            .get(&(customer.to_string(), session))
            .filter(|e| now.since(e.last_used) <= self.ttl)
            .map(|e| e.node)
    }

    /// Record that this session used `node` at `now` (refreshes the TTL).
    pub fn touch(&mut self, customer: &str, session: u64, node: NodeId, now: SimTime) {
        self.entries.insert(
            (customer.to_string(), session),
            SessionEntry {
                node,
                last_used: now,
            },
        );
    }

    /// Drop expired entries (housekeeping; correctness never depends on it).
    pub fn sweep(&mut self, now: SimTime) {
        let ttl = self.ttl;
        self.entries.retain(|_, e| now.since(e.last_used) <= ttl);
    }

    /// Number of live entries (including not-yet-swept expired ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_pin_is_returned() {
        let mut t = SessionTable::new();
        t.touch("c", 429, NodeId(7), SimTime::EPOCH);
        assert_eq!(
            t.lookup("c", 429, SimTime::EPOCH + SimDuration::from_secs(59)),
            Some(NodeId(7))
        );
    }

    #[test]
    fn pin_expires_after_sixty_seconds() {
        let mut t = SessionTable::new();
        t.touch("c", 429, NodeId(7), SimTime::EPOCH);
        assert_eq!(
            t.lookup("c", 429, SimTime::EPOCH + SimDuration::from_secs(61)),
            None
        );
    }

    #[test]
    fn touch_refreshes_ttl() {
        let mut t = SessionTable::new();
        t.touch("c", 1, NodeId(3), SimTime::EPOCH);
        let mid = SimTime::EPOCH + SimDuration::from_secs(50);
        t.touch("c", 1, NodeId(3), mid);
        assert_eq!(
            t.lookup("c", 1, mid + SimDuration::from_secs(50)),
            Some(NodeId(3))
        );
    }

    #[test]
    fn sessions_are_scoped_per_customer_and_id() {
        let mut t = SessionTable::new();
        t.touch("alice", 1, NodeId(1), SimTime::EPOCH);
        t.touch("bob", 1, NodeId(2), SimTime::EPOCH);
        t.touch("alice", 2, NodeId(3), SimTime::EPOCH);
        assert_eq!(t.lookup("alice", 1, SimTime::EPOCH), Some(NodeId(1)));
        assert_eq!(t.lookup("bob", 1, SimTime::EPOCH), Some(NodeId(2)));
        assert_eq!(t.lookup("alice", 2, SimTime::EPOCH), Some(NodeId(3)));
        assert_eq!(t.lookup("alice", 3, SimTime::EPOCH), None);
    }

    #[test]
    fn sweep_drops_expired() {
        let mut t = SessionTable::new();
        t.touch("c", 1, NodeId(1), SimTime::EPOCH);
        t.touch(
            "c",
            2,
            NodeId(2),
            SimTime::EPOCH + SimDuration::from_secs(90),
        );
        t.sweep(SimTime::EPOCH + SimDuration::from_secs(100));
        assert_eq!(t.len(), 1);
    }
}
