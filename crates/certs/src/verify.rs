//! Chain validation — the `openssl verify` step of §6.1.
//!
//! For the *popular* and *international* site classes the paper validates
//! the presented chain against a root store (an exact-match check is
//! impossible because CDNs serve different certificates from different
//! frontends). For the *invalid* site class it compares certificates
//! exactly, because the expected certificate is known. Both checks live
//! here.

use crate::cert::Certificate;
use crate::store::RootStore;
use netsim::SimTime;
use std::fmt;

/// Why a chain failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CertError {
    /// No certificates were presented.
    EmptyChain,
    /// The leaf does not match the requested hostname.
    NameMismatch,
    /// A certificate in the chain is expired.
    Expired,
    /// A certificate in the chain is not yet valid.
    NotYetValid,
    /// A non-leaf link lacks the CA flag.
    NotCa,
    /// A signature link is broken (issuer key/DN mismatch).
    BadSignature,
    /// The chain terminates in a self-signed certificate that is not a
    /// trust anchor.
    SelfSigned,
    /// The chain's last issuer is unknown to the root store.
    UnknownIssuer,
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CertError::EmptyChain => "empty certificate chain",
            CertError::NameMismatch => "hostname mismatch",
            CertError::Expired => "certificate expired",
            CertError::NotYetValid => "certificate not yet valid",
            CertError::NotCa => "intermediate without CA flag",
            CertError::BadSignature => "broken signature link",
            CertError::SelfSigned => "untrusted self-signed certificate",
            CertError::UnknownIssuer => "unknown issuer",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CertError {}

/// Validate `chain` (leaf first) for `hostname` at time `now` against
/// `roots`.
///
/// Checks performed, in order: non-empty chain; hostname match on the leaf;
/// per-certificate validity window; per-link signature (issuer DN and key
/// must match the next certificate, which must be a CA); and finally trust
/// anchoring (the last certificate must be in the store or be signed by a
/// store entry).
pub fn verify_chain(
    chain: &[Certificate],
    hostname: &str,
    now: SimTime,
    roots: &RootStore,
) -> Result<(), CertError> {
    let leaf = chain.first().ok_or(CertError::EmptyChain)?;
    if !leaf.matches_hostname(hostname) {
        return Err(CertError::NameMismatch);
    }
    for cert in chain {
        if now < cert.not_before {
            return Err(CertError::NotYetValid);
        }
        if now > cert.not_after {
            return Err(CertError::Expired);
        }
    }
    for (child, parent) in chain.iter().zip(chain.iter().skip(1)) {
        if !parent.is_ca {
            return Err(CertError::NotCa);
        }
        if child.issuer_key != parent.subject_key || child.issuer != parent.subject {
            return Err(CertError::BadSignature);
        }
    }
    let last = chain.last().ok_or(CertError::EmptyChain)?;
    if roots.contains(last) {
        return Ok(());
    }
    if roots.issuer_of(last).is_some() {
        return Ok(());
    }
    if last.is_self_signed() {
        return Err(CertError::SelfSigned);
    }
    Err(CertError::UnknownIssuer)
}

/// Exact-identity comparison for the invalid-sites check: true if the
/// presented chain's leaf is byte-identical (by fingerprint) to the
/// expected certificate.
pub fn exact_match(presented: &[Certificate], expected: &Certificate) -> bool {
    presented
        .first()
        .map(|leaf| leaf.fingerprint() == expected.fingerprint() && leaf == expected)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{DistinguishedName, KeyId};
    use crate::issue::{self, CertAuthority};
    use netsim::{SimDuration, SimRng};

    struct Pki {
        roots: RootStore,
        ca: CertAuthority,
        rng: SimRng,
        now: SimTime,
    }

    fn pki() -> Pki {
        let mut rng = SimRng::new(0xCE47);
        let now = SimTime::EPOCH + SimDuration::from_days(1000);
        let (roots, mut cas) = RootStore::os_x_like(5, SimTime::EPOCH, &mut rng);
        let ca = cas.remove(0);
        Pki {
            roots,
            ca,
            rng,
            now,
        }
    }

    #[test]
    fn valid_leaf_from_root() {
        let mut p = pki();
        let leaf = p.ca.issue_leaf("www.example.com", p.now, &mut p.rng);
        assert_eq!(
            verify_chain(&[leaf], "www.example.com", p.now, &p.roots),
            Ok(())
        );
    }

    #[test]
    fn valid_leaf_via_intermediate() {
        let mut p = pki();
        let mut inter =
            p.ca.issue_intermediate(DistinguishedName::cn("Inter"), p.now, &mut p.rng);
        let leaf = inter.issue_leaf("shop.example", p.now, &mut p.rng);
        let chain = vec![leaf, inter.cert.clone()];
        assert_eq!(
            verify_chain(&chain, "shop.example", p.now, &p.roots),
            Ok(())
        );
    }

    #[test]
    fn hostname_mismatch_rejected() {
        let mut p = pki();
        let leaf = p.ca.issue_leaf("www.example.com", p.now, &mut p.rng);
        assert_eq!(
            verify_chain(&[leaf], "other.example.com", p.now, &p.roots),
            Err(CertError::NameMismatch)
        );
    }

    #[test]
    fn expired_rejected() {
        let mut p = pki();
        let leaf = issue::expired_leaf(&mut p.ca, "www.example.com", p.now, &mut p.rng);
        assert_eq!(
            verify_chain(&[leaf], "www.example.com", p.now, &p.roots),
            Err(CertError::Expired)
        );
    }

    #[test]
    fn not_yet_valid_rejected() {
        let mut p = pki();
        let mut leaf = p.ca.issue_leaf("www.example.com", p.now, &mut p.rng);
        leaf.not_before = p.now + SimDuration::from_days(1);
        leaf.not_after = p.now + SimDuration::from_days(100);
        assert_eq!(
            verify_chain(&[leaf], "www.example.com", p.now, &p.roots),
            Err(CertError::NotYetValid)
        );
    }

    #[test]
    fn self_signed_rejected() {
        let mut p = pki();
        let leaf = issue::self_signed_leaf("www.example.com", p.now, &mut p.rng);
        assert_eq!(
            verify_chain(&[leaf], "www.example.com", p.now, &p.roots),
            Err(CertError::SelfSigned)
        );
    }

    #[test]
    fn unknown_issuer_rejected() {
        let mut p = pki();
        let mut rogue = CertAuthority::new_root(
            DistinguishedName::cn("AV Product Root"),
            SimTime::EPOCH,
            &mut p.rng,
        );
        let leaf = rogue.issue_leaf("bank.example", p.now, &mut p.rng);
        assert_eq!(
            verify_chain(&[leaf], "bank.example", p.now, &p.roots),
            Err(CertError::UnknownIssuer)
        );
        // But a client that installed the AV root (as AV installers do)
        // accepts the same chain.
        let mut av_roots = p.roots.clone();
        av_roots.add(rogue.cert.clone());
        let leaf2 = rogue.issue_leaf("bank.example", p.now, &mut p.rng);
        assert_eq!(
            verify_chain(&[leaf2], "bank.example", p.now, &av_roots),
            Ok(())
        );
    }

    #[test]
    fn broken_signature_link_rejected() {
        let mut p = pki();
        let mut inter =
            p.ca.issue_intermediate(DistinguishedName::cn("Inter"), p.now, &mut p.rng);
        let mut leaf = inter.issue_leaf("shop.example", p.now, &mut p.rng);
        leaf.issuer_key = KeyId(0xDEAD);
        let chain = vec![leaf, inter.cert.clone()];
        assert_eq!(
            verify_chain(&chain, "shop.example", p.now, &p.roots),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn non_ca_parent_rejected() {
        let mut p = pki();
        let fake_parent = p.ca.issue_leaf("notaca.example", p.now, &mut p.rng);
        let mut leaf = p.ca.issue_leaf("victim.example", p.now, &mut p.rng);
        leaf.issuer = fake_parent.subject.clone();
        leaf.issuer_key = fake_parent.subject_key;
        let chain = vec![leaf, fake_parent];
        assert_eq!(
            verify_chain(&chain, "victim.example", p.now, &p.roots),
            Err(CertError::NotCa)
        );
    }

    #[test]
    fn empty_chain_rejected() {
        let p = pki();
        assert_eq!(
            verify_chain(&[], "x.example", p.now, &p.roots),
            Err(CertError::EmptyChain)
        );
    }

    #[test]
    fn exact_match_distinguishes_spoofs() {
        let mut p = pki();
        let original = issue::self_signed_leaf("invalid1.example", p.now, &mut p.rng);
        assert!(exact_match(std::slice::from_ref(&original), &original));
        // A spoof that copies every visible field still differs in keys.
        let mut av = CertAuthority::new_root(
            DistinguishedName::cn("Kaspersky Anti-Virus Personal Root"),
            SimTime::EPOCH,
            &mut p.rng,
        );
        let spoof = av.issue_spoof(&original, KeyId(1), p.now, true);
        assert!(!exact_match(&[spoof], &original));
        assert!(!exact_match(&[], &original));
    }
}
