//! HTTP status codes.

use std::fmt;

/// An HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK
    pub const OK: StatusCode = StatusCode(200);
    /// 202 Accepted
    pub const ACCEPTED: StatusCode = StatusCode(202);
    /// 204 No Content
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 301 Moved Permanently
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 302 Found
    pub const FOUND: StatusCode = StatusCode(302);
    /// 400 Bad Request
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 403 Forbidden
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 429 Too Many Requests
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// 502 Bad Gateway
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    /// 503 Service Unavailable
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);
    /// 504 Gateway Timeout
    pub const GATEWAY_TIMEOUT: StatusCode = StatusCode(504);

    /// The canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            202 => "Accepted",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// True for 2xx codes.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// True for 3xx codes.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// True for 4xx/5xx codes.
    pub fn is_error(self) -> bool {
        self.0 >= 400
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(StatusCode::BAD_GATEWAY.is_error());
        assert!(!StatusCode::OK.is_error());
    }

    #[test]
    fn reasons() {
        assert_eq!(StatusCode::OK.reason(), "OK");
        assert_eq!(StatusCode(418).reason(), "Unknown");
    }
}
