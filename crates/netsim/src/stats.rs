//! Small statistics helpers used by the analysis layer.
//!
//! The headline consumer is Figure 5 (CDF of content-monitor refetch delays
//! on a log-scaled x axis); `Cdf` computes empirical distribution points and
//! quantiles from raw samples.

/// An empirical cumulative distribution over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build a CDF from raw samples. Non-finite samples are rejected.
    ///
    /// # Panics
    /// Panics if any sample is NaN or infinite.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "Cdf samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples compare"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0.0 on an empty CDF).
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 <= q <= 1), by the nearest-rank method.
    ///
    /// # Panics
    /// Panics on an empty CDF or if `q` is outside `[0,1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.saturating_sub(1)]
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// `(x, F(x))` points suitable for plotting, one per sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// `(x, F(x))` evaluated at `k` log-spaced abscissae spanning the sample
    /// range — the Figure 5 rendering grid (its x axis is log-scaled).
    ///
    /// # Panics
    /// Panics on an empty CDF, if `k < 2`, or if any sample is `<= 0`
    /// (log-spacing needs a positive domain).
    pub fn log_spaced_points(&self, k: usize) -> Vec<(f64, f64)> {
        assert!(!self.sorted.is_empty(), "log_spaced_points of empty CDF");
        assert!(k >= 2, "need at least two grid points");
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        assert!(lo > 0.0, "log-spaced grid requires positive samples");
        let (llo, lhi) = (lo.ln(), hi.ln());
        (0..k)
            .map(|i| {
                // Pin the endpoints exactly: exp(ln(x)) rounding must not let
                // the last grid point fall below the max sample.
                let x = if i == 0 {
                    lo
                } else if i == k - 1 {
                    hi
                } else {
                    (llo + (lhi - llo) * i as f64 / (k - 1) as f64).exp()
                };
                (x, self.fraction_at(x))
            })
            .collect()
    }
}

/// Mean of a slice (None if empty).
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation of a slice (None if empty).
pub fn stddev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_at_matches_definition() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
        assert_eq!(cdf.fraction_at(1.0), 0.25);
        assert_eq!(cdf.fraction_at(2.5), 0.5);
        assert_eq!(cdf.fraction_at(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let cdf = Cdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(0.5), 30.0);
        assert_eq!(cdf.quantile(1.0), 50.0);
    }

    #[test]
    fn points_are_monotone() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn log_spaced_grid_spans_range() {
        let cdf = Cdf::new(vec![1.0, 10.0, 100.0, 1000.0]);
        let pts = cdf.log_spaced_points(4);
        assert!((pts[0].0 - 1.0).abs() < 1e-9);
        assert!((pts[3].0 - 1000.0).abs() < 1e-6);
        assert_eq!(pts[3].1, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        let sd = stddev(&[2.0, 4.0]).unwrap();
        assert!((sd - 1.0).abs() < 1e-12);
    }
}
