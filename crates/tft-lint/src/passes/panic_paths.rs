//! `no-panic-on-untrusted-bytes`: wire parsers must be total.
//!
//! The parser crates (`dnswire`, `httpwire`, `smtpwire`, `certs`) model the
//! paper's middlebox adversaries — their inputs are by definition
//! attacker-shaped. A parser that can `unwrap`, `expect`, `panic!`, or
//! index a slice on untrusted bytes turns malformed input into a crash.
//! The same contract covers `tft-serve`: the gateway's `handle` consumes
//! raw request bytes straight off the (virtual) wire, so its whole request
//! path must be total too. The pass bans those constructs in the crates'
//! library code; unit-test modules (`#[cfg(test)] mod …`) and integration
//! tests are exempt, since tests unwrap their own well-formed fixtures.

use super::{code_indices, in_ranges};
use crate::engine::{Diagnostic, FileKind, Pass, SourceFile};
use crate::lexer::TokKind;

const PARSER_CRATES: [&str; 5] = ["dnswire", "httpwire", "smtpwire", "certs", "tft-serve"];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can legally precede `[` without it being an index
/// expression (type positions like `&mut [u8]`, `for x in [..]`).
const NON_INDEX_KEYWORDS: [&str; 16] = [
    "mut", "dyn", "ref", "in", "as", "return", "break", "else", "match", "move", "if", "impl",
    "where", "let", "const", "box",
];

/// Forbid panic paths in the public parse code of the wire crates.
pub struct NoPanicOnUntrustedBytes;

impl Pass for NoPanicOnUntrustedBytes {
    fn id(&self) -> &'static str {
        "no-panic-on-untrusted-bytes"
    }

    fn description(&self) -> &'static str {
        "forbid unwrap/expect/panic!/slice-indexing in dnswire/httpwire/smtpwire/certs/tft-serve \
         library code; parsers and servers of untrusted bytes must return errors"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.kind == FileKind::Rust
            && PARSER_CRATES.contains(&file.crate_name.as_str())
            && file.rel_path.contains("/src/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = code_indices(file);
        let tests = file.test_mod_ranges();
        let mut diag = |idx: usize, msg: String| {
            let t = &file.tokens[idx];
            out.push(Diagnostic {
                pass: "no-panic-on-untrusted-bytes".into(),
                file: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message: msg,
            });
        };
        for w in 0..code.len() {
            let idx = code[w];
            if in_ranges(idx, &tests) {
                continue;
            }
            let t = &file.tokens[idx];
            let text = t.text(&file.text);
            match t.kind {
                TokKind::Ident => {
                    let prev = w
                        .checked_sub(1)
                        .map(|p| file.tok_text(code[p]))
                        .unwrap_or("");
                    if (text == "unwrap" || text == "expect") && prev == "." {
                        diag(
                            idx,
                            format!(
                                ".{text}() panics on the error path; propagate a parse \
                                 error instead (`?`, `ok_or`, `let … else`)"
                            ),
                        );
                    } else if PANIC_MACROS.contains(&text)
                        && code.get(w + 1).map(|&j| file.tok_text(j)) == Some("!")
                    {
                        diag(
                            idx,
                            format!("{text}! is reachable from untrusted input; return an error"),
                        );
                    }
                }
                TokKind::Punct if text == "[" => {
                    let Some(p) = w.checked_sub(1) else { continue };
                    let prev_idx = code[p];
                    let prev = &file.tokens[prev_idx];
                    let prev_text = prev.text(&file.text);
                    let indexable = matches!(prev_text, ")" | "]")
                        || (prev.kind == TokKind::Ident
                            && !NON_INDEX_KEYWORDS.contains(&prev_text));
                    if indexable {
                        diag(
                            idx,
                            "slice indexing panics out of bounds; use .get()/.split_at_checked() \
                             or slice patterns"
                                .into(),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}
