//! Client commands.

use std::fmt;

/// The SMTP commands the probe uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `EHLO <domain>` — extended hello; the reply advertises capabilities.
    Ehlo(String),
    /// `HELO <domain>` — legacy hello.
    Helo(String),
    /// `STARTTLS` — request the TLS upgrade.
    StartTls,
    /// `NOOP`.
    Noop,
    /// `QUIT`.
    Quit,
}

/// Errors parsing a command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandError {
    /// Verb not recognized.
    UnknownVerb(String),
    /// EHLO/HELO missing its domain argument.
    MissingArgument,
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::UnknownVerb(v) => write!(f, "unknown SMTP verb {v:?}"),
            CommandError::MissingArgument => write!(f, "missing argument"),
        }
    }
}

impl std::error::Error for CommandError {}

impl Command {
    /// Render as a wire line (without CRLF).
    pub fn to_line(&self) -> String {
        match self {
            Command::Ehlo(d) => format!("EHLO {d}"),
            Command::Helo(d) => format!("HELO {d}"),
            Command::StartTls => "STARTTLS".to_string(),
            Command::Noop => "NOOP".to_string(),
            Command::Quit => "QUIT".to_string(),
        }
    }

    /// Parse a wire line (CRLF already stripped). Verbs are
    /// case-insensitive per RFC 5321.
    // tft-lint: wire-entry — parses untrusted bytes
    pub fn parse(line: &str) -> Result<Command, CommandError> {
        let line = line.trim_end();
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, Some(r.trim())),
            None => (line, None),
        };
        match verb.to_ascii_uppercase().as_str() {
            "EHLO" => rest
                .filter(|r| !r.is_empty())
                .map(|r| Command::Ehlo(r.to_string()))
                .ok_or(CommandError::MissingArgument),
            "HELO" => rest
                .filter(|r| !r.is_empty())
                .map(|r| Command::Helo(r.to_string()))
                .ok_or(CommandError::MissingArgument),
            "STARTTLS" => Ok(Command::StartTls),
            "NOOP" => Ok(Command::Noop),
            "QUIT" => Ok(Command::Quit),
            other => Err(CommandError::UnknownVerb(other.to_string())),
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_commands() {
        for cmd in [
            Command::Ehlo("probe.example".into()),
            Command::Helo("probe.example".into()),
            Command::StartTls,
            Command::Noop,
            Command::Quit,
        ] {
            assert_eq!(Command::parse(&cmd.to_line()).unwrap(), cmd);
        }
    }

    #[test]
    fn verbs_are_case_insensitive() {
        assert_eq!(
            Command::parse("ehlo mail.example").unwrap(),
            Command::Ehlo("mail.example".into())
        );
        assert_eq!(Command::parse("starttls").unwrap(), Command::StartTls);
    }

    #[test]
    fn errors() {
        assert_eq!(Command::parse("EHLO"), Err(CommandError::MissingArgument));
        assert_eq!(Command::parse("EHLO  "), Err(CommandError::MissingArgument));
        assert!(matches!(
            Command::parse("VRFY user"),
            Err(CommandError::UnknownVerb(_))
        ));
    }
}
