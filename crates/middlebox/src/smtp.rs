//! SMTP interference — the future-work extension's violator (§3.4, §9).
//!
//! The canonical in-path SMTP violation is **STARTTLS stripping**: a
//! middlebox removes `STARTTLS` from EHLO capability replies (and refuses
//! the command if a client tries anyway), silently downgrading mail to
//! plaintext. Some appliances also rewrite the banner to hide the server
//! implementation.

use smtpwire::{Command, Reply};

/// An in-path SMTP interceptor.
#[derive(Debug, Clone, Default)]
pub struct SmtpInterceptor {
    /// Remove STARTTLS from EHLO replies and refuse STARTTLS commands.
    pub strip_starttls: bool,
    /// Replace the 220 banner text with this (appliances often leak their
    /// own identity here — a real-world fingerprint).
    pub banner_rewrite: Option<String>,
}

impl SmtpInterceptor {
    /// A STARTTLS stripper.
    pub fn stripper() -> SmtpInterceptor {
        SmtpInterceptor {
            strip_starttls: true,
            banner_rewrite: None,
        }
    }

    /// Filter a server reply on its way to the client. `in_response_to`
    /// is the command that elicited it (None for the connection banner).
    pub fn filter_reply(&self, in_response_to: Option<&Command>, reply: Reply) -> Reply {
        match in_response_to {
            None => {
                if let Some(banner) = &self.banner_rewrite {
                    return Reply::new(reply.code, banner);
                }
                reply
            }
            Some(Command::Ehlo(_)) if self.strip_starttls => {
                let lines: Vec<String> = reply
                    .lines
                    .iter()
                    .enumerate()
                    .filter(|(i, l)| *i == 0 || !l.eq_ignore_ascii_case("STARTTLS"))
                    .map(|(_, l)| l.clone())
                    .collect();
                Reply::multiline(reply.code, lines)
            }
            Some(Command::StartTls) if self.strip_starttls => {
                // The server never sees the command; the box answers.
                Reply::new(454, "TLS not available due to temporary reason")
            }
            _ => reply,
        }
    }

    /// True if the interceptor intercepts the given command instead of
    /// letting it reach the server.
    pub fn absorbs(&self, cmd: &Command) -> bool {
        self.strip_starttls && matches!(cmd, Command::StartTls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtpwire::{Capabilities, MailServer};

    #[test]
    fn stripper_removes_starttls_from_ehlo() {
        let server = MailServer::new("mx1.example");
        let mitm = SmtpInterceptor::stripper();
        let ehlo = Command::Ehlo("probe.example".into());
        let clean = server.handle(&ehlo);
        assert!(Capabilities::from_ehlo(&clean).starttls);
        let filtered = mitm.filter_reply(Some(&ehlo), clean);
        assert!(!Capabilities::from_ehlo(&filtered).starttls);
        // Other capabilities survive.
        assert!(Capabilities::from_ehlo(&filtered).pipelining);
    }

    #[test]
    fn stripper_refuses_starttls_command() {
        let mitm = SmtpInterceptor::stripper();
        assert!(mitm.absorbs(&Command::StartTls));
        let refusal = mitm.filter_reply(Some(&Command::StartTls), Reply::new(220, "unused"));
        assert_eq!(refusal.code, 454);
    }

    #[test]
    fn banner_rewrite() {
        let server = MailServer::new("mx1.example");
        let mitm = SmtpInterceptor {
            strip_starttls: false,
            banner_rewrite: Some("mailguard appliance".into()),
        };
        let banner = mitm.filter_reply(None, server.banner());
        assert_eq!(banner.code, 220);
        assert_eq!(banner.lines[0], "mailguard appliance");
    }

    #[test]
    fn passthrough_when_disabled() {
        let server = MailServer::new("mx1.example");
        let mitm = SmtpInterceptor::default();
        let ehlo = Command::Ehlo("probe.example".into());
        let reply = server.handle(&ehlo);
        assert_eq!(mitm.filter_reply(Some(&ehlo), reply.clone()), reply);
        assert!(!mitm.absorbs(&Command::StartTls));
    }
}
