//! Resolver-cache semantics at the world level: repeated names collapse to
//! one authoritative query, unique probe names never do, and the shared
//! super-proxy cache reproduces footnote 8's same-instance hazard.

use dnswire::DnsName;
use httpwire::{Response, Uri};
use inetdb::{CountryCode, InternetRegistry};
use netsim::{SimRng, SimTime};
use proxynet::{ExitNode, NodeId, Platform, ResolverChoice, ResolverDef, UsernameOptions, World};
use std::net::Ipv4Addr;

fn cc(s: &str) -> CountryCode {
    CountryCode::new(s)
}

fn name(s: &str) -> DnsName {
    DnsName::parse(s).unwrap()
}

fn world(google_resolver_nodes: bool) -> World {
    let mut reg = InternetRegistry::new();
    let google = reg.register_org("Google", cc("US"));
    let gasn = reg.register_as_with_prefix(google, inetdb::GOOGLE_ANYCAST_NET.parse().unwrap());
    let isp_org = reg.register_org("ISP", cc("US"));
    let isp_asn = reg.register_as(isp_org, 1);
    let lab_org = reg.register_org("Lab", cc("US"));
    let lab_asn = reg.register_as(lab_org, 1);
    let web_ip = reg.alloc_ip(lab_asn);
    // One anycast instance only: every Google-DNS node shares the super
    // proxy's cache — the worst case of footnote 8.
    let anycast = vec![reg.alloc_ip(gasn)];
    let resolver = reg.alloc_ip(isp_asn);
    let node_ips: Vec<Ipv4Addr> = (0..3).map(|_| reg.alloc_ip(isp_asn)).collect();
    reg.snapshot_rib();

    let mut rng = SimRng::new(5);
    let (roots, _) = certs::RootStore::os_x_like(2, SimTime::EPOCH, &mut rng);
    let mut w = World::new(3, name("probe.example"), web_ip, anycast, reg, roots);
    w.add_resolver(ResolverDef {
        ip: resolver,
        asn: isp_asn,
        hijacker: None,
    });
    for (i, ip) in node_ips.iter().enumerate() {
        let choice = if google_resolver_nodes {
            ResolverChoice::GoogleDns
        } else {
            ResolverChoice::Isp(resolver)
        };
        w.add_node(ExitNode::new(
            NodeId(i as u32),
            *ip,
            isp_asn,
            cc("US"),
            Platform::Windows,
            choice,
        ));
    }
    w
}

fn provision(w: &mut World, label: &str) -> String {
    let apex = w.auth_apex().clone();
    let n = apex.child(label).unwrap();
    let host = n.to_string();
    let web_ip = w.web_ip();
    w.auth_server_mut().zone_mut().add_a(n, web_ip);
    w.web_server_mut()
        .put(&host, "/", Response::ok("text/html", b"x".to_vec()));
    host
}

#[test]
fn repeated_names_hit_the_cache() {
    let mut w = world(false);
    let host = provision(&mut w, "cached");
    for session in 0..6 {
        let opts = UsernameOptions::new("c").session(session).dns_remote();
        w.proxy_get(&opts, &Uri::http(&host, "/")).unwrap();
    }
    // 6 fetches; without caching that is 12 authoritative queries (super
    // proxy + exit each time). With caching: one from the super proxy's
    // instance, one from the ISP resolver.
    let queries = w.auth_server().queries_for(&name(&host)).count();
    assert_eq!(queries, 2, "cache should collapse repeated lookups");
}

#[test]
fn unique_probe_names_always_reach_the_authority() {
    let mut w = world(false);
    for i in 0..5 {
        let host = provision(&mut w, &format!("unique-{i}"));
        let opts = UsernameOptions::new("c").session(100 + i).dns_remote();
        w.proxy_get(&opts, &Uri::http(&host, "/")).unwrap();
        assert_eq!(
            w.auth_server().queries_for(&name(&host)).count(),
            2,
            "fresh name must be resolved by both super proxy and exit"
        );
    }
}

#[test]
fn shared_anycast_cache_hides_the_exit_query() {
    // Google-DNS nodes share the single anycast instance with the super
    // proxy: the super proxy's resolution warms the cache, so the exit
    // node's query never reaches our authority — exactly why the paper
    // filters same-instance nodes.
    let mut w = world(true);
    let host = provision(&mut w, "shared");
    let opts = UsernameOptions::new("c").session(1).dns_remote();
    w.proxy_get(&opts, &Uri::http(&host, "/")).unwrap();
    assert_eq!(
        w.auth_server().queries_for(&name(&host)).count(),
        1,
        "only the super proxy's query is visible"
    );
}

#[test]
fn disabling_caching_restores_per_query_visibility() {
    let mut w = world(true);
    w.set_resolver_caching(false);
    let host = provision(&mut w, "uncached");
    let opts = UsernameOptions::new("c").session(1).dns_remote();
    w.proxy_get(&opts, &Uri::http(&host, "/")).unwrap();
    assert_eq!(
        w.auth_server().queries_for(&name(&host)).count(),
        2,
        "without caching both queries arrive"
    );
}
