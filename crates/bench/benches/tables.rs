//! One bench per table and figure: how fast each analysis + rendering
//! stage regenerates its artifact from a collected dataset, plus the full
//! end-to-end study.
//!
//! The datasets are collected once (outside the timing loops); the benches
//! measure the per-table inference work, which is the part a user re-runs
//! while exploring data.

use std::hint::black_box;
use substrate::bench::Harness;
use tft_core::report::{figures, tables};
use tft_core::{analysis, StudyConfig};

struct Fixture {
    run: tft_bench::HarnessRun,
    cfg: StudyConfig,
    world: proxynet::World,
}

fn fixture() -> &'static Fixture {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scale = 0.01;
        let run = tft_bench::run_full(scale, 0xBE7C);
        // A second world for re-running analyses (the run consumed its own).
        let built = worldgen::build(&worldgen::paper_spec(scale, 0xBE7C));
        Fixture {
            run,
            cfg: StudyConfig::scaled(scale),
            world: built.world,
        }
    })
}

fn bench_study(h: &mut Harness) {
    h.bench("study/end_to_end_scale_0.004", || {
        black_box(tft_bench::run_full(0.004, 0xEE))
    });
}

fn bench_tables(h: &mut Harness) {
    let f = fixture();
    h.bench("tables/table1_coverage", || {
        black_box(tables::table1(&f.run.report))
    });
    h.bench("tables/table2_experiments", || {
        black_box(tables::table2(&f.run.report))
    });
    h.bench("tables/table3_dns_country", || {
        let a = analysis::dns::analyze(&f.run.report.dns_data, &f.world, &f.cfg);
        black_box(tables::table3(&a))
    });
    h.bench("tables/table4_isp_dns", || {
        let a = analysis::dns::analyze(&f.run.report.dns_data, &f.world, &f.cfg);
        black_box(tables::table4(&a))
    });
    h.bench("tables/table5_google_dns", || {
        let a = analysis::dns::analyze(&f.run.report.dns_data, &f.world, &f.cfg);
        black_box(tables::table5(&a))
    });
    h.bench("tables/table6_js_injection", || {
        let a = analysis::http::analyze(&f.run.report.http_data, &f.world, &f.cfg);
        black_box(tables::table6(&a))
    });
    h.bench("tables/table7_image", || {
        let a = analysis::http::analyze(&f.run.report.http_data, &f.world, &f.cfg);
        black_box(tables::table7(&a))
    });
    h.bench("tables/table8_issuers", || {
        let a = analysis::https::analyze(&f.run.report.https_data, &f.world, &f.cfg);
        black_box(tables::table8(&a))
    });
    h.bench("tables/table9_monitors", || {
        let a = analysis::monitor::analyze(&f.run.report.monitor_data, &f.world, &f.cfg);
        black_box(tables::table9(&a))
    });
}

fn bench_figures(h: &mut Harness) {
    let f = fixture();
    h.bench("figures/figure5_delay_cdf", || {
        let a = analysis::monitor::analyze(&f.run.report.monitor_data, &f.world, &f.cfg);
        black_box(figures::figure5(&a))
    });
    h.bench("figures/figures_1_to_4_timelines", || {
        let mut world = figures::demo_world();
        black_box((
            figures::figure1(&mut world),
            figures::figure2(&mut world),
            figures::figure3(&mut world),
            figures::figure4(&mut world),
        ))
    });
}

fn main() {
    let mut h = Harness::new("tables");
    bench_study(&mut h);
    bench_tables(&mut h);
    bench_figures(&mut h);
    h.finish();
}
