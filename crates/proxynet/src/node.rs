//! Exit nodes: the Hola-client peers whose vantage points the measurement
//! borrows.

use inetdb::{Asn, CountryCode};
use middlebox::{HtmlInjector, NxdomainHijacker, ObjectBlocker, TlsInterceptor};
use std::fmt;
use std::net::Ipv4Addr;

/// Dense index of an exit node inside the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The persistent per-installation identifier Luminati exposes in its debug
/// headers. Stable across IP changes — the paper's dedup key (§2.3).
///
/// Held as the raw 64-bit value (a `Copy` key: dedup sets, billing maps,
/// and per-attempt timelines never clone a string). The wire rendering is
/// canonical `z` + 16 lowercase hex digits; because that form is
/// fixed-width, the derived numeric [`Ord`] agrees byte-for-byte with the
/// rendered strings' lexicographic order, so sorted output is unchanged
/// from the string-keyed representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZId(pub u64);

impl ZId {
    /// Derive the zID for a node index (stable, matching the on-disk
    /// `hola_svc.exe.cid` the paper verified against).
    pub fn for_node(id: NodeId) -> ZId {
        // splitmix64 of the index: looks opaque, is deterministic.
        let mut x = id.0 as u64 ^ 0x9e37_79b9_7f4a_7c15;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        ZId(x)
    }

    /// Parse the canonical rendering (`z` + exactly 16 lowercase hex
    /// digits). Anything else — wrong width, uppercase, stray characters —
    /// is not a zID this proxy ever emitted.
    pub fn parse(s: &str) -> Option<ZId> {
        let hex = s.strip_prefix('z')?;
        if hex.len() != 16 || !hex.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return None;
        }
        u64::from_str_radix(hex, 16).ok().map(ZId)
    }
}

impl fmt::Display for ZId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{:016x}", self.0)
    }
}

impl substrate::json::ToJson for ZId {
    fn to_json(&self) -> substrate::json::Json {
        substrate::json::Json::uint(self.0)
    }
}

impl substrate::json::FromJson for ZId {
    fn from_json(v: &substrate::json::Json) -> Result<Self, substrate::json::JsonError> {
        v.as_u64()
            .map(ZId)
            .ok_or_else(|| substrate::json::JsonError::shape("ZId: expected unsigned integer"))
    }
}

/// Hola client platform. Only Windows and Mac OS installations run the
/// background service that makes a peer usable as a Luminati exit (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Windows desktop application (exit-eligible).
    Windows,
    /// Mac OS application (exit-eligible).
    MacOs,
    /// Browser extensions / Android (not exit-eligible).
    Other,
}

impl Platform {
    /// Whether Luminati can route traffic through this installation.
    pub fn exit_eligible(self) -> bool {
        matches!(self, Platform::Windows | Platform::MacOs)
    }
}

/// Which resolver the node's network stack is configured to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolverChoice {
    /// The ISP-assigned resolver at this address.
    Isp(Ipv4Addr),
    /// A public resolver at this address (OpenDNS-like, possibly a
    /// hijacking one, possibly malware-installed).
    Public(Ipv4Addr),
    /// Google Public DNS (8.8.8.8) — queries reach authoritative servers
    /// from an anycast instance in 74.125.0.0/16.
    GoogleDns,
}

/// Software installed on the exit node that violates end-to-end behaviour.
/// All fields are **ground truth** the analyzer must rediscover.
#[derive(Debug, Clone, Default)]
pub struct HostSoftware {
    /// End-host NXDOMAIN hijacker (anti-virus "search assist" or malware).
    pub dns_hijacker: Option<NxdomainHijacker>,
    /// End-host HTML injector (ad-injecting malware).
    pub html_injector: Option<HtmlInjector>,
    /// End-host TLS interceptor (anti-virus, filter, malware).
    pub tls_interceptor: Option<TlsInterceptor>,
    /// Indices into the world's monitor-entity table of monitors observing
    /// this node's HTTP requests (AV clouds, ISP boxes, VPN scanners).
    pub monitors: Vec<usize>,
    /// If set, the node routes origin traffic through a VPN: origin servers
    /// see one of these egress addresses instead of the node's own
    /// (AnchorFree's Hotspot Shield).
    pub vpn_egress: Option<Vec<Ipv4Addr>>,
    /// Replaces whole objects with "bandwidth exceeded"/"blocked" pages —
    /// the only JS/CSS interference the paper observed (§5.2).
    pub blocker: Option<ObjectBlocker>,
}

/// One Hola peer.
#[derive(Debug, Clone)]
pub struct ExitNode {
    /// Dense index.
    pub id: NodeId,
    /// Persistent installation id.
    pub zid: ZId,
    /// Current public address.
    pub ip: Ipv4Addr,
    /// Origin AS of `ip`.
    pub asn: Asn,
    /// Country of the AS's operating organization.
    pub country: CountryCode,
    /// Client platform.
    pub platform: Platform,
    /// Configured resolver.
    pub resolver: ResolverChoice,
    /// Online flag (churn).
    pub online: bool,
    /// Per-request failure probability (models residential flakiness; the
    /// super proxy's retry logic exists because of this).
    pub flakiness: f64,
    /// Installed violating software.
    pub software: HostSoftware,
    /// True if the node is a tethered mobile connection — the vantage that
    /// let the paper measure mobile-carrier image transcoding (§5.2).
    pub mobile_tethered: bool,
}

impl ExitNode {
    /// A minimal well-behaved node, for construction by the world builder.
    pub fn new(
        id: NodeId,
        ip: Ipv4Addr,
        asn: Asn,
        country: CountryCode,
        platform: Platform,
        resolver: ResolverChoice,
    ) -> Self {
        ExitNode {
            id,
            zid: ZId::for_node(id),
            ip,
            asn,
            country,
            platform,
            resolver,
            online: true,
            flakiness: 0.0,
            software: HostSoftware::default(),
            mobile_tethered: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zid_is_stable_and_unique() {
        let a = ZId::for_node(NodeId(7));
        let b = ZId::for_node(NodeId(7));
        let c = ZId::for_node(NodeId(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.to_string().starts_with('z'));
    }

    #[test]
    fn zid_parse_round_trips_canonical_form_only() {
        let a = ZId::for_node(NodeId(7));
        let rendered = a.to_string();
        assert_eq!(rendered.len(), 17);
        assert_eq!(ZId::parse(&rendered), Some(a));
        // Non-canonical spellings a real proxy never emits are rejected.
        for bad in ["", "z", "zaaaa", "Z0000000000000007", "z000000000000000G"] {
            assert_eq!(ZId::parse(bad), None, "{bad:?} accepted");
        }
    }

    #[test]
    fn zid_numeric_order_matches_rendered_order() {
        // The report sorts by ZId; fixed-width lowercase hex keeps the
        // derived numeric order identical to the rendered strings'.
        let mut ids: Vec<ZId> = (0..64u32).map(|i| ZId::for_node(NodeId(i))).collect();
        let mut strings: Vec<String> = ids.iter().map(|z| z.to_string()).collect();
        ids.sort();
        strings.sort();
        let rendered: Vec<String> = ids.iter().map(|z| z.to_string()).collect();
        assert_eq!(rendered, strings);
    }

    #[test]
    fn exit_eligibility() {
        assert!(Platform::Windows.exit_eligible());
        assert!(Platform::MacOs.exit_eligible());
        assert!(!Platform::Other.exit_eligible());
    }

    #[test]
    fn new_node_is_clean() {
        let n = ExitNode::new(
            NodeId(1),
            Ipv4Addr::new(11, 0, 0, 5),
            Asn(100),
            CountryCode::new("US"),
            Platform::Windows,
            ResolverChoice::GoogleDns,
        );
        assert!(n.online);
        assert!(n.software.dns_hijacker.is_none());
        assert!(n.software.monitors.is_empty());
        assert!(!n.mobile_tethered);
    }
}
