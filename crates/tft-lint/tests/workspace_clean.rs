//! End-to-end acceptance: the real workspace lints clean modulo the
//! committed `LINT_baseline.json`, every suppression carries a written
//! reason, and the walker saw the whole tree. This is the
//! `cargo run -p tft-lint -- --baseline LINT_baseline.json` exits-0
//! criterion in test form.

use std::path::Path;
use tft_lint::{Baseline, Engine};

fn workspace_root() -> &'static Path {
    // crates/tft-lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("tft-lint lives two levels below the workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let baseline_text =
        std::fs::read_to_string(root.join("LINT_baseline.json")).expect("LINT_baseline.json");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let report = Engine::with_default_passes()
        .with_baseline(baseline)
        .run(root)
        .expect("workspace is readable");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has diagnostics not covered by allows or the baseline:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity on coverage: the walker must have seen the crates, not an
    // empty directory (which would vacuously pass).
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    // Every suppression in the tree carries a reason (unreasoned allows
    // would show up as allow-missing-reason diagnostics above), and the
    // known legitimate ones exist.
    assert!(
        report.suppressed >= 1,
        "expected at least the bench clock shim suppression"
    );
    // The baseline is a ratchet, not a dumping ground: it must absorb
    // exactly the findings it pins (a drop would have surfaced as a
    // stale-baseline diagnostic above; growth as the raw finding).
    assert!(
        report.baselined >= 1,
        "baseline absorbed nothing — entries are stale or the file is empty"
    );
}
