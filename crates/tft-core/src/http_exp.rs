//! The HTTP content-modification experiment (§5.1).
//!
//! Four reference objects (9 KB HTML, 39 KB JPEG, 258 KB un-minified JS,
//! 3 KB CSS) are fetched through exit nodes and compared byte-for-byte
//! against what the study server sent. Bandwidth-aware sampling: three
//! nodes per AS first; ASes where any modification shows up are revisited
//! for more nodes (to separate ISP-level from end-host modification).

use crate::config::StudyConfig;
use crate::crawl::Sampler;
use crate::ethics::ByteBudget;
use crate::exec::ProbeScope;
use crate::obs::{HttpDataset, HttpObservation, ObjectResult, ProbeObject, Quarantine};
use crate::quality::{delivery_outcome, DataQuality, ProbeOutcome};
use httpwire::{Response, Uri};
use inetdb::{Asn, CountryCode};
use proxynet::{UsernameOptions, World, ZId};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Sampler-seed salt (XORed with virtual time at experiment start).
const SEED_SALT: u64 = 0x477;

/// Host under the probe zone that serves the four objects.
pub const OBJECT_HOST_LABEL: &str = "objects";

/// Deterministic reference bodies. The paper found that objects under 1 KB
/// see much less modification, so each object is full-size.
///
/// Thin owned wrapper over [`object_body_ref`] — callers that only compare
/// or measure should take the borrowed form; the bodies are immutable
/// study constants, built once per process.
pub fn object_body(obj: ProbeObject) -> Vec<u8> {
    object_body_ref(obj).to_vec()
}

/// The reference body as a borrowed slice, built once per process.
///
/// The JS body alone is 258 KB assembled from ~1300 `format!` fragments;
/// rebuilding it per fetch (as `fetch_object` once did) dominated the
/// study's allocation profile. The cache is keyed by object and filled on
/// first use — contents are a pure function of the object, so process-wide
/// sharing cannot perturb determinism.
pub fn object_body_ref(obj: ProbeObject) -> &'static [u8] {
    use std::sync::OnceLock;
    static CACHE: [OnceLock<Vec<u8>>; 4] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    let slot = match obj {
        ProbeObject::Html => &CACHE[0],
        ProbeObject::Jpeg => &CACHE[1],
        ProbeObject::Js => &CACHE[2],
        ProbeObject::Css => &CACHE[3],
    };
    slot.get_or_init(|| build_object_body(obj))
}

/// Build one reference body from scratch (cold path behind the cache).
fn build_object_body(obj: ProbeObject) -> Vec<u8> {
    match obj {
        ProbeObject::Html => {
            let mut s = String::with_capacity(9 * 1024);
            s.push_str(
                "<!DOCTYPE html>\n<html><head><title>TFT reference page</title></head><body>\n",
            );
            let mut i = 0;
            while s.len() < 9 * 1024 - 64 {
                s.push_str(&format!(
                    "<p id=\"para-{i}\">Reference paragraph {i}: the quick brown fox jumps over the lazy dog.</p>\n"
                ));
                i += 1;
            }
            s.push_str("</body></html>\n");
            s.into_bytes()
        }
        ProbeObject::Jpeg => {
            let mut v = vec![0xFF, 0xD8, 0xFF, 0xE0];
            let mut x: u32 = 0x1234_5678;
            while v.len() < 39 * 1024 {
                // xorshift stream: incompressible-ish, deterministic.
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                v.extend_from_slice(&x.to_be_bytes());
            }
            v.truncate(39 * 1024);
            v
        }
        ProbeObject::Js => {
            let mut s = String::with_capacity(258 * 1024);
            s.push_str("/* TFT reference library (un-minified) */\n");
            let mut i = 0;
            while s.len() < 258 * 1024 - 128 {
                s.push_str(&format!(
                    "function referenceFunction{i}(argumentOne, argumentTwo) {{\n    // computes a reference value\n    var resultValue = argumentOne + argumentTwo + {i};\n    return resultValue;\n}}\n\n"
                ));
                i += 1;
            }
            s.into_bytes()
        }
        ProbeObject::Css => {
            let mut s = String::with_capacity(3 * 1024);
            s.push_str("/* TFT reference stylesheet (un-minified) */\n");
            let mut i = 0;
            while s.len() < 3 * 1024 - 64 {
                s.push_str(&format!(
                    ".reference-class-{i} {{\n    margin: {i}px;\n    padding: 2px;\n}}\n"
                ));
                i += 1;
            }
            s.into_bytes()
        }
    }
}

/// Install the object routes and the DNS name for the object host.
fn provision(world: &mut World) -> String {
    let apex = world.auth_apex().clone();
    let host = apex
        .child(OBJECT_HOST_LABEL)
        .expect("valid label")
        .to_string();
    let web_ip = world.web_ip();
    world
        .auth_server_mut()
        .zone_mut()
        .add_a(apex.child(OBJECT_HOST_LABEL).expect("valid label"), web_ip);
    for obj in ProbeObject::ALL {
        world.web_server_mut().put(
            &host,
            obj.path(),
            Response::ok(obj.content_type(), object_body(obj)),
        );
    }
    host
}

struct Fetched {
    zid: ZId,
    node_ip: Ipv4Addr,
    result: ObjectResult,
}

/// Fetch one object through a pinned session; None on proxy failure or
/// node churn. Every issued fetch lands in the quality ledger; bodies
/// failing the integrity checks come back quarantined, never as
/// `modified_body`.
fn fetch_object(
    world: &mut World,
    opts: &UsernameOptions,
    host: &str,
    obj: ProbeObject,
    expect_zid: Option<&ZId>,
    country: CountryCode,
    quality: &mut DataQuality,
) -> Option<Fetched> {
    let web_cursor = world.web_server().log().len();
    let uri = Uri::http(host, obj.path());
    let resp = match world.proxy_get(opts, &uri) {
        Ok(resp) => resp,
        Err(e) => {
            quality.record_error(country, &e);
            return None;
        }
    };
    let Some(zid) = resp.debug.final_zid().cloned() else {
        quality.record_failure(country);
        return None;
    };
    if let Some(expected) = expect_zid {
        if &zid != expected {
            // Node churn mid-pair: evidence unusable.
            quality.record_failure(country);
            return None;
        }
    }
    let node_ip = world.web_server().log()[web_cursor..]
        .iter()
        .find(|e| e.path == obj.path())
        .map(|e| e.src)
        .unwrap_or(resp.exit_ip);
    let original = object_body_ref(obj);
    let received_len = resp.body.len();
    let (modified_body, quarantine) = if resp.body == original {
        quality.record(country, delivery_outcome(&resp.debug));
        (None, None)
    } else if received_len < original.len() && original.starts_with(&resp.body) {
        // A strict prefix is transport truncation, not tampering.
        quality.record(country, ProbeOutcome::Truncated);
        (None, Some(Quarantine::Truncated))
    } else {
        // §5's "repeated consistent fetches" rule: a differing body only
        // counts as modification when a second fetch through the same
        // session returns the identical bytes. Disagreement means the
        // payload was damaged in flight, so it is quarantined.
        let confirmed = matches!(
            world.proxy_get(opts, &uri),
            Ok(second) if second.debug.final_zid() == Some(&zid) && second.body == resp.body
        );
        if confirmed {
            quality.record(country, delivery_outcome(&resp.debug));
            (Some(resp.body.clone()), None)
        } else {
            quality.record(country, ProbeOutcome::Quarantined);
            (None, Some(Quarantine::Inconsistent))
        }
    };
    Some(Fetched {
        zid,
        node_ip,
        result: ObjectResult {
            object: obj,
            original_len: original.len(),
            received_len,
            modified_body,
            quarantine,
        },
    })
}

/// Measure the remaining three objects for a node whose HTML fetch is
/// already in hand.
fn measure_rest(
    world: &mut World,
    opts: &UsernameOptions,
    host: &str,
    budget: &mut ByteBudget,
    first: Fetched,
    country: CountryCode,
    quality: &mut DataQuality,
) -> Option<HttpObservation> {
    let mut results = vec![first.result];
    let zid = first.zid;
    for obj in [ProbeObject::Jpeg, ProbeObject::Js, ProbeObject::Css] {
        let need = object_body_ref(obj).len() as u64;
        if !budget.allows(&zid, need) {
            break; // ethics cap: stop measuring this node
        }
        let f = fetch_object(world, opts, host, obj, Some(&zid), country, quality)?;
        budget.charge(&zid, f.result.received_len as u64);
        results.push(f.result);
    }
    Some(HttpObservation {
        zid,
        node_ip: first.node_ip,
        results,
    })
}

/// Run the experiment: phase-1 AS coverage, then phase-2 revisits of
/// flagged ASes.
pub fn run(world: &mut World, cfg: &StudyConfig) -> HttpDataset {
    let scope = ProbeScope::full(world);
    run_scoped(world, cfg, scope)
}

/// Run one population shard (parallel executor entry point).
pub(crate) fn run_shard(world: &mut World, cfg: &StudyConfig, scope: ProbeScope) -> HttpDataset {
    run_scoped(world, cfg, scope)
}

// tft-lint: hot-root — per-probe HTTP experiment loop
fn run_scoped(world: &mut World, cfg: &StudyConfig, scope: ProbeScope) -> HttpDataset {
    let host = provision(world);
    let mut sampler = Sampler::new(
        &scope.counts,
        scope.rng(world.now().as_millis(), SEED_SALT),
        cfg.saturation_window,
        cfg.saturation_min_new,
    )
    .with_session_base(scope.session_base);
    let mut budget = ByteBudget::new(cfg.per_node_byte_cap);
    let mut data = HttpDataset::default();
    // One reusable option set per shard: the customer string is owned
    // once, not re-allocated per sample (DESIGN.md §10).
    let mut opts = UsernameOptions::new(&cfg.customer);
    let mut per_as: HashMap<Asn, usize> = HashMap::new();
    let mut flagged: HashSet<Asn> = HashSet::new();

    // ---- phase 1: three nodes per AS ----------------------------------
    for _ in 0..cfg.max_samples {
        if sampler.saturated() {
            break;
        }
        let (country, session) = sampler.next_probe();
        data.samples_issued += 1;
        opts.country = Some(country);
        opts.session = Some(session);
        let Some(first) = fetch_object(
            world,
            &opts,
            &host,
            ProbeObject::Html,
            None,
            country,
            &mut data.quality,
        ) else {
            sampler.record_miss();
            continue;
        };
        let fresh = sampler.record(&first.zid);
        budget.charge(&first.zid, first.result.received_len as u64);
        if !fresh {
            continue;
        }
        let asn = world.registry.ip_to_asn(first.node_ip).unwrap_or(Asn(0));
        let count = per_as.entry(asn).or_insert(0);
        if *count >= cfg.http_nodes_per_as && !flagged.contains(&asn) {
            data.skipped_quota += 1;
            continue;
        }
        *count += 1;
        if let Some(obs) = measure_rest(
            world,
            &opts,
            &host,
            &mut budget,
            first,
            country,
            &mut data.quality,
        ) {
            if obs.results.iter().any(|r| r.is_modified()) {
                flagged.insert(asn);
            }
            data.observations.push(obs);
        }
    }

    // ---- phase 2: revisit flagged ASes ----------------------------------
    // Deterministic order: HashSet iteration order would leak the hasher's
    // per-process randomness into the sampling stream.
    let mut targets: Vec<Asn> = flagged.iter().copied().collect();
    targets.sort();
    for asn in targets {
        let Some(country) = world.registry.country_of_asn(asn) else {
            continue;
        };
        let mut extra = 0;
        for _ in 0..cfg.http_phase2_budget {
            if extra >= cfg.http_phase2_nodes {
                break;
            }
            let session = sampler.next_probe().1;
            data.samples_issued += 1;
            opts.country = Some(country);
            opts.session = Some(session);
            let Some(first) = fetch_object(
                world,
                &opts,
                &host,
                ProbeObject::Html,
                None,
                country,
                &mut data.quality,
            ) else {
                continue;
            };
            let fresh = sampler.record(&first.zid);
            budget.charge(&first.zid, first.result.received_len as u64);
            if !fresh {
                continue;
            }
            // Rejection sampling: country-targeted, AS-filtered.
            if world.registry.ip_to_asn(first.node_ip) != Some(asn) {
                continue;
            }
            if let Some(obs) = measure_rest(
                world,
                &opts,
                &host,
                &mut budget,
                first,
                country,
                &mut data.quality,
            ) {
                data.observations.push(obs);
                extra += 1;
            }
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_bodies_have_specified_sizes() {
        let sizes: Vec<usize> = ProbeObject::ALL
            .iter()
            .map(|o| object_body(*o).len())
            .collect();
        assert!((8_900..=9_400).contains(&sizes[0]), "html {}", sizes[0]);
        assert_eq!(sizes[1], 39 * 1024);
        assert!((257_000..=264_192).contains(&sizes[2]), "js {}", sizes[2]);
        assert!((2_900..=3_072).contains(&sizes[3]), "css {}", sizes[3]);
    }

    #[test]
    fn object_bodies_are_deterministic() {
        for obj in ProbeObject::ALL {
            assert_eq!(object_body(obj), object_body(obj));
        }
    }

    #[test]
    fn jpeg_body_carries_magic() {
        let j = object_body(ProbeObject::Jpeg);
        assert_eq!(&j[..3], &[0xFF, 0xD8, 0xFF]);
    }
}
