//! A scoped worker pool with deterministic, in-order result collection.
//!
//! This is the concurrency primitive behind the parallel study executor:
//! a fixed number of workers drain a shared queue of indexed tasks inside
//! [`std::thread::scope`], so closures may borrow from the caller's stack
//! (no `'static` bound, no `Arc` plumbing). Three properties matter more
//! than raw speed here:
//!
//! 1. **In-order results.** [`Pool::run`]/[`par_map`] return results in
//!    task-index order, regardless of which worker ran what when. Callers
//!    never observe scheduling.
//! 2. **Panic propagation.** If any task panics, the pool finishes joining
//!    and then re-raises the panic of the *lowest-indexed* failed task via
//!    [`std::panic::resume_unwind`] — deterministic even when several tasks
//!    fail in the same run.
//! 3. **Worker count is a pure throughput knob.** Tasks receive only their
//!    index and payload — never a worker id — so nothing downstream can
//!    accidentally key behaviour (or a seed) on thread identity.
//!
//! `workers == 1` executes inline on the calling thread: no threads are
//! spawned, which keeps single-threaded runs trivially deterministic and
//! makes the pool safe to use in environments where spawning is costly.

use crate::rng::mix64;
use std::cell::UnsafeCell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Hooks bracketing the pool's own setup work: slot-vector construction
/// and worker spawning, which run on the calling thread and scale with the
/// worker count. Instrumentation (the bench allocator's accounting run)
/// registers these to exclude pool-internal bookkeeping from per-run
/// measurements — the study's work is worker-count-invariant, the pool's
/// scaffolding is not, and conflating them turns the invariance evidence
/// into noise. Process-wide, set once; `None` costs one relaxed load.
static SETUP_OBSERVER: OnceLock<SetupObserver> = OnceLock::new();

/// An `(enter, exit)` hook pair bracketing pool setup.
type SetupObserver = (fn(), fn());

/// Register the setup observer (`enter` fires before pool setup on the
/// calling thread, `exit` after the last worker is spawned, before the
/// join). Returns false if an observer was already registered.
pub fn set_setup_observer(enter: fn(), exit: fn()) -> bool {
    SETUP_OBSERVER.set((enter, exit)).is_ok()
}

/// A slot owned by exactly one claimant at a time.
///
/// The pool's atomic cursor hands out each slot index exactly once, so the
/// claiming worker has exclusive access to its input slot, and only that
/// worker ever writes the matching output slot. That claim discipline is
/// what makes the raw `UnsafeCell` sound — there is no lock because there
/// is no contention to arbitrate: the cursor's `fetch_add` is the unique
/// point of synchronization, and `thread::scope`'s join provides the
/// happens-before edge for the collector's reads. The previous
/// implementation paid a `Mutex` lock/unlock per slot per task purely to
/// satisfy the type system; with fine-grained work units (hundreds of tiny
/// tasks) that overhead was measurable.
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: a Slot is only ever accessed by the worker that claimed its index
// from the cursor (exactly once), or by the collector after all workers have
// been joined.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Slot<T> {}

#[allow(unsafe_code)]
impl<T> Slot<T> {
    fn filled(value: T) -> Self {
        Slot(UnsafeCell::new(Some(value)))
    }

    fn empty() -> Self {
        Slot(UnsafeCell::new(None))
    }

    /// Take the value out. Caller must be the slot's unique claimant (or
    /// the post-join collector).
    unsafe fn take(&self) -> Option<T> {
        (*self.0.get()).take()
    }

    /// Fill the slot. Caller must be the slot's unique claimant.
    unsafe fn fill(&self, value: T) {
        *self.0.get() = Some(value);
    }

    /// Post-join drain: the filled value, or the named supervisor error
    /// identifying which result slot wedged and why. Caller must be the
    /// post-join collector (sole remaining accessor).
    unsafe fn drain(&self, index: usize) -> Result<T, SlotWedged> {
        self.take().ok_or(SlotWedged {
            index,
            reason: "worker claimed the task but never filled its result slot",
        })
    }
}

/// Supervisor error: a result slot was never filled after every worker
/// joined. This indicates a pool-internal invariant break (a task index was
/// claimed but its output slot stayed empty), not a task failure — task
/// panics are caught and carried through the slot as payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotWedged {
    /// Task index whose result slot was empty at collection time.
    pub index: usize,
    /// Supervisor diagnosis of the wedge.
    pub reason: &'static str,
}

impl fmt::Display for SlotWedged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool result slot {} wedged: {}", self.index, self.reason)
    }
}

impl std::error::Error for SlotWedged {}

/// A fixed-size scoped worker pool.
///
/// The pool itself is just a validated worker count; all threads live only
/// for the duration of a single [`Pool::run`] call.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with `workers` worker threads.
    ///
    /// # Panics
    /// Panics if `workers == 0` — a pool that can run nothing is a
    /// configuration bug, not a degenerate mode.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "Pool requires at least one worker");
        Pool { workers }
    }

    /// The configured worker count.
    pub fn workers(self) -> usize {
        self.workers
    }

    /// Run `task` once per item of `items`, returning results in item order.
    ///
    /// `task` is called as `task(index, item)`. With one worker the tasks
    /// run inline on the calling thread in index order; with more, workers
    /// claim indices from a shared counter — the *assignment* of tasks to
    /// workers is nondeterministic, but the returned `Vec` is always in
    /// index order, so callers cannot observe it.
    ///
    /// # Panics
    /// If one or more tasks panic, re-raises the payload of the
    /// lowest-indexed panicking task after all workers have stopped.
    #[allow(unsafe_code)]
    pub fn run<T, R, F>(self, items: Vec<T>, task: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| task(i, item))
                .collect();
        }

        let n = items.len();
        let observer = SETUP_OBSERVER.get().copied();
        if let Some((enter, _)) = observer {
            enter();
        }
        // Each slot index is claimed exactly once via the atomic cursor,
        // then drained/filled lock-free by the claiming worker (see
        // [`Slot`]). Slots hold Options so results can be moved out without
        // `R: Default`.
        let inputs: Vec<Slot<T>> = items.into_iter().map(Slot::filled).collect();
        let outputs: Vec<Slot<thread::Result<R>>> = (0..n).map(|_| Slot::empty()).collect();
        let cursor = AtomicUsize::new(0);
        let task = &task;
        let inputs = &inputs;
        let outputs = &outputs;
        let cursor = &cursor;

        thread::scope(|s| {
            for _ in 0..self.workers.min(n) {
                s.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    // SAFETY: `fetch_add` handed index `i` to this worker
                    // alone, so it is the unique accessor of both slots
                    // until the scope joins.
                    let item = unsafe { inputs[i].take() }.expect("pool task claimed twice");
                    // Tasks are required to be panic-safe by contract: a
                    // panicking task's partial effects are confined to its
                    // own inputs, which are dropped with the payload.
                    let result = panic::catch_unwind(AssertUnwindSafe(|| task(i, item)));
                    unsafe { outputs[i].fill(result) };
                });
            }
            // Setup ends here: every worker is spawned and the calling
            // thread only blocks on the implicit join from this point.
            if let Some((_, exit)) = observer {
                exit();
            }
        });

        let mut results = Vec::with_capacity(n);
        let mut first_panic = None;
        for (i, slot) in outputs.iter().enumerate() {
            // SAFETY: every worker has been joined by `thread::scope`, so
            // the collector is the only accessor left.
            let result = match unsafe { slot.drain(i) } {
                Ok(result) => result,
                Err(wedged) => panic::panic_any(wedged),
            };
            match result {
                Ok(r) => results.push(r),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            panic::resume_unwind(payload);
        }
        results
    }

    /// Run `task` once per item under supervision: per-task panics are
    /// contained instead of unwinding, failed tasks are retried up to
    /// [`FaultPolicy::max_retries`] times, and tasks that keep failing are
    /// quarantined into the returned [`TaskReport`].
    ///
    /// Determinism: the main wave runs attempt 0 of every task across the
    /// pool; failures then drain on the *calling* thread in ascending
    /// task-index order. The attempt schedule — which task ran how many
    /// attempts — is therefore a pure function of task behaviour (and the
    /// optional [`FaultInjector`]), never of worker scheduling, so a run
    /// where task `i` succeeded on attempt `k` returns byte-identical
    /// results to one where it succeeded on attempt 0, at any worker count.
    ///
    /// Items are borrowed (not consumed) because a retried task must see
    /// the same input as the failed attempt. Tasks must be idempotent up to
    /// their return value: a panicking attempt's partial effects are the
    /// caller's responsibility to confine.
    ///
    /// Returns `(results, report)` where `results[i]` is `None` exactly
    /// when `report.statuses[i]` is [`TaskStatus::Poisoned`].
    pub fn run_supervised<T, R, F>(
        self,
        items: &[T],
        policy: &FaultPolicy,
        task: F,
    ) -> (Vec<Option<R>>, TaskReport)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let attempt_one = |i: usize, attempt: usize| -> thread::Result<R> {
            panic::catch_unwind(AssertUnwindSafe(|| {
                if let Some(injector) = policy.injector.as_ref() {
                    if injector.should_fail(i, attempt) {
                        panic!("injected fault: task {i}, attempt {attempt}");
                    }
                }
                task(i, &items[i])
            }))
        };

        // Main wave: attempt 0 of every task across the pool. Each attempt
        // is wrapped in `catch_unwind`, so the wave itself never unwinds.
        let first: Vec<thread::Result<R>> = self.run((0..n).collect(), |_, i| attempt_one(i, 0));

        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        let mut statuses = vec![TaskStatus::Ok; n];
        // tft-lint: allow(hot-path-alloc, reason = "once per supervised wave, not per task; empty Vec allocates nothing until a task actually fails")
        let mut failed: Vec<(usize, String)> = Vec::new();
        for (i, outcome) in first.into_iter().enumerate() {
            match outcome {
                Ok(r) => results.push(Some(r)),
                Err(payload) => {
                    failed.push((i, panic_message(payload.as_ref())));
                    results.push(None);
                }
            }
        }

        // Retry drain: sequential, ascending task index, on the calling
        // thread — independent of how the wave was scheduled.
        // tft-lint: allow(hot-path-alloc, reason = "once per supervised wave; empty Vec allocates nothing unless tasks poison")
        let mut quarantined = Vec::new();
        for (i, mut last_msg) in failed {
            let mut recovered = false;
            for attempt in 1..=policy.max_retries {
                match attempt_one(i, attempt) {
                    Ok(r) => {
                        results[i] = Some(r);
                        statuses[i] = TaskStatus::Retried(attempt);
                        recovered = true;
                        break;
                    }
                    Err(payload) => last_msg = panic_message(payload.as_ref()),
                }
            }
            if !recovered {
                statuses[i] = TaskStatus::Poisoned;
                quarantined.push((i, last_msg));
            }
        }

        (
            results,
            TaskReport {
                statuses,
                quarantined,
            },
        )
    }
}

/// Best-effort rendering of a caught panic payload for quarantine records.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        // tft-lint: allow(hot-path-alloc, reason = "failure path only: runs once per caught panic, never on the success path")
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        // tft-lint: allow(hot-path-alloc, reason = "failure path only: runs once per caught panic, never on the success path")
        s.clone()
    } else {
        // tft-lint: allow(hot-path-alloc, reason = "failure path only: runs once per caught panic, never on the success path")
        "non-string panic payload".to_string()
    }
}

/// How [`Pool::run_supervised`] responds to task failure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Additional attempts after the first. `0` contains panics but never
    /// retries — every failed task is quarantined immediately.
    pub max_retries: usize,
    /// Optional deterministic fault injection (test seam).
    pub injector: Option<FaultInjector>,
}

impl FaultPolicy {
    /// A policy that retries each failed task up to `max_retries` times.
    pub fn retries(max_retries: usize) -> Self {
        FaultPolicy {
            max_retries,
            injector: None,
        }
    }

    /// Attach a deterministic fault injector.
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }
}

/// Deterministic transient-panic injection for supervision tests.
///
/// Whether task `i` fails on attempt `a` is a pure function of
/// `(seed, i, a)`: a hash of the seed and task index selects faulty tasks
/// at roughly `fail_per_mille`/1000 probability and assigns each a fault
/// count in `1..=max_faults_per_task`; attempts below that count panic,
/// later attempts succeed. Identical across worker counts and runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjector {
    seed: u64,
    fail_per_mille: u32,
    max_faults_per_task: u32,
}

impl FaultInjector {
    /// An injector failing ~`fail_per_mille`/1000 of tasks, each for
    /// `1..=max_faults_per_task` leading attempts.
    pub fn seeded(seed: u64, fail_per_mille: u32, max_faults_per_task: u32) -> Self {
        FaultInjector {
            seed,
            fail_per_mille,
            max_faults_per_task,
        }
    }

    /// How many leading attempts of task `index` will panic.
    pub fn faults_for(&self, index: usize) -> u32 {
        if self.fail_per_mille == 0 || self.max_faults_per_task == 0 {
            return 0;
        }
        let h = mix64(self.seed ^ mix64(index as u64 ^ 0x7466_745f_6661_756c));
        if (h % 1000) as u32 >= self.fail_per_mille {
            return 0;
        }
        1 + (mix64(h) % u64::from(self.max_faults_per_task)) as u32
    }

    /// Whether attempt `attempt` (0-based) of task `index` should panic.
    pub fn should_fail(&self, index: usize, attempt: usize) -> bool {
        u32::try_from(attempt).is_ok_and(|a| a < self.faults_for(index))
    }
}

/// Per-task outcome under [`Pool::run_supervised`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Succeeded on the first attempt.
    Ok,
    /// Succeeded on retry `n` (after `n` failed attempts).
    Retried(usize),
    /// Failed every attempt; quarantined, result slot is `None`.
    Poisoned,
}

/// Supervision summary returned by [`Pool::run_supervised`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskReport {
    /// One status per task, in task-index order.
    pub statuses: Vec<TaskStatus>,
    /// `(task index, last panic message)` for each poisoned task, in
    /// ascending index order.
    pub quarantined: Vec<(usize, String)>,
}

impl TaskReport {
    /// True when every task succeeded on its first attempt.
    pub fn all_ok(&self) -> bool {
        self.statuses.iter().all(|s| *s == TaskStatus::Ok)
    }

    /// Indices of quarantined tasks, ascending.
    pub fn poisoned(&self) -> Vec<usize> {
        self.quarantined.iter().map(|(i, _)| *i).collect()
    }

    /// Number of tasks that needed at least one retry to succeed.
    pub fn retried(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| matches!(s, TaskStatus::Retried(_)))
            .count()
    }
}

/// Map `f` over `items` on a pool of `workers` threads, preserving order.
///
/// Convenience wrapper over [`Pool::run`] for the common case where the
/// task doesn't need its index.
///
/// # Panics
/// Propagates the lowest-indexed task panic, and panics if `workers == 0`.
pub fn par_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    Pool::new(workers).run(items, |_, item| f(item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        for workers in [1, 2, 3, 8] {
            let out = par_map(workers, (0..100u64).collect(), |x| x * x);
            let expected: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn borrows_from_the_caller_scope() {
        let base = [10u64, 20, 30];
        let out = par_map(4, vec![0usize, 1, 2], |i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn run_passes_indices() {
        let out = Pool::new(4).run(vec!["a", "b", "c"], |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(4, empty, |x| x).is_empty());
        assert_eq!(par_map(4, vec![7u8], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = par_map(16, vec![1u8, 2], |x| x * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn setup_observer_brackets_setup_on_the_calling_thread() {
        use std::sync::atomic::AtomicU32;
        static ENTERS: AtomicU32 = AtomicU32::new(0);
        static EXITS: AtomicU32 = AtomicU32::new(0);
        fn enter() {
            ENTERS.fetch_add(1, Ordering::SeqCst);
        }
        fn exit() {
            EXITS.fetch_add(1, Ordering::SeqCst);
        }
        // First registration wins; the process-wide hook stays set.
        let first = set_setup_observer(enter, exit);
        let second = set_setup_observer(enter, exit);
        assert!(!second || first, "second registration must not override");
        let before_e = ENTERS.load(Ordering::SeqCst);
        let before_x = EXITS.load(Ordering::SeqCst);
        // Inline path (single worker): no setup, observer must not fire.
        let out = Pool::new(1).run(vec![1, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        if first {
            assert_eq!(ENTERS.load(Ordering::SeqCst), before_e);
            assert_eq!(EXITS.load(Ordering::SeqCst), before_x);
        }
        // Threaded path: exactly one enter/exit pair per run.
        let out = Pool::new(4).run(vec![1, 2, 3, 4], |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4, 5]);
        if first {
            assert_eq!(ENTERS.load(Ordering::SeqCst), before_e + 1);
            assert_eq!(EXITS.load(Ordering::SeqCst), before_x + 1);
        }
    }

    #[test]
    fn contention_stress_many_tiny_tasks() {
        // The per-task overhead path: thousands of near-empty tasks hammer
        // the claim cursor from every worker. Every task must run exactly
        // once, every result must land in index order, and nothing may be
        // lost — at every worker count, including oversubscribed ones.
        use std::sync::atomic::{AtomicU64, Ordering};
        const N: u64 = 10_000;
        for workers in [1usize, 2, 8, 16] {
            let executed = AtomicU64::new(0);
            let out = par_map(workers, (0..N).collect(), |x| {
                executed.fetch_add(1, Ordering::Relaxed);
                x.wrapping_mul(2654435761).rotate_left(7)
            });
            assert_eq!(out.len() as u64, N, "workers={workers}: task lost");
            assert_eq!(
                executed.load(Ordering::Relaxed),
                N,
                "workers={workers}: execution count off"
            );
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(
                    v,
                    (i as u64).wrapping_mul(2654435761).rotate_left(7),
                    "workers={workers}: result {i} out of order"
                );
            }
        }
    }

    #[test]
    fn panic_propagates_lowest_index() {
        // Several tasks panic; the surfaced payload must be the
        // lowest-indexed one regardless of scheduling.
        for workers in [1, 2, 8] {
            let err = std::panic::catch_unwind(|| {
                par_map(workers, (0..32u32).collect(), |x| {
                    if x % 5 == 3 {
                        panic!("task {x} failed");
                    }
                    x
                })
            })
            .expect_err("pool must propagate task panics");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string payload".into());
            assert_eq!(msg, "task 3 failed", "workers={workers}");
        }
    }

    #[test]
    fn wedged_slot_reports_index_and_reason() {
        // Regression for the old anonymous `panic!("pool task {i} produced
        // no result")`: the drain path must surface a named error carrying
        // the slot index and a diagnosis.
        let slot: Slot<u32> = Slot::empty();
        // SAFETY: freshly constructed local slot; this thread is the only
        // accessor.
        #[allow(unsafe_code)]
        let err = unsafe { slot.drain(5) }.expect_err("empty slot must wedge");
        assert_eq!(err.index, 5);
        assert!(err.reason.contains("never filled"));
        let shown = err.to_string();
        assert!(shown.contains("slot 5"), "display: {shown}");
        assert!(shown.contains("wedged"), "display: {shown}");
    }

    #[test]
    fn supervised_without_faults_matches_plain_run() {
        for workers in [1, 2, 8] {
            let items: Vec<u64> = (0..50).collect();
            let (out, report) =
                Pool::new(workers)
                    .run_supervised(&items, &FaultPolicy::retries(2), |i, x| x * 3 + i as u64);
            let expected: Vec<Option<u64>> = (0..50).map(|x| Some(x * 3 + x)).collect();
            assert_eq!(out, expected, "workers={workers}");
            assert!(report.all_ok(), "workers={workers}");
            assert_eq!(report.retried(), 0);
            assert!(report.quarantined.is_empty());
        }
    }

    #[test]
    fn supervised_injected_transients_recover_byte_identical() {
        // Inject transient panics that succeed on a later attempt; results
        // and the supervision report must be identical to the fault-free
        // run at every worker count.
        let items: Vec<u64> = (0..200).collect();
        let clean: Vec<Option<u64>> = items.iter().map(|x| Some(x.wrapping_mul(31) ^ 7)).collect();
        let injector = FaultInjector::seeded(0xC0FFEE, 300, 2);
        let faulty: usize = (0..items.len())
            .filter(|&i| injector.faults_for(i) > 0)
            .count();
        assert!(faulty > 10, "injector must actually fire (got {faulty})");
        let mut reports = Vec::new();
        for workers in [1, 2, 8] {
            let policy = FaultPolicy::retries(3).with_injector(injector);
            let (out, report) =
                Pool::new(workers).run_supervised(&items, &policy, |_, x| x.wrapping_mul(31) ^ 7);
            assert_eq!(out, clean, "workers={workers}");
            assert_eq!(report.retried(), faulty, "workers={workers}");
            assert!(report.quarantined.is_empty(), "workers={workers}");
            reports.push(report);
        }
        // The full supervision report — statuses and attempt counts — is
        // itself worker-count-invariant.
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
    }

    #[test]
    fn supervised_quarantines_persistent_failures() {
        let items: Vec<u32> = (0..30).collect();
        for workers in [1, 4] {
            let (out, report) =
                Pool::new(workers).run_supervised(&items, &FaultPolicy::retries(2), |_, x| {
                    if x % 7 == 0 {
                        panic!("task {x} is cursed");
                    }
                    x * 2
                });
            for (i, slot) in out.iter().enumerate() {
                if i % 7 == 0 {
                    assert_eq!(*slot, None, "workers={workers} i={i}");
                    assert_eq!(report.statuses[i], TaskStatus::Poisoned);
                } else {
                    assert_eq!(*slot, Some(i as u32 * 2), "workers={workers} i={i}");
                    assert_eq!(report.statuses[i], TaskStatus::Ok);
                }
            }
            assert_eq!(report.poisoned(), vec![0, 7, 14, 21, 28]);
            let (idx, msg) = &report.quarantined[1];
            assert_eq!(*idx, 7);
            assert!(msg.contains("task 7 is cursed"), "msg: {msg}");
        }
    }

    #[test]
    fn supervised_zero_retries_still_contains_panics() {
        let items = vec![1u8, 2, 3];
        let (out, report) = Pool::new(2).run_supervised(&items, &FaultPolicy::default(), |_, x| {
            if *x == 2 {
                panic!("no second chances");
            }
            *x
        });
        assert_eq!(out, vec![Some(1), None, Some(3)]);
        assert_eq!(report.statuses[1], TaskStatus::Poisoned);
    }

    #[test]
    fn all_tasks_still_complete_when_one_panics() {
        // A panic must not wedge the queue: the remaining tasks run to
        // completion (observable via a side counter) before propagation.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(4, (0..64u32).collect(), |x| {
                if x == 10 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 63);
    }
}
