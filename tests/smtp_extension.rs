//! End-to-end test of the SMTP future-work extension: STARTTLS stripping
//! planted on three ISPs must be recovered by the comparative analysis,
//! with clean networks untouched.

use tft::prelude::*;

struct Run {
    built: BuiltWorld,
    data: tft::tft_core::smtp_exp::SmtpDataset,
    analysis: tft::tft_core::analysis::smtp::SmtpAnalysis,
}

fn run() -> &'static Run {
    use std::sync::OnceLock;
    static RUN: OnceLock<Run> = OnceLock::new();
    RUN.get_or_init(|| {
        let scale = 0.01;
        let mut built = build(&paper_spec(scale, 0x5271));
        let cfg = StudyConfig::scaled(scale);
        let data = tft::tft_core::smtp_exp::run(&mut built.world, &cfg);
        let analysis = tft::tft_core::analysis::smtp::analyze(&data, &built.world, &cfg);
        Run {
            built,
            data,
            analysis,
        }
    })
}

#[test]
fn most_of_the_world_sees_starttls() {
    let r = run();
    assert!(r.analysis.nodes > 3_000, "{} nodes", r.analysis.nodes);
    let rate = r.analysis.starttls_seen as f64 / r.analysis.nodes as f64;
    assert!(rate > 0.95, "STARTTLS visibility {rate:.3}");
}

#[test]
fn stripping_isps_are_recovered() {
    let r = run();
    let isps: Vec<&str> = r
        .analysis
        .stripping_ases
        .iter()
        .map(|row| row.isp.as_str())
        .collect();
    // Three ISPs were planted with strippers.
    for want in ["Globe Telecom", "Meditelecom", "Telkom Indonesia"] {
        assert!(isps.contains(&want), "{want} missing from {isps:?}");
    }
    // And nothing else qualifies.
    for isp in &isps {
        assert!(
            ["Globe Telecom", "Meditelecom", "Telkom Indonesia"].contains(isp),
            "false positive: {isp}"
        );
    }
}

#[test]
fn stripping_matches_ground_truth_per_node() {
    let r = run();
    for obs in &r.data.observations {
        let node = r
            .built
            .world
            .node_ids()
            .find(|id| r.built.world.node(*id).zid == obs.zid)
            .expect("zid resolves");
        let planted = r.built.truth.smtp_stripped.contains(&node);
        let observed_missing = !obs.result.capabilities.starttls;
        assert_eq!(
            planted, observed_missing,
            "node {} planted={planted} observed_missing={observed_missing}",
            obs.zid
        );
    }
}

#[test]
fn clean_paths_complete_the_tls_upgrade() {
    let r = run();
    let upgraded = r
        .data
        .observations
        .iter()
        .filter(|o| o.result.tls_chain.is_some())
        .count();
    assert!(
        upgraded > 0 && upgraded == r.analysis.starttls_seen - r.analysis.upgrade_refused,
        "upgraded={upgraded} seen={} refused={}",
        r.analysis.starttls_seen,
        r.analysis.upgrade_refused
    );
    // Upgraded chains validate against the public store.
    let now = r.built.world.now();
    for obs in r
        .data
        .observations
        .iter()
        .filter(|o| o.result.tls_chain.is_some())
    {
        let chain = obs.result.tls_chain.as_ref().unwrap();
        assert!(
            tft::certs::verify_chain(chain, &obs.mail_host, now, &r.built.world.root_store).is_ok(),
            "mail chain for {} should validate",
            obs.mail_host
        );
    }
}

#[test]
fn render_mentions_stripping_ases() {
    let r = run();
    let text = tft::tft_core::analysis::smtp::render(&r.analysis);
    assert!(text.contains("STARTTLS stripping"));
    assert!(text.contains("Globe Telecom"));
}
