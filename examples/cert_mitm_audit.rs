//! Certificate-replacement audit: the §6 pipeline plus a close-up of the
//! invalid-certificate masking hazard on a single intercepted node.
//!
//! ```sh
//! cargo run --release --example cert_mitm_audit [scale]
//! ```

use tft::certs::{verify_chain, CertError};
use tft::prelude::*;
use tft::tft_core::report::tables;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    println!("building calibrated world (scale {scale})…");
    let mut built = build(&paper_spec(scale, 0x7715));
    let cfg = StudyConfig::scaled(scale);

    println!("running the two-phase HTTPS experiment…");
    let data = tft::tft_core::https_exp::run(&mut built.world, &cfg);
    println!(
        "  {} sessions issued, {} nodes measured, {} skipped (no rankings for country)",
        data.samples_issued,
        data.observations.len(),
        data.skipped_unranked
    );
    let analysis = tft::tft_core::analysis::https::analyze(&data, &built.world, &cfg);
    print!("{}", tables::table8(&analysis));

    // Close-up: find one node whose invalid-site certificate was masked.
    println!("\nclose-up — the invalid-certificate masking hazard (§6.2):");
    let apex = built.world.auth_apex().to_string();
    let invalid_host = format!("invalid-selfsigned.{apex}");
    let invalid_sym = built
        .world
        .site_symbols
        .lookup(&invalid_host)
        .expect("study site is interned at world build");
    let now = built.world.now();
    for obs in &data.observations {
        let Some(probe) = obs.probes.iter().find(|p| p.host == invalid_sym) else {
            continue;
        };
        let expected = built.world.expected_chain(&invalid_host).unwrap();
        if tft::certs::exact_match(&probe.chain, &expected[0]) {
            continue; // untouched
        }
        let leaf = &probe.chain[0];
        let verdict = verify_chain(&probe.chain, &invalid_host, now, &built.world.root_store);
        println!("  node {}:", obs.zid);
        println!("    original: self-signed (browser would warn)");
        println!("    presented issuer: {}", leaf.issuer);
        match verdict {
            Err(CertError::UnknownIssuer) => println!(
                "    public roots reject it — but the product installed its own root,\n    \
                 so THIS node's browser shows a clean padlock on an invalid site"
            ),
            other => println!("    public-root verdict: {other:?}"),
        }
        break;
    }
}
