//! Ground truth: what was actually planted, derived from the built world.
//!
//! The analysis pipeline never touches this; the scorer compares the
//! pipeline's *inferences* (from proxy responses and server logs) against
//! these facts to produce the paper-vs-measured record in EXPERIMENTS.md.

use inetdb::CountryCode;
use middlebox::url_domain;
use proxynet::{NodeId, ResolverChoice, World};
use std::collections::{BTreeMap, BTreeSet};

/// Where a node's NXDOMAIN hijack actually happens.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum DnsHijackSource {
    /// The ISP's resolver (label = ISP organization name).
    IspResolver(String),
    /// A public resolver service (label = service organization name).
    PublicResolver(String),
    /// A transparent in-path proxy (label = ISP organization name).
    TransparentProxy(String),
    /// End-host software (label = its landing domain).
    EndHost(String),
}

/// The planted facts.
#[derive(Debug, Default)]
pub struct GroundTruth {
    /// Total nodes in the world.
    pub total_nodes: usize,
    /// Per-country node counts.
    pub nodes_per_country: BTreeMap<CountryCode, usize>,
    /// Nodes whose NXDOMAIN responses get hijacked, with the true source.
    pub dns_hijacked: BTreeMap<NodeId, DnsHijackSource>,
    /// Nodes whose HTML fetches get injected, with the signature needle.
    pub html_injected: BTreeMap<NodeId, String>,
    /// Nodes whose JPEG fetches get transcoded (tethered behind a
    /// transcoding carrier).
    pub image_transcoded: BTreeSet<NodeId>,
    /// Nodes whose JS fetches get replaced by block pages.
    pub js_blocked: BTreeSet<NodeId>,
    /// Nodes whose CSS fetches get replaced.
    pub css_blocked: BTreeSet<NodeId>,
    /// Nodes whose HTML fetches get replaced by block pages.
    pub html_blocked: BTreeSet<NodeId>,
    /// Nodes with a TLS interceptor, with the issuer common name.
    pub tls_intercepted: BTreeMap<NodeId, String>,
    /// Nodes monitored, with the entity names.
    pub monitored: BTreeMap<NodeId, Vec<String>>,
    /// Nodes whose access network strips STARTTLS (SMTP extension).
    pub smtp_stripped: BTreeSet<NodeId>,
}

impl GroundTruth {
    /// Derive the planted facts from a built world.
    pub fn from_world(world: &World) -> GroundTruth {
        let mut truth = GroundTruth {
            total_nodes: world.node_count(),
            ..Default::default()
        };
        for id in world.node_ids() {
            let node = world.node(id);
            *truth.nodes_per_country.entry(node.country).or_insert(0) += 1;

            // DNS: mirror the flow order — resolver, transparent proxy,
            // end-host software.
            let resolver_hijack = match node.resolver {
                ResolverChoice::Isp(ip) => world
                    .resolver_def(ip)
                    .and_then(|d| d.hijacker.as_ref())
                    .map(|_| {
                        DnsHijackSource::IspResolver(
                            world
                                .registry
                                .org_of_ip(ip)
                                .map(|o| o.name.clone())
                                .unwrap_or_else(|| "unknown".into()),
                        )
                    }),
                ResolverChoice::Public(ip) => world
                    .resolver_def(ip)
                    .and_then(|d| d.hijacker.as_ref())
                    .map(|_| {
                        DnsHijackSource::PublicResolver(
                            world
                                .registry
                                .org_of_ip(ip)
                                .map(|o| o.name.clone())
                                .unwrap_or_else(|| "unknown".into()),
                        )
                    }),
                ResolverChoice::GoogleDns => None,
            };
            let source = resolver_hijack
                .or_else(|| {
                    world.transparent_dns_of(node.asn).map(|_| {
                        DnsHijackSource::TransparentProxy(
                            world
                                .registry
                                .asn_to_org(node.asn)
                                .map(|o| o.name.clone())
                                .unwrap_or_else(|| "unknown".into()),
                        )
                    })
                })
                .or_else(|| {
                    node.software.dns_hijacker.as_ref().map(|h| {
                        DnsHijackSource::EndHost(
                            url_domain(&h.landing_urls[0]).unwrap_or_else(|| "unknown".into()),
                        )
                    })
                });
            if let Some(src) = source {
                truth.dns_hijacked.insert(id, src);
            }

            // HTTP.
            let isp = world.isp_http_of(node.asn);
            if let Some(sig) = node
                .software
                .html_injector
                .as_ref()
                .map(|i| i.signature.needle().to_string())
                .or_else(|| {
                    isp.and_then(|c| c.injector.as_ref())
                        .map(|i| i.signature.needle().to_string())
                })
            {
                truth.html_injected.insert(id, sig);
            }
            if node.mobile_tethered && isp.map(|c| c.transcoder.is_some()).unwrap_or(false) {
                truth.image_transcoded.insert(id);
            }
            if let Some(b) = &node.software.blocker {
                if b.js {
                    truth.js_blocked.insert(id);
                }
                if b.css {
                    truth.css_blocked.insert(id);
                }
                if b.html {
                    truth.html_blocked.insert(id);
                }
            }

            // HTTPS.
            if let Some(mitm) = &node.software.tls_interceptor {
                truth
                    .tls_intercepted
                    .insert(id, mitm.issuer().common_name.clone());
            }

            // SMTP extension.
            if world
                .isp_smtp_of(node.asn)
                .map(|m| m.strip_starttls)
                .unwrap_or(false)
            {
                truth.smtp_stripped.insert(id);
            }

            // Monitoring.
            if !node.software.monitors.is_empty() {
                let names: Vec<String> = node
                    .software
                    .monitors
                    .iter()
                    .map(|&i| world.monitor_entities()[i].name.clone())
                    .collect();
                truth.monitored.insert(id, names);
            }
        }
        truth
    }

    /// Fraction of nodes with hijacked DNS.
    pub fn dns_hijack_rate(&self) -> f64 {
        self.dns_hijacked.len() as f64 / self.total_nodes as f64
    }

    /// Attribution mix `(isp, public, other)` over hijacked nodes.
    pub fn dns_attribution_mix(&self) -> (f64, f64, f64) {
        let total = self.dns_hijacked.len().max(1) as f64;
        let mut isp = 0.0;
        let mut public = 0.0;
        let mut other = 0.0;
        for src in self.dns_hijacked.values() {
            match src {
                DnsHijackSource::IspResolver(_) => isp += 1.0,
                DnsHijackSource::PublicResolver(_) => public += 1.0,
                DnsHijackSource::TransparentProxy(_) | DnsHijackSource::EndHost(_) => other += 1.0,
            }
        }
        (isp / total, public / total, other / total)
    }

    /// Fraction of nodes monitored.
    pub fn monitor_rate(&self) -> f64 {
        self.monitored.len() as f64 / self.total_nodes as f64
    }

    /// Fraction of nodes with a TLS interceptor.
    pub fn tls_rate(&self) -> f64 {
        self.tls_intercepted.len() as f64 / self.total_nodes as f64
    }
}
