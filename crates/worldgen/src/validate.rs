//! Spec validation: catch inconsistent world descriptions with errors
//! instead of panics deep inside the builder.

use crate::spec::WorldSpec;
use std::fmt;

/// A problem found in a [`WorldSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// `scale` must be positive and finite.
    BadScale(f64),
    /// A country code is not two ASCII letters.
    BadCountryCode(String),
    /// The same country appears twice.
    DuplicateCountry(String),
    /// An ISP has no nodes and no reason to exist.
    EmptyIsp(String),
    /// Per-node probability shares must sum to ≤ 1.
    BadResolverShares {
        /// The ISP.
        isp: String,
        /// google + public share.
        sum: f64,
    },
    /// A transcoder ratio is outside (0,1), or the tethered share outside
    /// \[0,1\].
    BadTranscoder(String),
    /// `monitored_share` / `monitor_attach` references an entity that is
    /// not declared in `monitors`.
    UnknownMonitorEntity(String),
    /// Two ISPs claim the same explicit ASN.
    DuplicateAsn(u32),
    /// The probe apex does not parse as a DNS name.
    BadProbeApex(String),
    /// A TLS interceptor's per-site fraction is outside (0,1].
    BadSelectivity(String),
    /// A campaign rule has a bad probability, an inverted time window, or
    /// an invalid country scope.
    BadFaultRule {
        /// Index into `campaign`.
        index: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadScale(s) => write!(f, "scale {s} must be positive and finite"),
            SpecError::BadCountryCode(c) => write!(f, "bad country code {c:?}"),
            SpecError::DuplicateCountry(c) => write!(f, "country {c} declared twice"),
            SpecError::EmptyIsp(i) => write!(f, "ISP {i} has zero nodes"),
            SpecError::BadResolverShares { isp, sum } => {
                write!(f, "ISP {isp}: google+public share {sum} exceeds 1")
            }
            SpecError::BadTranscoder(i) => write!(f, "ISP {i}: invalid transcoder config"),
            SpecError::UnknownMonitorEntity(e) => {
                write!(f, "monitor entity {e:?} is referenced but not declared")
            }
            SpecError::DuplicateAsn(a) => write!(f, "ASN {a} claimed by two ISPs"),
            SpecError::BadProbeApex(a) => write!(f, "probe apex {a:?} is not a valid name"),
            SpecError::BadSelectivity(i) => {
                write!(f, "interceptor {i}: per-site fraction outside (0,1]")
            }
            SpecError::BadFaultRule { index, reason } => {
                write!(f, "campaign rule {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Validate a spec, returning every problem found.
pub fn validate(spec: &WorldSpec) -> Result<(), Vec<SpecError>> {
    let mut errors = Vec::new();
    if !(spec.scale.is_finite() && spec.scale > 0.0) {
        errors.push(SpecError::BadScale(spec.scale));
    }
    if dnswire::DnsName::parse(&spec.probe_apex).is_err() {
        errors.push(SpecError::BadProbeApex(spec.probe_apex.clone()));
    }
    let entity_names: std::collections::HashSet<&str> =
        spec.monitors.iter().map(|m| m.name.as_str()).collect();
    let mut seen_countries = std::collections::HashSet::new();
    let mut seen_asns = std::collections::HashSet::new();
    for country in &spec.countries {
        let code_ok =
            country.code.len() == 2 && country.code.bytes().all(|b| b.is_ascii_alphabetic());
        if !code_ok {
            errors.push(SpecError::BadCountryCode(country.code.clone()));
        }
        if !seen_countries.insert(country.code.to_ascii_uppercase()) {
            errors.push(SpecError::DuplicateCountry(country.code.clone()));
        }
        for isp in &country.isps {
            if isp.nodes == 0 {
                errors.push(SpecError::EmptyIsp(isp.name.clone()));
            }
            let share_sum = isp.google_dns_share + isp.public_dns_share;
            if !(0.0..=1.0).contains(&share_sum)
                || isp.google_dns_share < 0.0
                || isp.public_dns_share < 0.0
            {
                errors.push(SpecError::BadResolverShares {
                    isp: isp.name.clone(),
                    sum: share_sum,
                });
            }
            if let Some(t) = &isp.transcoder {
                let ratios_ok = !t.ratios.is_empty()
                    && t.ratios.iter().all(|r| (0.0..1.0).contains(r) && *r > 0.0);
                if !ratios_ok || !(0.0..=1.0).contains(&t.tethered_share) {
                    errors.push(SpecError::BadTranscoder(isp.name.clone()));
                }
            }
            if let Some((entity, _)) = &isp.monitored_share {
                if !entity_names.contains(entity.as_str()) {
                    errors.push(SpecError::UnknownMonitorEntity(entity.clone()));
                }
            }
            for &asn in &isp.explicit_asns {
                if !seen_asns.insert(asn) {
                    errors.push(SpecError::DuplicateAsn(asn));
                }
            }
        }
    }
    for att in &spec.endhost.monitor_attach {
        if !entity_names.contains(att.entity.as_str()) {
            errors.push(SpecError::UnknownMonitorEntity(att.entity.clone()));
        }
    }
    for t in &spec.endhost.tls_interceptors {
        if !(t.per_site_fraction > 0.0 && t.per_site_fraction <= 1.0) {
            errors.push(SpecError::BadSelectivity(t.issuer.clone()));
        }
    }
    for (index, rule) in spec.campaign.iter().enumerate() {
        // The injector's own validating constructor is the authority on
        // probability ranges (NaN, negatives, >1).
        if let Err(e) = netsim::FaultInjector::validated(
            rule.drop_chance,
            rule.corrupt_chance,
            rule.truncate_chance,
            rule.stall_chance,
            rule.delay_chance,
            netsim::Latency::fixed(rule.delay_spike_ms),
        ) {
            errors.push(SpecError::BadFaultRule {
                index,
                reason: e.to_string(),
            });
        }
        if let (Some(start), Some(end)) = (rule.start_s, rule.end_s) {
            if end <= start {
                errors.push(SpecError::BadFaultRule {
                    index,
                    reason: format!("window [{start}, {end}) is empty or inverted"),
                });
            }
        }
        if let Some(cc) = &rule.country {
            if !(cc.len() == 2 && cc.bytes().all(|b| b.is_ascii_alphabetic())) {
                errors.push(SpecError::BadFaultRule {
                    index,
                    reason: format!("bad country scope {cc:?}"),
                });
            }
        }
        if rule.flap_down_s > 0 && rule.flap_up_s == 0 {
            errors.push(SpecError::BadFaultRule {
                index,
                reason: "flap with zero up-phase is a permanent outage; use `outage`".into(),
            });
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::paper_spec;
    use crate::scenarios::{clean_spec, smoke_spec};
    use crate::spec::*;

    #[test]
    fn builtin_scenarios_validate() {
        assert_eq!(validate(&paper_spec(0.05, 1)), Ok(()));
        assert_eq!(validate(&clean_spec(0.05, 1)), Ok(()));
        assert_eq!(validate(&smoke_spec(1)), Ok(()));
    }

    fn broken() -> WorldSpec {
        let mut spec = smoke_spec(1);
        spec.scale = -1.0;
        spec.probe_apex = "not a name!".into();
        spec.countries[0].code = "USA".into();
        spec.countries[0].isps[0].nodes = 0;
        spec.countries[0].isps[0].google_dns_share = 0.9;
        spec.countries[0].isps[0].public_dns_share = 0.8;
        spec.countries[0].isps[1].monitored_share = Some(("Ghost".into(), 0.5));
        spec.endhost.tls_interceptors[0].per_site_fraction = 0.0;
        spec
    }

    #[test]
    fn broken_spec_reports_every_problem() {
        let errs = validate(&broken()).unwrap_err();
        let has = |pred: fn(&SpecError) -> bool| errs.iter().any(pred);
        assert!(has(|e| matches!(e, SpecError::BadScale(_))));
        assert!(has(|e| matches!(e, SpecError::BadProbeApex(_))));
        assert!(has(|e| matches!(e, SpecError::BadCountryCode(_))));
        assert!(has(|e| matches!(e, SpecError::EmptyIsp(_))));
        assert!(has(|e| matches!(e, SpecError::BadResolverShares { .. })));
        assert!(has(|e| matches!(e, SpecError::UnknownMonitorEntity(_))));
        assert!(has(|e| matches!(e, SpecError::BadSelectivity(_))));
    }

    #[test]
    fn duplicate_asn_detected() {
        let mut spec = smoke_spec(1);
        spec.countries[0].isps[0].explicit_asns = vec![777];
        spec.countries[1].isps[0].explicit_asns = vec![777];
        let errs = validate(&spec).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SpecError::DuplicateAsn(777))));
    }

    #[test]
    fn duplicate_country_detected() {
        let mut spec = smoke_spec(1);
        spec.countries[1].code = "aa".into();
        let errs = validate(&spec).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SpecError::DuplicateCountry(_))));
    }

    #[test]
    fn errors_render() {
        for e in validate(&broken()).unwrap_err() {
            assert!(!e.to_string().is_empty());
        }
    }
}
