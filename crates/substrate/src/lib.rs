//! # substrate — first-party low-level infrastructure
//!
//! Everything below the simulation that would conventionally come from an
//! external crate, rebuilt in-tree so the whole workspace compiles and tests
//! **with zero network access**:
//!
//! - [`rng`]: deterministic randomness — splitmix64 seeding, a
//!   xoshiro256++ core generator, and the [`rng::Rng`]/[`rng::RngExt`]
//!   trait pair the rest of the workspace consumes (uniform ints/floats,
//!   ranges, booleans, shuffling, weighted choice);
//! - [`json`]: a small JSON value model, strict parser, compact/pretty
//!   printers, and the [`json::ToJson`]/[`json::FromJson`] trait pair plus
//!   the [`json_struct!`]/[`json_enum!`] derive macros;
//! - [`hash`]: a stable 64-bit content hash (FNV-1a + splitmix64 finish)
//!   with pinned golden values, for content-addressed cache keys;
//! - [`qc`]: a seeded property-testing mini-framework — composable
//!   generators, configurable case counts, input shrinking, and
//!   failure-seed replay;
//! - [`mod@bench`]: a warmup+samples micro-benchmark harness reporting
//!   min/median/p95 per benchmark with machine-readable JSON output;
//! - [`pool`]: a scoped worker pool with fixed worker count, panic
//!   propagation, and deterministic in-order result collection, plus a
//!   [`pool::par_map`] helper and a supervised mode
//!   ([`pool::Pool::run_supervised`]) that contains per-task panics,
//!   retries deterministically, and quarantines persistent failures.
//!
//! ## Why first-party
//!
//! The reproduction's whole claim is *determinism from a single seed*
//! (DESIGN.md §5). A build that needs a package registry cannot be replayed
//! hermetically; this crate replaces `rand`, `serde`/`serde_json`,
//! `proptest`, and `criterion` with implementations small enough to audit
//! and stable enough to pin golden values against. `cargo tree` over this
//! workspace shows path dependencies only.

// `deny`, not `forbid`: the one sanctioned exception is `pool`'s
// claim-by-cursor slot (a `UnsafeCell` whose exclusive-access discipline is
// documented at the type), which removes a per-task Mutex round-trip from
// the worker pool's hot path. Everything else in the crate stays safe code,
// and any new `unsafe` needs its own reviewed `#[allow]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod hash;
pub mod intern;
pub mod json;
pub mod pool;
pub mod qc;
pub mod rng;

pub use hash::{stable64, Hasher64};
pub use json::{FromJson, Json, JsonError, Num, ToJson};
pub use pool::{par_map, FaultInjector, FaultPolicy, Pool, TaskReport, TaskStatus};
pub use rng::{Rng, RngExt, SplitMix64, Xoshiro256pp};
