//! A TTL-honoring resolver cache.
//!
//! Real recursive resolvers cache aggressively — which is exactly why the
//! paper generates a **unique domain name per probe**: a cached answer
//! would bypass the authoritative server and blind the measurement. This
//! cache makes that design constraint testable: wire it into a resolver
//! model and unique names always miss while repeated names stop hitting
//! the authority.

use crate::name::DnsName;
use crate::wire::{QType, Rcode, Record};
use netsim::{SimDuration, SimTime};
use std::collections::HashMap;

/// A cached answer: either records or a negative (NXDOMAIN/NODATA) entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// Positive answer.
    Records(Vec<Record>),
    /// Negative answer with the rcode that produced it.
    Negative(Rcode),
}

#[derive(Debug, Clone)]
struct Entry {
    answer: CachedAnswer,
    expires: SimTime,
}

/// A `(name, qtype)`-keyed cache with per-record TTLs and a negative TTL.
#[derive(Debug, Clone, Default)]
pub struct DnsCache {
    entries: HashMap<(DnsName, u16), Entry>,
    hits: u64,
    misses: u64,
}

/// Negative answers are cached for the zone's SOA minimum in real life; we
/// use a flat five minutes.
pub const NEGATIVE_TTL: SimDuration = SimDuration::from_secs(300);

impl DnsCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a fresh entry.
    pub fn get(&mut self, name: &DnsName, qtype: QType, now: SimTime) -> Option<CachedAnswer> {
        let key = (name.clone(), qtype.code());
        match self.entries.get(&key) {
            Some(e) if e.expires > now => {
                self.hits += 1;
                Some(e.answer.clone())
            }
            Some(_) => {
                self.entries.remove(&key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a positive answer; the entry lives for the smallest record
    /// TTL.
    ///
    /// # Panics
    /// Panics on an empty record set — cache [`DnsCache::put_negative`]
    /// instead.
    pub fn put(&mut self, name: DnsName, qtype: QType, records: Vec<Record>, now: SimTime) {
        assert!(!records.is_empty(), "positive entries need records");
        // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "documented API-contract panic: the assert above guarantees records is non-empty")
        let ttl = records.iter().map(|r| r.ttl).min().expect("non-empty");
        self.entries.insert(
            (name, qtype.code()),
            Entry {
                answer: CachedAnswer::Records(records),
                expires: now + SimDuration::from_secs(ttl as u64),
            },
        );
    }

    /// Insert a negative answer.
    pub fn put_negative(&mut self, name: DnsName, qtype: QType, rcode: Rcode, now: SimTime) {
        self.entries.insert(
            (name, qtype.code()),
            Entry {
                answer: CachedAnswer::Negative(rcode),
                expires: now + NEGATIVE_TTL,
            },
        );
    }

    /// Entries currently stored (including expired-but-unswept).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Remove expired entries.
    pub fn sweep(&mut self, now: SimTime) {
        self.entries.retain(|_, e| e.expires > now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::RData;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn a_record(n: &str, ttl: u32) -> Record {
        Record {
            name: name(n),
            ttl,
            rdata: RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        }
    }

    #[test]
    fn positive_hit_until_ttl() {
        let mut c = DnsCache::new();
        let t0 = SimTime::EPOCH;
        c.put(
            name("www.example.com"),
            QType::A,
            vec![a_record("www.example.com", 60)],
            t0,
        );
        assert!(c
            .get(
                &name("www.example.com"),
                QType::A,
                t0 + SimDuration::from_secs(59)
            )
            .is_some());
        assert!(c
            .get(
                &name("www.example.com"),
                QType::A,
                t0 + SimDuration::from_secs(61)
            )
            .is_none());
    }

    #[test]
    fn smallest_ttl_wins() {
        let mut c = DnsCache::new();
        let t0 = SimTime::EPOCH;
        c.put(
            name("x.example"),
            QType::A,
            vec![a_record("x.example", 300), a_record("x.example", 30)],
            t0,
        );
        assert!(c
            .get(
                &name("x.example"),
                QType::A,
                t0 + SimDuration::from_secs(31)
            )
            .is_none());
    }

    #[test]
    fn negative_caching() {
        let mut c = DnsCache::new();
        let t0 = SimTime::EPOCH;
        c.put_negative(name("nope.example"), QType::A, Rcode::NxDomain, t0);
        assert_eq!(
            c.get(&name("nope.example"), QType::A, t0),
            Some(CachedAnswer::Negative(Rcode::NxDomain))
        );
        assert!(c
            .get(
                &name("nope.example"),
                QType::A,
                t0 + NEGATIVE_TTL + SimDuration::from_secs(1)
            )
            .is_none());
    }

    #[test]
    fn qtype_is_part_of_the_key() {
        let mut c = DnsCache::new();
        let t0 = SimTime::EPOCH;
        c.put(
            name("x.example"),
            QType::A,
            vec![a_record("x.example", 60)],
            t0,
        );
        assert!(c.get(&name("x.example"), QType::Aaaa, t0).is_none());
        assert!(c.get(&name("x.example"), QType::A, t0).is_some());
    }

    #[test]
    fn unique_probe_names_never_hit() {
        // The paper's design constraint: per-probe unique names defeat
        // caching entirely.
        let mut c = DnsCache::new();
        let t0 = SimTime::EPOCH;
        for i in 0..100 {
            let n = name(&format!("d1-{i}.tft-probe.example"));
            assert!(c.get(&n, QType::A, t0).is_none());
            c.put(n, QType::A, vec![a_record("x.example", 60)], t0);
        }
        let (hits, misses) = c.stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 100);
    }

    #[test]
    fn sweep_drops_expired() {
        let mut c = DnsCache::new();
        let t0 = SimTime::EPOCH;
        c.put(
            name("a.example"),
            QType::A,
            vec![a_record("a.example", 10)],
            t0,
        );
        c.put(
            name("b.example"),
            QType::A,
            vec![a_record("b.example", 1000)],
            t0,
        );
        c.sweep(t0 + SimDuration::from_secs(500));
        assert_eq!(c.len(), 1);
    }
}
