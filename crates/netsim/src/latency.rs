//! Latency models for simulated network paths.
//!
//! Latency only matters to this reproduction where the paper *measures time*
//! (the content-monitoring delay CDFs of Figure 5) or where protocol behaviour
//! depends on it (Luminati's 60-second session stickiness, retry timeouts).
//! We therefore keep the model simple and explicit: a base propagation delay
//! plus uniform jitter, both configurable per path class.

use crate::rng::{RngExt, SimRng};
use crate::time::SimDuration;

/// A latency distribution: `base + U(0, jitter)` milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latency {
    /// Fixed propagation component.
    pub base_ms: u64,
    /// Upper bound of the uniform jitter component.
    pub jitter_ms: u64,
}

impl Latency {
    /// A constant latency with no jitter.
    pub const fn fixed(ms: u64) -> Self {
        Latency {
            base_ms: ms,
            jitter_ms: 0,
        }
    }

    /// Latency of `base` plus uniform jitter in `[0, jitter)`.
    pub const fn jittered(base_ms: u64, jitter_ms: u64) -> Self {
        Latency { base_ms, jitter_ms }
    }

    /// Sample one delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let jitter = if self.jitter_ms == 0 {
            0
        } else {
            rng.random_range(0..self.jitter_ms)
        };
        SimDuration::from_millis(self.base_ms + jitter)
    }

    /// The worst-case delay this model can produce.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_millis(self.base_ms + self.jitter_ms.saturating_sub(1))
    }
}

/// Per-hop latency configuration for the proxied request path of Figure 1.
///
/// Numbers are loose approximations of real-world RTT components; the
/// reproduction's claims never depend on their absolute values.
#[derive(Debug, Clone, Copy)]
pub struct PathLatencies {
    /// Measurement client to the super proxy.
    pub client_to_super: Latency,
    /// Super proxy to its DNS resolver (Google anycast).
    pub super_to_dns: Latency,
    /// Super proxy to an exit node (varies widely: residential links).
    pub super_to_exit: Latency,
    /// Exit node to its configured DNS resolver.
    pub exit_to_dns: Latency,
    /// Exit node to an origin server.
    pub exit_to_origin: Latency,
}

impl Default for PathLatencies {
    fn default() -> Self {
        PathLatencies {
            client_to_super: Latency::jittered(20, 10),
            super_to_dns: Latency::jittered(2, 3),
            super_to_exit: Latency::jittered(60, 120),
            exit_to_dns: Latency::jittered(10, 30),
            exit_to_origin: Latency::jittered(40, 80),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_is_constant() {
        let mut rng = SimRng::new(1);
        let l = Latency::fixed(25);
        for _ in 0..10 {
            assert_eq!(l.sample(&mut rng), SimDuration::from_millis(25));
        }
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let mut rng = SimRng::new(2);
        let l = Latency::jittered(10, 5);
        for _ in 0..200 {
            let d = l.sample(&mut rng).as_millis();
            assert!((10..15).contains(&d), "sample {d} out of [10,15)");
        }
    }

    #[test]
    fn jitter_actually_varies() {
        let mut rng = SimRng::new(3);
        let l = Latency::jittered(0, 100);
        let samples: std::collections::HashSet<u64> =
            (0..50).map(|_| l.sample(&mut rng).as_millis()).collect();
        assert!(samples.len() > 10, "expected varied samples");
    }
}
