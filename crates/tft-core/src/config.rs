//! Study configuration: sampling budgets and analysis thresholds.
//!
//! The paper's thresholds (≥100 nodes per country group, ≥10 per DNS
//! server, ≥5 per content domain) assume a 753k-node population. A scaled
//! world needs proportionally scaled thresholds or every group falls under
//! them; [`StudyConfig::scaled`] handles that.

/// Sampling and analysis parameters for one study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Luminati customer name (billing key).
    pub customer: String,
    /// Stop sampling an experiment after this many proxy sessions.
    pub max_samples: usize,
    /// Saturation window: stop when fewer than `saturation_min_new` of the
    /// last `saturation_window` samples discovered a new exit node.
    pub saturation_window: usize,
    /// See [`StudyConfig::saturation_window`].
    pub saturation_min_new: usize,
    /// Country groups need at least this many measured nodes (paper: 100).
    pub min_nodes_per_country: usize,
    /// DNS-server groups need at least this many nodes (paper: 10).
    pub min_nodes_per_dns_server: usize,
    /// A server hijacking at least this share of its nodes counts as a
    /// hijacking server (paper: 0.9).
    pub hijacking_server_share: f64,
    /// Content domains reported when seen on at least this many nodes
    /// (paper: 5).
    pub min_nodes_per_domain: usize,
    /// AS groups in the HTTP analysis need at least this many nodes
    /// (paper: 10).
    pub min_nodes_per_as: usize,
    /// Phase-1 nodes measured per AS in the HTTP experiment (paper: 3).
    pub http_nodes_per_as: usize,
    /// Extra nodes sought per flagged AS in HTTP phase 2.
    pub http_phase2_nodes: usize,
    /// Budget for phase-2 rejection sampling, per flagged AS.
    pub http_phase2_budget: usize,
    /// Observation window after the monitoring experiment (paper: 24 h).
    pub monitor_window_hours: u64,
    /// Per-node download cap in bytes (ethics, §3.4: 1 MB per zID).
    pub per_node_byte_cap: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            customer: "tft-study".into(),
            max_samples: 2_000_000,
            saturation_window: 600,
            saturation_min_new: 30,
            min_nodes_per_country: 100,
            min_nodes_per_dns_server: 10,
            hijacking_server_share: 0.9,
            min_nodes_per_domain: 5,
            min_nodes_per_as: 10,
            http_nodes_per_as: 3,
            http_phase2_nodes: 25,
            http_phase2_budget: 400,
            monitor_window_hours: 24,
            per_node_byte_cap: 1_000_000,
        }
    }
}

impl StudyConfig {
    /// Thresholds proportional to a world built at `scale` (1.0 = paper
    /// scale). Budgets are left alone; group-size thresholds shrink but
    /// never below small floors that keep the statistics meaningful.
    pub fn scaled(scale: f64) -> StudyConfig {
        let t = |paper: usize, floor: usize| -> usize {
            (((paper as f64) * scale).round() as usize).max(floor)
        };
        StudyConfig {
            min_nodes_per_country: t(100, 8),
            min_nodes_per_dns_server: t(10, 3),
            min_nodes_per_domain: t(5, 2),
            min_nodes_per_as: t(10, 3),
            ..StudyConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_thresholds_shrink_with_floor() {
        let c = StudyConfig::scaled(0.1);
        assert_eq!(c.min_nodes_per_country, 10);
        assert_eq!(c.min_nodes_per_dns_server, 3);
        let tiny = StudyConfig::scaled(0.001);
        assert_eq!(tiny.min_nodes_per_country, 8, "floor applies");
    }

    #[test]
    fn paper_scale_matches_paper_thresholds() {
        let c = StudyConfig::scaled(1.0);
        assert_eq!(c.min_nodes_per_country, 100);
        assert_eq!(c.min_nodes_per_dns_server, 10);
        assert_eq!(c.min_nodes_per_domain, 5);
    }
}
