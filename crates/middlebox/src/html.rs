//! HTML content modification (§5): JavaScript injection by end-host malware
//! and web-filtering appliances.

/// What the injected code is keyed on in the analysis — either a URL the
/// injected `<script src=…>` references, or a characteristic keyword
/// (variable name, class id, meta tag) in inline code. These are exactly the
/// signatures of Table 6.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InjectionSignature {
    /// An external script URL (e.g. `d36mw5gp02ykm5.cloudfront.net`).
    ScriptUrl(String),
    /// An inline keyword (e.g. `var oiasudoj;` or
    /// `AdTaily_Widget_Container`).
    Keyword(String),
    /// A meta tag inserted by a filtering appliance (e.g.
    /// `NetsparkQuiltingResult`).
    MetaTag(String),
}

impl InjectionSignature {
    /// The string the analyzer greps for.
    pub fn needle(&self) -> &str {
        match self {
            InjectionSignature::ScriptUrl(s)
            | InjectionSignature::Keyword(s)
            | InjectionSignature::MetaTag(s) => s,
        }
    }
}

/// An HTML modifier: injects JavaScript (malware, ad injectors) or filter
/// markers (NetSpark-style appliances) into pages in flight.
#[derive(Debug, Clone)]
pub struct HtmlInjector {
    /// The signature the injected content carries.
    pub signature: InjectionSignature,
    /// Extra bytes of payload injected alongside the signature (the paper
    /// measured e.g. +335 KB of ads for `AdTaily_Widget_Container`, +23 KB
    /// for `oiasudoj`).
    pub payload_bytes: usize,
    /// Number of ads the payload loads (reported for flavor; the analyzer
    /// keys on size and signature).
    pub ad_count: usize,
}

impl HtmlInjector {
    /// A script-URL injector.
    pub fn script(url: &str, payload_bytes: usize, ad_count: usize) -> Self {
        HtmlInjector {
            signature: InjectionSignature::ScriptUrl(url.to_string()),
            payload_bytes,
            ad_count,
        }
    }

    /// An inline-keyword injector.
    pub fn keyword(word: &str, payload_bytes: usize, ad_count: usize) -> Self {
        HtmlInjector {
            signature: InjectionSignature::Keyword(word.to_string()),
            payload_bytes,
            ad_count,
        }
    }

    /// A filtering-appliance meta-tag injector (NetSpark style).
    pub fn meta_tag(tag: &str) -> Self {
        HtmlInjector {
            signature: InjectionSignature::MetaTag(tag.to_string()),
            payload_bytes: 0,
            ad_count: 0,
        }
    }

    /// Modify an HTML body in flight. Non-HTML bodies (no `</head>` or
    /// `</body>` anchor) get the injection appended, which is what crude
    /// real-world injectors do.
    pub fn inject(&self, html: &[u8]) -> Vec<u8> {
        let insert = self.injection_block();
        let text = String::from_utf8_lossy(html);
        let anchor = match &self.signature {
            InjectionSignature::MetaTag(_) => text.find("</head>"),
            _ => text.find("</body>"),
        };
        let mut out = Vec::with_capacity(html.len() + insert.len());
        match anchor {
            Some(pos) => {
                out.extend_from_slice(&html[..pos]);
                out.extend_from_slice(insert.as_bytes());
                out.extend_from_slice(&html[pos..]);
            }
            None => {
                out.extend_from_slice(html);
                out.extend_from_slice(insert.as_bytes());
            }
        }
        out
    }

    fn injection_block(&self) -> String {
        let filler = "/*ad*/".repeat(self.payload_bytes / 6 + 1);
        let filler = &filler[..self.payload_bytes.min(filler.len())];
        match &self.signature {
            InjectionSignature::ScriptUrl(url) => {
                // Signatures with a path ("jswrite.com/script1.js") are full
                // script URLs; bare domains get a conventional script name.
                let src = if url.contains('/') {
                    format!("http://{url}")
                } else {
                    format!("http://{url}/inject.js")
                };
                format!(
                    "<script type=\"text/javascript\" src=\"{src}\"></script>\
                     <script>{filler}</script>\n"
                )
            }
            InjectionSignature::Keyword(word) => format!(
                "<script type=\"text/javascript\">var {w}; {filler}\
                 /* loads {n} ads */</script>\n",
                w = word.trim_end_matches(';').trim_start_matches("var "),
                n = self.ad_count
            ),
            InjectionSignature::MetaTag(tag) => {
                format!("<meta name=\"{tag}\" content=\"filtered\"/>\n")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &[u8] =
        b"<html><head><title>t</title></head><body><p>original content</p></body></html>";

    #[test]
    fn script_injection_adds_signature_and_grows_body() {
        let inj = HtmlInjector::script("d36mw5gp02ykm5.cloudfront.example", 1024, 10);
        let out = inj.inject(PAGE);
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("d36mw5gp02ykm5.cloudfront.example"));
        assert!(out.len() >= PAGE.len() + 1024);
        // Original content is preserved (injection, not replacement).
        assert!(text.contains("original content"));
    }

    #[test]
    fn keyword_injection() {
        let inj = HtmlInjector::keyword("oiasudoj", 23 * 1024, 170);
        let out = inj.inject(PAGE);
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("var oiasudoj;"));
        assert!(out.len() > PAGE.len() + 20 * 1024);
    }

    #[test]
    fn meta_tag_lands_in_head() {
        let inj = HtmlInjector::meta_tag("NetsparkQuiltingResult");
        let out = inj.inject(PAGE);
        let text = String::from_utf8_lossy(&out);
        let meta = text.find("NetsparkQuiltingResult").unwrap();
        let head_end = text.find("</head>").unwrap();
        assert!(meta < head_end, "meta tag should be inside <head>");
    }

    #[test]
    fn body_injection_lands_before_body_end() {
        let inj = HtmlInjector::script("x.example", 10, 1);
        let out = inj.inject(PAGE);
        let text = String::from_utf8_lossy(&out);
        assert!(text.find("x.example").unwrap() < text.find("</body>").unwrap());
    }

    #[test]
    fn non_html_gets_appended() {
        let inj = HtmlInjector::keyword("marker", 0, 0);
        let out = inj.inject(b"just bytes");
        assert!(String::from_utf8_lossy(&out).contains("marker"));
        assert!(out.starts_with(b"just bytes"));
    }

    #[test]
    fn signature_needle() {
        assert_eq!(
            HtmlInjector::script("u.example", 0, 0).signature.needle(),
            "u.example"
        );
        assert_eq!(HtmlInjector::meta_tag("T").signature.needle(), "T");
    }
}
