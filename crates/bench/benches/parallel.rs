//! Scaling bench for the parallel study executor (`tft_core::exec`): the
//! same scale-0.1 campaign at workers ∈ {1, 2, 4, 8, 16, 32}.
//!
//! Output is byte-identical at every worker count (asserted by the
//! workspace determinism tests); this bench measures the only thing the
//! knob is allowed to change — wall-clock. `scripts/check.sh` runs it in
//! quick mode, archives `BENCH_parallel.json` so the speedup is tracked
//! across PRs, and fails the build if the workers-8 median regresses past
//! the workers-1 median on a machine with the cores to know better.
//!
//! The binary also installs the shared counting `#[global_allocator]`
//! (see `alloc_stats`) and reports **allocations per probe** plus the
//! **live-bytes high-water mark** in the JSON `notes`. Allocs/probe is
//! the ROADMAP allocation-overhaul metric: `tft-lint`'s `hot-path-alloc`
//! pass pushes it down, `scripts/check.sh` guards it against regression,
//! and this note pins each remediation's effect in the archived
//! trajectory. Accounting runs are separate from timed runs and record
//! their per-worker-count event totals in the notes
//! (`alloc_events_workers{N}`), which doubles as evidence that the work
//! itself is worker-count-invariant — pool-internal setup is excluded
//! from the window via the `substrate::pool` setup observer, so the
//! totals do not drift with the worker knob.

#[path = "alloc_stats/mod.rs"]
mod alloc_stats;

use std::hint::black_box;
use substrate::bench::Harness;
use substrate::json::Json;
use tft_core::{run_study_with, ExecOptions, StudyConfig, StudyReport};

#[global_allocator]
static GLOBAL: alloc_stats::CountingAlloc = alloc_stats::CountingAlloc;

/// Worker counts the bench sweeps, for both accounting and timing.
const WORKER_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Probes issued across all four experiments in one study run.
fn probes_issued(report: &StudyReport) -> u64 {
    (report.dns_data.samples_issued
        + report.http_data.samples_issued
        + report.https_data.samples_issued
        + report.monitor_data.samples_issued) as u64
}

fn main() {
    let mut h = Harness::new("parallel");
    let scale = 0.1;
    let cfg = StudyConfig::scaled(scale);
    // One pristine world, cloned per run: world construction is cheap
    // relative to the study, and every run must start from identical state.
    let pristine = worldgen::build(&worldgen::paper_spec(scale, 0xBE7C)).world;
    // One discarded run so the first measured worker count does not absorb
    // process-lifetime warmup (page faults, allocator growth). Quick mode
    // skips the harness's own warmup, so this keeps the comparison fair.
    {
        let mut world = pristine.clone();
        black_box(run_study_with(
            &mut world,
            &cfg,
            &ExecOptions::with_workers(1),
        ));
    }
    // Allocation accounting: one dedicated counted run per worker count,
    // all before the timed loop. The per-worker totals land in the notes —
    // identical numbers across worker counts are direct evidence the
    // parallel executor does the same work regardless of the knob.
    alloc_stats::install_pool_observer();
    for workers in WORKER_COUNTS {
        let mut world = pristine.clone();
        alloc_stats::reset();
        alloc_stats::counting_on();
        let report = run_study_with(&mut world, &cfg, &ExecOptions::with_workers(workers));
        alloc_stats::counting_off();
        let allocs = alloc_stats::total_events();
        let peak = alloc_stats::peak_bytes();
        h.note(
            &format!("alloc_events_workers{workers}"),
            Json::uint(allocs),
        );
        h.note(&format!("peak_bytes_workers{workers}"), Json::uint(peak));
        if workers == 1 {
            let probes = probes_issued(&report);
            h.note("alloc_events_single_worker_run", Json::uint(allocs));
            h.note("probes_issued", Json::uint(probes));
            h.note("peak_bytes", Json::uint(peak));
            if probes > 0 {
                let per_probe = allocs as f64 / probes as f64;
                h.note("allocs_per_probe", Json::float(per_probe));
                eprintln!("[parallel] {allocs} allocation events / {probes} probes = {per_probe:.1} allocs/probe");
            }
        }
    }
    for workers in WORKER_COUNTS {
        h.bench(&format!("run_study/scale{scale}/workers{workers}"), || {
            let mut world = pristine.clone();
            black_box(run_study_with(
                &mut world,
                &cfg,
                &ExecOptions::with_workers(workers),
            ))
        });
    }
    h.finish();
}
