//! Self-tests: seed each forbidden pattern into an in-memory fixture and
//! prove the corresponding pass fires — and that the clean variant doesn't.
//! This is the acceptance demonstration that a PR reintroducing any banned
//! construct makes `tft-lint` (and therefore `scripts/check.sh`) fail.

use tft_lint::{Engine, SourceFile};

fn lint(files: &[SourceFile]) -> Vec<String> {
    Engine::with_default_passes()
        .run_files(files)
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}", d.pass, d.file))
        .collect()
}

#[test]
fn hashmap_in_report_fires() {
    let f = SourceFile::rust(
        "crates/tft-core/src/report/tables.rs",
        "tft-core",
        r#"
        use std::collections::HashMap;
        pub fn table(rows: HashMap<u32, String>) -> Vec<String> {
            rows.values().cloned().collect()
        }
        "#,
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter()
            .any(|h| h.starts_with("no-unordered-iteration:")),
        "expected no-unordered-iteration, got {hits:?}"
    );
}

#[test]
fn hashmap_in_chaos_modules_fires() {
    for (path, krate) in [
        ("crates/tft-core/src/quality.rs", "tft-core"),
        ("crates/netsim/src/campaign.rs", "netsim"),
        ("crates/proxynet/src/resilience.rs", "proxynet"),
    ] {
        let f = SourceFile::rust(
            path,
            krate,
            "use std::collections::HashMap;\npub fn f(m: HashMap<u64, u64>) -> usize { m.len() }",
        );
        let hits = lint(&[f]);
        assert!(
            hits.iter()
                .any(|h| h.starts_with("no-unordered-iteration:")),
            "expected no-unordered-iteration in {path}, got {hits:?}"
        );
    }
}

#[test]
fn hashmap_anywhere_in_tft_serve_fires() {
    // The serving crate is scoped wholesale: any module, not an allow-list.
    for path in [
        "crates/tft-serve/src/cache.rs",
        "crates/tft-serve/src/gateway.rs",
        "crates/tft-serve/src/some/new/module.rs",
    ] {
        let f = SourceFile::rust(
            path,
            "tft-serve",
            "use std::collections::HashSet;\npub fn f(s: HashSet<u64>) -> usize { s.len() }",
        );
        let hits = lint(&[f]);
        assert!(
            hits.iter()
                .any(|h| h.starts_with("no-unordered-iteration:")),
            "expected no-unordered-iteration in {path}, got {hits:?}"
        );
    }
}

#[test]
fn instant_now_in_tft_serve_fires() {
    let f = SourceFile::rust(
        "crates/tft-serve/src/gateway.rs",
        "tft-serve",
        "pub fn latency_ms() -> u128 { std::time::Instant::now().elapsed().as_millis() }",
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter().any(|h| h.starts_with("no-wall-clock:")),
        "expected no-wall-clock in tft-serve, got {hits:?}"
    );
}

#[test]
fn hashmap_outside_render_scope_is_fine() {
    let f = SourceFile::rust(
        "crates/netsim/src/sched.rs",
        "netsim",
        "use std::collections::HashMap;\npub fn f(m: HashMap<u32, u32>) -> usize { m.len() }",
    );
    assert!(lint(&[f]).is_empty());
}

#[test]
fn instant_now_in_netsim_fires() {
    let f = SourceFile::rust(
        "crates/netsim/src/sched.rs",
        "netsim",
        "pub fn now_ms() -> u128 { std::time::Instant::now().elapsed().as_millis() }",
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter().any(|h| h.starts_with("no-wall-clock:")),
        "expected no-wall-clock, got {hits:?}"
    );
}

#[test]
fn system_time_fires_anywhere() {
    let f = SourceFile::rust(
        "crates/worldgen/src/build.rs",
        "worldgen",
        "pub fn stamp() -> std::time::SystemTime { std::time::SystemTime::now() }",
    );
    assert!(lint(&[f]).iter().any(|h| h.starts_with("no-wall-clock:")));
}

#[test]
fn unwrap_in_dnswire_parse_path_fires() {
    let f = SourceFile::rust(
        "crates/dnswire/src/wire.rs",
        "dnswire",
        "pub fn first(bytes: &[u8]) -> u8 { *bytes.first().unwrap() }",
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter()
            .any(|h| h.starts_with("no-panic-on-untrusted-bytes:")),
        "expected no-panic-on-untrusted-bytes, got {hits:?}"
    );
}

#[test]
fn slice_indexing_in_parser_fires() {
    let f = SourceFile::rust(
        "crates/httpwire/src/parse.rs",
        "httpwire",
        "pub fn third(bytes: &[u8]) -> u8 { bytes[2] }",
    );
    assert!(lint(&[f])
        .iter()
        .any(|h| h.starts_with("no-panic-on-untrusted-bytes:")));
}

#[test]
fn panic_macro_in_parser_fires() {
    let f = SourceFile::rust(
        "crates/smtpwire/src/reply.rs",
        "smtpwire",
        r#"pub fn parse(b: &[u8]) { if b.is_empty() { panic!("empty") } }"#,
    );
    assert!(lint(&[f])
        .iter()
        .any(|h| h.starts_with("no-panic-on-untrusted-bytes:")));
}

#[test]
fn panic_paths_in_tft_serve_request_path_fire() {
    // The gateway consumes raw bytes off the virtual wire, so the totality
    // contract covers the whole serving crate — any module under src/.
    for (path, body) in [
        (
            "crates/tft-serve/src/gateway.rs",
            "pub fn route(b: &[u8]) -> u8 { b[0] }",
        ),
        (
            "crates/tft-serve/src/cache.rs",
            "pub fn first(b: &[u8]) -> u8 { *b.first().unwrap() }",
        ),
        (
            "crates/tft-serve/src/some/new/module.rs",
            r#"pub fn parse(b: &[u8]) { if b.is_empty() { panic!("empty request") } }"#,
        ),
    ] {
        let f = SourceFile::rust(path, "tft-serve", body);
        let hits = lint(&[f]);
        assert!(
            hits.iter()
                .any(|h| h.starts_with("no-panic-on-untrusted-bytes:")),
            "expected no-panic-on-untrusted-bytes in {path}, got {hits:?}"
        );
    }
}

#[test]
fn unwrap_outside_parser_crates_is_fine() {
    let f = SourceFile::rust(
        "crates/tft-core/src/crawl.rs",
        "tft-core",
        "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }",
    );
    assert!(lint(&[f]).is_empty());
}

#[test]
fn unwrap_in_parser_test_mod_is_exempt() {
    let f = SourceFile::rust(
        "crates/dnswire/src/wire.rs",
        "dnswire",
        r#"
        pub fn ok() {}
        #[cfg(test)]
        mod tests {
            #[test]
            fn round_trip() {
                let v: Option<u8> = Some(1);
                assert_eq!(v.unwrap(), 1);
            }
        }
        "#,
    );
    assert!(lint(&[f]).is_empty());
}

#[test]
fn trigger_inside_string_or_comment_does_not_fire() {
    let f = SourceFile::rust(
        "crates/dnswire/src/wire.rs",
        "dnswire",
        r#"
        /// Docs may say `input[0]` and `.unwrap()` and even panic!(…).
        // A comment mentioning Instant::now() is also inert.
        pub fn describe() -> &'static str {
            "call .unwrap() on bytes[0] after Instant::now()"
        }
        "#,
    );
    assert!(lint(&[f]).is_empty());
}

#[test]
fn registry_dependency_in_manifest_fires() {
    let f = SourceFile::manifest(
        "crates/evil/Cargo.toml",
        "evil",
        "[package]\nname = \"evil\"\n\n[dependencies]\nserde = { version = \"1\" }\n",
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter().any(|h| h.starts_with("hermetic-manifests:")),
        "expected hermetic-manifests, got {hits:?}"
    );
}

#[test]
fn path_dependencies_are_fine() {
    let f = SourceFile::manifest(
        "crates/good/Cargo.toml",
        "good",
        "[package]\nname = \"good\"\n\n[dependencies]\nsubstrate.workspace = true\nnetsim = { path = \"../netsim\" }\n",
    );
    assert!(lint(&[f]).is_empty());
}

#[test]
fn ambient_seed_fires() {
    let f = SourceFile::rust(
        "crates/proxynet/src/world.rs",
        "proxynet",
        r#"
        use netsim::SimRng;
        pub fn rng() -> SimRng {
            SimRng::new(std::process::id() as u64)
        }
        "#,
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter().any(|h| h.starts_with("seed-discipline:")),
        "expected seed-discipline, got {hits:?}"
    );
}

#[test]
fn hasher_randomstate_seed_fires() {
    let f = SourceFile::rust(
        "crates/proxynet/src/world.rs",
        "proxynet",
        r#"
        use netsim::SimRng;
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        pub fn rng() -> SimRng {
            SimRng::new(RandomState::new().build_hasher().finish())
        }
        "#,
    );
    assert!(lint(&[f]).iter().any(|h| h.starts_with("seed-discipline:")));
}

#[test]
fn literal_seed_is_fine() {
    let f = SourceFile::rust(
        "crates/proxynet/src/world.rs",
        "proxynet",
        "use netsim::SimRng;\npub fn rng(seed: u64) -> SimRng { SimRng::new(seed ^ 0xBE7C) }",
    );
    let hits = lint(&[f]);
    // The SystemTime::now above would also trip no-wall-clock; here nothing may.
    assert!(hits.is_empty(), "expected clean, got {hits:?}");
}

#[test]
fn reasoned_allow_suppresses_and_counts() {
    let f = SourceFile::rust(
        "crates/dnswire/src/wire.rs",
        "dnswire",
        r##"
        pub fn f(v: Option<u8>) -> u8 {
            // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "fixture: value checked by caller")
            v.unwrap()
        }
        "##,
    );
    let report = Engine::with_default_passes().run_files(&[f]);
    assert!(
        report.diagnostics.is_empty(),
        "got {:?}",
        report.diagnostics
    );
    assert_eq!(report.suppressed, 1);
}

#[test]
fn allow_without_reason_is_itself_a_diagnostic() {
    let f = SourceFile::rust(
        "crates/dnswire/src/wire.rs",
        "dnswire",
        r#"
        pub fn f(v: Option<u8>) -> u8 {
            // tft-lint: allow(no-panic-on-untrusted-bytes)
            v.unwrap()
        }
        "#,
    );
    let hits = lint(&[f]);
    // The unreasoned allow does not suppress, and is flagged itself.
    assert!(hits.iter().any(|h| h.starts_with("allow-missing-reason:")));
    assert!(hits
        .iter()
        .any(|h| h.starts_with("no-panic-on-untrusted-bytes:")));
}

#[test]
fn stale_allow_is_flagged() {
    let f = SourceFile::rust(
        "crates/netsim/src/sched.rs",
        "netsim",
        r##"
        // tft-lint: allow(no-wall-clock, reason = "nothing here actually reads the clock")
        pub fn f() {}
        "##,
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter().any(|h| h.starts_with("stale-allow:")),
        "got {hits:?}"
    );
}

#[test]
fn unknown_lint_id_is_flagged() {
    let f = SourceFile::rust(
        "crates/netsim/src/sched.rs",
        "netsim",
        r##"
        // tft-lint: allow(no-such-pass, reason = "typo'd id must not silently no-op")
        pub fn f() {}
        "##,
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter().any(|h| h.starts_with("unknown-lint-id:")),
        "got {hits:?}"
    );
}

// -- the call-graph passes ---------------------------------------------------

#[test]
fn hot_path_alloc_fires_transitively() {
    // The allocation is two calls below the annotated root.
    let f = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        // tft-lint: hot-root — fixture probe loop
        pub fn probe_loop() { step(); }
        fn step() { leaf(); }
        fn leaf() -> String { format!("per-probe {}", 1) }
        "#,
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter().any(|h| h.starts_with("hot-path-alloc:")),
        "got {hits:?}"
    );
}

#[test]
fn hot_path_alloc_silent_without_root_and_on_clean_variant() {
    // Same allocation, no hot-root annotation anywhere: unreachable, silent.
    let unrooted = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        pub fn cold() -> String { format!("setup {}", 1) }
        "#,
    );
    assert!(!lint(&[unrooted])
        .iter()
        .any(|h| h.starts_with("hot-path-alloc:")),);
    // Hot, but using the recommended scratch-buffer idiom: silent.
    let clean = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        // tft-lint: hot-root — fixture probe loop
        pub fn probe_loop(scratch: &mut String, i: u32) {
            use std::fmt::Write as _;
            scratch.clear();
            let _ = write!(scratch, "probe-{i}");
        }
        "#,
    );
    assert!(!lint(&[clean])
        .iter()
        .any(|h| h.starts_with("hot-path-alloc:")),);
}

#[test]
fn hot_path_alloc_exempts_lazy_with_closures() {
    // format! inside a closure handed to a `*_with` callee only runs when
    // the guarded feature (tracing) is on — the remediated form must not
    // itself be a finding.
    let f = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        // tft-lint: hot-root — fixture probe loop
        pub fn probe_loop(log: &mut Log, host: &str) {
            log.record_with(1, || format!("resolved {host}"));
        }
        "#,
    );
    assert!(!lint(&[f]).iter().any(|h| h.starts_with("hot-path-alloc:")),);
}

#[test]
fn pool_shared_mut_fires_on_shared_state_in_task_closure() {
    let f = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        pub fn run() {
            let out = pool::par_map(4, vec![1u64, 2], |i| {
                STATS.with(|s: &RefCell<u64>| *s.borrow_mut() += i);
                i
            });
        }
        "#,
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter().any(|h| h.starts_with("pool-shared-mut:")),
        "got {hits:?}"
    );
}

#[test]
fn pool_shared_mut_fires_on_unforked_rng_and_captured_mut() {
    let rng = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        pub fn run(rng: &mut SimRng) {
            let out = pool::par_map(4, vec![1u64, 2], |i| {
                rng.random_range(0..i)
            });
        }
        "#,
    );
    assert!(lint(&[rng])
        .iter()
        .any(|h| h.starts_with("pool-shared-mut:")),);
    let cap = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        pub fn run(mut acc: Vec<u64>) {
            let out = pool::par_map(4, vec![1u64, 2], |i| {
                merge(&mut acc, i);
                i
            });
        }
        "#,
    );
    assert!(lint(&[cap])
        .iter()
        .any(|h| h.starts_with("pool-shared-mut:")),);
}

#[test]
fn pool_shared_mut_silent_on_forked_rng_and_owned_state() {
    // The disciplined form: per-task state moves in, RNG is forked per
    // shard — nothing crosses the boundary mutably.
    let f = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        pub fn run(rng: &SimRng, worlds: Vec<(u64, World)>) {
            let out = pool::par_map(4, worlds, |(k, mut shard_world)| {
                let mut rng = rng.fork_indexed("shard", k);
                shard_world.step(rng.random_range(0..k));
                shard_world
            });
        }
        "#,
    );
    let hits = lint(&[f]);
    assert!(
        !hits.iter().any(|h| h.starts_with("pool-shared-mut:")),
        "got {hits:?}"
    );
}

#[test]
fn unchecked_arith_fires_in_wire_reachable_fn() {
    let f = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        // tft-lint: wire-entry — fixture decoder
        pub fn decode(buf: &[u8]) -> usize { advance(buf.len()) }
        fn advance(pos: usize) -> usize { pos + 2 }
        "#,
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter()
            .any(|h| h.starts_with("unchecked-arith-reachable:")),
        "got {hits:?}"
    );
}

#[test]
fn unchecked_arith_fires_on_narrowing_cast() {
    let f = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        // tft-lint: wire-entry — fixture decoder
        pub fn decode(len: usize) -> u16 { len as u16 }
        "#,
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter()
            .any(|h| h.starts_with("unchecked-arith-reachable:")),
        "got {hits:?}"
    );
}

#[test]
fn unchecked_arith_silent_on_checked_forms_and_cold_fns() {
    // checked_add + u64 widening: nothing to flag even though reachable.
    let clean = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        // tft-lint: wire-entry — fixture decoder
        pub fn decode(pos: usize, len: usize) -> Option<u64> {
            let end = pos.checked_add(len)?;
            Some(end as u64)
        }
        "#,
    );
    assert!(!lint(&[clean])
        .iter()
        .any(|h| h.starts_with("unchecked-arith-reachable:")),);
    // Unchecked arithmetic in a fn NOT reachable from any wire entry.
    let cold = SourceFile::rust(
        "crates/x/src/lib.rs",
        "x",
        r#"
        pub fn score(a: usize, b: usize) -> usize { a + b * 2 }
        "#,
    );
    assert!(!lint(&[cold])
        .iter()
        .any(|h| h.starts_with("unchecked-arith-reachable:")),);
}

#[test]
fn crate_boundary_confines_reachability() {
    // The hot root in crate `a` calls a same-named fn that exists in both a
    // dependency and an unrelated crate; only the dependency's fn is hot.
    let files = [
        SourceFile::manifest(
            "crates/a/Cargo.toml",
            "a",
            "[package]\nname = \"a\"\n[dependencies]\nb = { path = \"../b\" }\n",
        ),
        SourceFile::manifest("crates/b/Cargo.toml", "b", "[package]\nname = \"b\"\n"),
        SourceFile::manifest("crates/c/Cargo.toml", "c", "[package]\nname = \"c\"\n"),
        SourceFile::rust(
            "crates/a/src/lib.rs",
            "a",
            "// tft-lint: hot-root — fixture\npub fn probe_loop() { helper(); }",
        ),
        SourceFile::rust(
            "crates/b/src/lib.rs",
            "b",
            "pub fn helper() -> String { format!(\"dep {}\", 1) }",
        ),
        SourceFile::rust(
            "crates/c/src/lib.rs",
            "c",
            "pub fn helper() -> String { format!(\"unrelated {}\", 1) }",
        ),
    ];
    let hits = lint(&files);
    assert!(
        hits.contains(&"hot-path-alloc:crates/b/src/lib.rs".to_string()),
        "dependency edge must propagate heat, got {hits:?}"
    );
    assert!(
        !hits.contains(&"hot-path-alloc:crates/c/src/lib.rs".to_string()),
        "undeclared crate must stay cold, got {hits:?}"
    );
}

#[test]
fn inapplicable_allow_is_flagged() {
    // `hot-path-alloc` only applies under src/; an allow naming it in a
    // tests/ file can never fire there and is itself a diagnostic.
    let f = SourceFile::rust(
        "crates/x/tests/integration.rs",
        "x",
        r##"
        // tft-lint: allow(hot-path-alloc, reason = "test fixture strings")
        pub fn f() -> String { format!("x {}", 1) }
        "##,
    );
    let hits = lint(&[f]);
    assert!(
        hits.iter().any(|h| h.starts_with("inapplicable-allow:")),
        "got {hits:?}"
    );
}
