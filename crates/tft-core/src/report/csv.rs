//! Machine-readable exports: every table and the Figure 5 series as CSV,
//! for replotting outside this crate.

use crate::analysis::{
    dns::DnsAnalysis, http::HttpAnalysis, https::HttpsAnalysis, monitor::MonitorAnalysis,
    smtp::SmtpAnalysis,
};
use std::fmt::Write as _;

/// Quote a CSV field when needed (commas, quotes, newlines).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Table 3 as CSV: `country,hijacked,total,ratio`.
pub fn table3(dns: &DnsAnalysis) -> String {
    let mut s = String::from("country,hijacked,total,ratio\n");
    for row in &dns.by_country {
        writeln!(
            s,
            "{},{},{},{:.4}",
            row.country,
            row.hijacked,
            row.total,
            row.ratio()
        )
        .unwrap();
    }
    s
}

/// Table 4 as CSV: `country,isp,servers,nodes`.
pub fn table4(dns: &DnsAnalysis) -> String {
    let mut s = String::from("country,isp,servers,nodes\n");
    for row in &dns.isp_rows {
        writeln!(
            s,
            "{},{},{},{}",
            row.country,
            field(&row.isp),
            row.servers,
            row.nodes
        )
        .unwrap();
    }
    s
}

/// Table 5 as CSV: `domain,nodes,ases,countries,verdict`.
pub fn table5(dns: &DnsAnalysis) -> String {
    let mut s = String::from("domain,nodes,ases,countries,verdict\n");
    for row in &dns.google_domains {
        writeln!(
            s,
            "{},{},{},{},{}",
            field(&row.domain),
            row.nodes,
            row.ases,
            row.countries,
            if row.likely_endhost {
                "end-host"
            } else {
                "isp"
            }
        )
        .unwrap();
    }
    s
}

/// Table 6 as CSV: `signature,nodes,countries,ases`.
pub fn table6(http: &HttpAnalysis) -> String {
    let mut s = String::from("signature,nodes,countries,ases\n");
    for row in &http.signatures {
        writeln!(
            s,
            "{},{},{},{}",
            field(&row.signature),
            row.nodes,
            row.countries,
            row.ases
        )
        .unwrap();
    }
    s
}

/// Table 7 as CSV: `asn,isp,country,modified,total,mod_share,ratios`.
pub fn table7(http: &HttpAnalysis) -> String {
    let mut s = String::from("asn,isp,country,modified,total,mod_share,ratios\n");
    for row in &http.image_rows {
        let ratios = row
            .ratios
            .iter()
            .map(|r| format!("{r:.2}"))
            .collect::<Vec<_>>()
            .join(";");
        writeln!(
            s,
            "{},{},{},{},{},{:.4},{}",
            row.asn.0,
            field(&row.isp),
            row.country,
            row.modified,
            row.total,
            row.mod_ratio(),
            ratios
        )
        .unwrap();
    }
    s
}

/// Table 8 as CSV: `issuer,nodes,shared_key_nodes,masks_invalid_nodes`.
pub fn table8(https: &HttpsAnalysis) -> String {
    let mut s = String::from("issuer,nodes,shared_key_nodes,masks_invalid_nodes\n");
    for row in &https.issuers {
        writeln!(
            s,
            "{},{},{},{}",
            field(&row.issuer),
            row.nodes,
            row.shared_key_nodes,
            row.masks_invalid_nodes
        )
        .unwrap();
    }
    s
}

/// Table 9 as CSV:
/// `entity,source_ips,nodes,ases,countries,requests_per_node,prefetch_fraction,isp_level,isp_share,vpn_nodes`.
pub fn table9(monitor: &MonitorAnalysis) -> String {
    let mut s = String::from(
        "entity,source_ips,nodes,ases,countries,requests_per_node,prefetch_fraction,isp_level,isp_share,vpn_nodes\n",
    );
    for e in &monitor.entities {
        writeln!(
            s,
            "{},{},{},{},{},{:.2},{:.4},{},{:.4},{}",
            field(&e.name),
            e.source_ips,
            e.nodes,
            e.node_ases,
            e.node_countries,
            e.requests_per_node,
            e.prefetch_fraction(),
            e.isp_level,
            e.isp_share,
            e.vpn_nodes
        )
        .unwrap();
    }
    s
}

/// Figure 5 as CSV: one row per `(entity, delay)` sample —
/// `entity,delay_secs` (negative = prefetch).
pub fn figure5(monitor: &MonitorAnalysis) -> String {
    let mut s = String::from("entity,delay_secs\n");
    for e in &monitor.entities {
        for d in &e.delays_secs {
            writeln!(s, "{},{d:.3}", field(&e.name)).unwrap();
        }
    }
    s
}

/// The SMTP extension as CSV: `asn,isp,country,stripped,total`.
pub fn smtp(a: &SmtpAnalysis) -> String {
    let mut s = String::from("asn,isp,country,stripped,total\n");
    for row in &a.stripping_ases {
        writeln!(
            s,
            "{},{},{},{},{}",
            row.asn.0,
            field(&row.isp),
            row.country,
            row.stripped,
            row.total
        )
        .unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dns::{CountryRow, DnsAnalysis, IspRow};
    use inetdb::CountryCode;

    #[test]
    fn csv_quotes_fields_with_commas() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn table3_csv_shape() {
        let mut a = DnsAnalysis::default();
        a.by_country.push(CountryRow {
            country: CountryCode::new("MY"),
            hijacked: 10,
            total: 20,
        });
        let csv = table3(&a);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("country,hijacked,total,ratio"));
        assert_eq!(lines.next(), Some("MY,10,20,0.5000"));
    }

    #[test]
    fn table4_csv_escapes_isp_names() {
        let mut a = DnsAnalysis::default();
        a.isp_rows.push(IspRow {
            country: CountryCode::new("US"),
            isp: "Acme, Inc".into(),
            servers: 2,
            nodes: 30,
        });
        let csv = table4(&a);
        assert!(csv.contains("\"Acme, Inc\""));
    }
}
