//! Structured trace log.
//!
//! The paper's Figures 1–4 are request timelines (client → super proxy →
//! exit node → origin, etc.). We reproduce them as event traces: every layer
//! appends `TraceEvent`s, and the report renderer prints the numbered
//! sequence corresponding to each figure.

use crate::time::SimTime;
use std::fmt;

/// Category of a trace event, used for filtering when rendering figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// Measurement-client actions.
    Client,
    /// Super-proxy actions.
    SuperProxy,
    /// Exit-node actions.
    ExitNode,
    /// DNS-plane actions (queries/responses at any resolver or auth server).
    Dns,
    /// HTTP-plane actions at origin servers.
    Origin,
    /// TLS-plane actions.
    Tls,
    /// Middlebox / end-host-software interference.
    Middlebox,
    /// Content-monitor refetch activity.
    Monitor,
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceCategory::Client => "client",
            TraceCategory::SuperProxy => "super-proxy",
            TraceCategory::ExitNode => "exit-node",
            TraceCategory::Dns => "dns",
            TraceCategory::Origin => "origin",
            TraceCategory::Tls => "tls",
            TraceCategory::Middlebox => "middlebox",
            TraceCategory::Monitor => "monitor",
        };
        f.write_str(s)
    }
}

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time the event occurred.
    pub at: SimTime,
    /// Which layer produced it.
    pub category: TraceCategory,
    /// Human-readable description (stable wording; figures are built from it).
    pub detail: String,
}

/// Append-only trace collector.
///
/// Tracing is opt-in: the full-scale measurement campaigns would produce
/// millions of events, so the log is disabled unless explicitly enabled for
/// a figure rendering or a debugging session.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// A disabled trace log (records nothing).
    pub fn disabled() -> Self {
        TraceLog {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// An enabled trace log.
    pub fn enabled() -> Self {
        TraceLog {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, at: SimTime, category: TraceCategory, detail: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                category,
                detail: detail.into(),
            });
        }
    }

    /// Record an event with a lazily built detail string (no-op when
    /// disabled). The closure runs only when the log is enabled, so the
    /// campaign default — tracing off — pays no formatting or allocation
    /// cost on the per-probe path. Prefer this over [`TraceLog::record`]
    /// whenever the detail involves `format!`.
    pub fn record_with(
        &mut self,
        at: SimTime,
        category: TraceCategory,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                category,
                detail: detail(),
            });
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one category, in order.
    pub fn by_category(&self, cat: TraceCategory) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.category == cat)
    }

    /// Drop all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Render the trace as a numbered timeline (the Figure 1–4 format).
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(&format!(
                "({}) [{:>10}] {:<12} {}\n",
                i + 1,
                e.at.to_string(),
                e.category.to_string(),
                e.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::EPOCH, TraceCategory::Client, "x");
        assert!(log.events().is_empty());
    }

    #[test]
    fn record_with_is_lazy_when_disabled() {
        let mut log = TraceLog::disabled();
        let mut ran = false;
        log.record_with(SimTime::EPOCH, TraceCategory::Client, || {
            ran = true;
            String::from("x")
        });
        assert!(!ran, "detail closure must not run when tracing is off");
        assert!(log.events().is_empty());

        let mut log = TraceLog::enabled();
        log.record_with(SimTime::EPOCH, TraceCategory::Client, || "on".to_string());
        assert_eq!(log.events()[0].detail, "on");
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::EPOCH, TraceCategory::Client, "first");
        log.record(
            SimTime::EPOCH + SimDuration::from_millis(5),
            TraceCategory::SuperProxy,
            "second",
        );
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].detail, "first");
        assert_eq!(log.events()[1].category, TraceCategory::SuperProxy);
    }

    #[test]
    fn category_filter_works() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::EPOCH, TraceCategory::Dns, "q");
        log.record(SimTime::EPOCH, TraceCategory::Client, "c");
        log.record(SimTime::EPOCH, TraceCategory::Dns, "r");
        assert_eq!(log.by_category(TraceCategory::Dns).count(), 2);
    }

    #[test]
    fn timeline_is_numbered() {
        let mut log = TraceLog::enabled();
        log.record(SimTime::EPOCH, TraceCategory::Client, "hello");
        let text = log.render_timeline();
        assert!(text.starts_with("(1)"), "got: {text}");
        assert!(text.contains("hello"));
    }
}
