//! Per-country site rankings and the international university list.
//!
//! Stands in for the Alexa Top Sites dataset (paper ref. \[3\]) and the paper's "web sites
//! of 10 U.S. universities where IMC'16 PC members are affiliated". The
//! HTTPS experiment (§6) draws its *popular* and *international* site
//! classes from here. The paper could not obtain Alexa rankings for every
//! country (hence only 115 countries in the HTTPS study); we reproduce that
//! limitation by letting the world generator mark countries as unranked.

use crate::types::CountryCode;
use std::collections::BTreeMap;

/// Synthetic per-country top-site rankings plus the university domain list.
#[derive(Debug, Clone, Default)]
pub struct Rankings {
    per_country: BTreeMap<CountryCode, Vec<String>>,
    universities: Vec<String>,
}

impl Rankings {
    /// An empty rankings table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a country's ranked site list (most popular first).
    pub fn set_country(&mut self, country: CountryCode, sites: Vec<String>) {
        self.per_country.insert(country, sites);
    }

    /// Install the university domain list.
    pub fn set_universities(&mut self, domains: Vec<String>) {
        self.universities = domains;
    }

    /// The top `n` sites for a country, if rankings exist for it.
    pub fn top_sites(&self, country: CountryCode, n: usize) -> Option<&[String]> {
        self.per_country.get(&country).map(|v| &v[..n.min(v.len())])
    }

    /// Whether rankings exist for `country`.
    pub fn has_country(&self, country: CountryCode) -> bool {
        self.per_country.contains_key(&country)
    }

    /// All ranked countries.
    pub fn countries(&self) -> impl Iterator<Item = CountryCode> + '_ {
        self.per_country.keys().copied()
    }

    /// The university domains.
    pub fn universities(&self) -> &[String] {
        &self.universities
    }

    /// Generate a deterministic synthetic ranking for `country` with
    /// `n` sites, named `top<i>.<cc>.example`.
    pub fn generate_country(country: CountryCode, n: usize) -> Vec<String> {
        let cc = country.as_str().to_ascii_lowercase();
        (1..=n).map(|i| format!("top{i}.{cc}.example")).collect()
    }

    /// Generate the deterministic synthetic university list
    /// (`uni<i>.edu.example`).
    pub fn generate_universities(n: usize) -> Vec<String> {
        (1..=n).map(|i| format!("uni{i}.edu.example")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s)
    }

    #[test]
    fn top_sites_truncates() {
        let mut r = Rankings::new();
        r.set_country(cc("US"), Rankings::generate_country(cc("US"), 25));
        assert_eq!(r.top_sites(cc("US"), 20).unwrap().len(), 20);
        assert_eq!(r.top_sites(cc("US"), 100).unwrap().len(), 25);
        assert!(r.top_sites(cc("FR"), 20).is_none());
    }

    #[test]
    fn generated_names_are_deterministic_and_country_scoped() {
        let a = Rankings::generate_country(cc("MY"), 3);
        let b = Rankings::generate_country(cc("MY"), 3);
        assert_eq!(a, b);
        assert_eq!(a[0], "top1.my.example");
        assert!(Rankings::generate_country(cc("GB"), 1)[0].contains(".gb."));
    }

    #[test]
    fn universities_list() {
        let mut r = Rankings::new();
        r.set_universities(Rankings::generate_universities(10));
        assert_eq!(r.universities().len(), 10);
        assert_eq!(r.universities()[0], "uni1.edu.example");
    }

    #[test]
    fn unranked_country_is_detectable() {
        let mut r = Rankings::new();
        r.set_country(cc("US"), vec!["a".into()]);
        assert!(r.has_country(cc("US")));
        assert!(!r.has_country(cc("KP")));
        assert_eq!(r.countries().count(), 1);
    }
}
