//! Object blockers (§5.2's JavaScript/CSS findings).
//!
//! The paper found 45 exit nodes whose JavaScript and 11 whose CSS fetches
//! returned *replaced* content — always error pages ("bandwidth exceeded",
//! "blocked") or empty responses, never minification or injection. A further
//! 32 HTML fetches returned similar block pages and were filtered before
//! the injection analysis. This models that interference.

/// Replaces whole objects with block pages, by content type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObjectBlocker {
    /// Replace `text/html` responses.
    pub html: bool,
    /// Replace `application/javascript` responses.
    pub js: bool,
    /// Replace `text/css` responses.
    pub css: bool,
}

impl ObjectBlocker {
    /// Whether this blocker replaces the given content type.
    pub fn blocks(&self, content_type: &str) -> bool {
        match content_type {
            "text/html" => self.html,
            "application/javascript" | "text/javascript" => self.js,
            "text/css" => self.css,
            _ => false,
        }
    }

    /// The replacement body.
    pub fn block_page(&self, content_type: &str) -> Vec<u8> {
        match content_type {
            "text/html" => {
                b"<html><head><title>Blocked</title></head><body><h1>509 Bandwidth Limit Exceeded</h1></body></html>".to_vec()
            }
            // Script/style objects come back as short error text or empty.
            "text/css" => Vec::new(),
            _ => b"/* bandwidth exceeded */".to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_by_content_type() {
        let b = ObjectBlocker {
            html: false,
            js: true,
            css: true,
        };
        assert!(b.blocks("application/javascript"));
        assert!(b.blocks("text/javascript"));
        assert!(b.blocks("text/css"));
        assert!(!b.blocks("text/html"));
        assert!(!b.blocks("image/jpeg"));
    }

    #[test]
    fn block_pages_are_replacements_not_modifications() {
        let b = ObjectBlocker {
            html: true,
            js: true,
            css: true,
        };
        let js = b.block_page("application/javascript");
        assert!(!js.is_empty());
        assert!(b.block_page("text/css").is_empty());
        let html = String::from_utf8(b.block_page("text/html")).unwrap();
        assert!(html.contains("Bandwidth"));
    }
}
