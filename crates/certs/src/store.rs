//! Root certificate stores.
//!
//! The paper validates chains against the OS X 10.11 root store, which
//! contained 187 unique roots (paper ref. \[21\]). [`RootStore::os_x_like`] generates a
//! deterministic simulated equivalent of the same size.

use crate::cert::{Certificate, DistinguishedName, KeyId};
use crate::issue::CertAuthority;
use netsim::{SimRng, SimTime};
use std::collections::HashMap;

/// A set of trusted root certificates, indexed by subject key.
#[derive(Debug, Clone, Default)]
pub struct RootStore {
    by_key: HashMap<KeyId, Certificate>,
}

impl RootStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a trusted root.
    ///
    /// # Panics
    /// Panics if the certificate is not a self-signed CA — root stores hold
    /// trust anchors, nothing else.
    pub fn add(&mut self, cert: Certificate) {
        assert!(
            cert.is_ca && cert.is_self_signed(),
            "root store entries must be self-signed CAs"
        );
        self.by_key.insert(cert.subject_key, cert);
    }

    /// Number of roots.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Find the trusted root whose key signed `cert`, if any, and whose
    /// subject matches `cert`'s issuer.
    pub fn issuer_of(&self, cert: &Certificate) -> Option<&Certificate> {
        self.by_key
            .get(&cert.issuer_key)
            .filter(|root| root.subject == cert.issuer)
    }

    /// True if `cert` itself is a trust anchor in this store.
    pub fn contains(&self, cert: &Certificate) -> bool {
        self.by_key
            .get(&cert.subject_key)
            .map(|c| c == cert)
            .unwrap_or(false)
    }

    /// Build the deterministic "OS X 10.11-like" store: `count` synthetic
    /// root CAs, and return the authorities so the world generator can issue
    /// real site certificates from them.
    pub fn os_x_like(
        count: usize,
        now: SimTime,
        rng: &mut SimRng,
    ) -> (RootStore, Vec<CertAuthority>) {
        let mut store = RootStore::new();
        let mut authorities = Vec::with_capacity(count);
        for i in 1..=count {
            let ca = CertAuthority::new_root(
                DistinguishedName::cn_o(&format!("Global Trust Root {i}"), "Simulated PKI"),
                now,
                rng,
            );
            store.add(ca.cert.clone());
            authorities.push(ca);
        }
        (store, authorities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_x_like_store_has_requested_size() {
        let mut rng = SimRng::new(1);
        let (store, cas) = RootStore::os_x_like(187, SimTime::EPOCH, &mut rng);
        assert_eq!(store.len(), 187);
        assert_eq!(cas.len(), 187);
    }

    #[test]
    fn issuer_lookup_finds_signing_root() {
        let mut rng = SimRng::new(2);
        let (store, mut cas) = RootStore::os_x_like(3, SimTime::EPOCH, &mut rng);
        let leaf = cas[1].issue_leaf("www.example.com", SimTime::EPOCH, &mut rng);
        let root = store.issuer_of(&leaf).expect("issuer should be found");
        assert_eq!(root.subject, cas[1].cert.subject);
        assert!(store.contains(&cas[0].cert));
    }

    #[test]
    fn unknown_issuer_not_found() {
        let mut rng = SimRng::new(3);
        let (store, _) = RootStore::os_x_like(2, SimTime::EPOCH, &mut rng);
        let mut rogue =
            CertAuthority::new_root(DistinguishedName::cn("Rogue CA"), SimTime::EPOCH, &mut rng);
        let leaf = rogue.issue_leaf("victim.example", SimTime::EPOCH, &mut rng);
        assert!(store.issuer_of(&leaf).is_none());
        assert!(!store.contains(&rogue.cert));
    }

    #[test]
    fn issuer_dn_must_match_key() {
        let mut rng = SimRng::new(4);
        let (store, mut cas) = RootStore::os_x_like(1, SimTime::EPOCH, &mut rng);
        let mut leaf = cas[0].issue_leaf("www.example.com", SimTime::EPOCH, &mut rng);
        // Same signing key, forged issuer DN: must not validate.
        leaf.issuer = DistinguishedName::cn("Forged Name");
        assert!(store.issuer_of(&leaf).is_none());
    }

    #[test]
    #[should_panic(expected = "self-signed CAs")]
    fn rejects_non_ca_roots() {
        let mut rng = SimRng::new(5);
        let mut ca = CertAuthority::new_root(DistinguishedName::cn("CA"), SimTime::EPOCH, &mut rng);
        let leaf = ca.issue_leaf("x.example", SimTime::EPOCH, &mut rng);
        let mut store = RootStore::new();
        store.add(leaf);
    }
}
