//! Substrate benchmarks: world construction, proxied-request throughput,
//! longest-prefix matching, scheduling, and the monitor delay models —
//! the costs that bound how large a simulated campaign can run.

use httpwire::{Response, Uri};
use inetdb::{Ipv4Net, PrefixTrie};
use middlebox::monitor::profiles;
use netsim::rng::RngExt;
use netsim::{Scheduler, SimDuration, SimRng};
use proxynet::UsernameOptions;
use std::hint::black_box;
use std::net::Ipv4Addr;
use substrate::bench::Harness;

fn bench_world_build(h: &mut Harness) {
    for scale in [0.005, 0.02] {
        h.bench(&format!("worldgen/build_paper_world/{scale}"), || {
            black_box(worldgen::build(&worldgen::paper_spec(scale, 7)))
        });
    }
}

fn bench_proxy_throughput(h: &mut Harness) {
    let mut built = worldgen::build(&worldgen::paper_spec(0.01, 9));
    // Provision one object to fetch repeatedly.
    let apex = built.world.auth_apex().clone();
    let host = apex.child("bench").expect("valid").to_string();
    let web_ip = built.world.web_ip();
    built
        .world
        .auth_server_mut()
        .zone_mut()
        .add_a(apex.child("bench").expect("valid"), web_ip);
    built
        .world
        .web_server_mut()
        .put(&host, "/", Response::ok("text/html", vec![b'x'; 1024]));
    let uri = Uri::http(&host, "/");
    let mut session = 0u64;
    h.bench("proxynet/proxy_get_fresh_session", || {
        session += 1;
        let opts = UsernameOptions::new("bench").session(session).dns_remote();
        black_box(built.world.proxy_get(&opts, &uri)).ok();
    });
}

fn bench_trie(h: &mut Harness) {
    let mut rng = SimRng::new(3);
    let mut trie = PrefixTrie::new();
    for i in 0..10_000u32 {
        let addr = Ipv4Addr::from(rng.random::<u32>());
        trie.insert(Ipv4Net::new(addr, 8 + (i % 17) as u8), i);
    }
    let probes: Vec<Ipv4Addr> = (0..1024)
        .map(|_| Ipv4Addr::from(rng.random::<u32>()))
        .collect();
    let mut i = 0;
    h.bench("inetdb/lpm_lookup_10k_routes", || {
        i = (i + 1) % probes.len();
        black_box(trie.lookup(probes[i]))
    });
}

fn bench_scheduler(h: &mut Harness) {
    h.bench("netsim/schedule_and_drain_1k_events", || {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..1000u32 {
            s.schedule(SimDuration::from_millis((i as u64 * 37) % 1000), i);
        }
        let mut acc = 0u64;
        while let Some(f) = s.next() {
            acc += f.payload as u64;
        }
        black_box(acc)
    });
    let models = [
        profiles::trend_micro(),
        profiles::talktalk(),
        profiles::commtouch(),
        profiles::anchorfree(),
        profiles::bluecoat(),
        profiles::tiscali(),
    ];
    let mut rng = SimRng::new(11);
    h.bench("netsim/monitor_delay_models_sample", || {
        for m in &models {
            black_box(m.sample(&mut rng));
        }
    });
}

fn main() {
    let mut h = Harness::new("substrate");
    bench_world_build(&mut h);
    bench_proxy_throughput(&mut h);
    bench_trie(&mut h);
    bench_scheduler(&mut h);
    h.finish();
}
