//! The chaos machinery's zero-fault fast path: a world with the full
//! resilience stack armed but idle (inert-scoped campaign, 20 s deadline,
//! closed circuit breakers, backoff policy that never fires) must cost
//! nothing measurable over a world with the machinery absent.
//!
//! Two proofs, one noise-free and one wall-clock:
//!
//! 1. **Exactness** (asserted): the armed batch returns byte-identical
//!    bodies and the identical virtual clock — the machinery draws no RNG
//!    values and adds no virtual time when no fault fires.
//! 2. **Overhead** (measured): `scripts/check.sh` archives
//!    `BENCH_chaos.json`; the armed-idle median is expected within 2% of
//!    baseline (reported here rather than asserted, because wall-clock on
//!    shared CI is noisy even when the code path is provably identical).

use std::hint::black_box;

use httpwire::{Response, Uri};
use netsim::{FaultCampaign, FaultProfile, FaultRule, FaultScope, SimDuration};
use proxynet::{CircuitBreakerConfig, RetryPolicy, UsernameOptions, World};
use substrate::bench::{fmt_ns, Harness};

/// A small genuinely zero-fault world (even the "clean" ISP default of 1%
/// link flakiness is zeroed — a single retry would bill its backoff to the
/// fast path) with one registered probe host.
fn probe_world() -> (World, String) {
    use worldgen::spec::*;
    let spec = WorldSpec {
        seed: 0xC4A0,
        scale: 1.0,
        probe_apex: "bench.example".into(),
        countries: vec![CountrySpec {
            code: "AA".into(),
            has_rankings: true,
            isps: vec![IspSpec {
                flakiness: 0.0,
                ..IspSpec::clean("Bench ISP", 400)
            }],
        }],
        public_resolvers: PublicResolverSpec {
            clean_servers: 5,
            services: vec![],
            hijacking_service_weight: 0.0,
        },
        endhost: EndhostSpec::default(),
        monitors: vec![],
        sites: SiteSpec::default(),
        campaign: Vec::new(),
    };
    let mut built = worldgen::build(&spec);
    let world = &mut built.world;
    let apex = world.auth_apex().clone();
    let name = apex.child("bench-probe").expect("valid label");
    let host = name.to_string();
    let web_ip = world.web_ip();
    world.auth_server_mut().zone_mut().add_a(name, web_ip);
    world
        .web_server_mut()
        .put(&host, "/", Response::ok("text/html", vec![0x42; 4096]));
    (built.world, host)
}

/// Arm every resilience knob without letting any of them fire: a campaign
/// rule scoped to a region no node inhabits, the default deadline, breakers
/// that need a thousand consecutive failures, and a backoff policy that
/// only draws on retries.
fn arm(world: &mut World) {
    world.set_fault_campaign(FaultCampaign::none().with_rule(FaultRule {
        scope: FaultScope::region("ZZ"),
        window: None,
        profile: FaultProfile::Outage,
    }));
    world.set_circuit_breaker(
        Some(CircuitBreakerConfig {
            failure_threshold: 1_000,
            cooldown: SimDuration::from_secs(60),
        }),
        None,
    );
    world.set_retry_policy(RetryPolicy::exponential(
        SimDuration::from_millis(250),
        SimDuration::from_secs(4),
    ));
}

/// One measured batch: distinct sessions spread requests over exit nodes.
fn run_batch(world: &mut World, host: &str, sessions: u32) -> (u64, netsim::SimTime) {
    let uri = Uri::http(host, "/");
    let mut bytes = 0u64;
    for session in 0..sessions {
        let opts = UsernameOptions::new("bench").session(session as u64);
        match world.proxy_get(&opts, &uri) {
            Ok(resp) => bytes += resp.body.len() as u64,
            Err(e) => panic!("zero-fault world failed a request: {e:?}"),
        }
    }
    (bytes, world.now())
}

fn main() {
    let mut h = Harness::new("chaos");
    let sessions: u32 = if h.is_quick() { 200 } else { 1_000 };
    let (pristine, host) = probe_world();

    // Proof 1: armed-idle is *exact* — same bytes, same virtual clock.
    let baseline_out = {
        let mut world = pristine.clone();
        world.set_request_deadline(None);
        run_batch(&mut world, &host, sessions)
    };
    let armed_out = {
        let mut world = pristine.clone();
        arm(&mut world);
        run_batch(&mut world, &host, sessions)
    };
    assert_eq!(
        baseline_out, armed_out,
        "the armed-but-idle resilience stack changed the zero-fault run"
    );

    // Proof 2: wall-clock medians, archived to BENCH_chaos.json.
    let base_ns = {
        let stats = h.bench(&format!("proxy_get/{sessions}req/baseline"), || {
            let mut world = pristine.clone();
            world.set_request_deadline(None);
            black_box(run_batch(&mut world, &host, sessions))
        });
        stats.median_ns
    };
    let armed_ns = {
        let stats = h.bench(&format!("proxy_get/{sessions}req/armed-idle"), || {
            let mut world = pristine.clone();
            arm(&mut world);
            black_box(run_batch(&mut world, &host, sessions))
        });
        stats.median_ns
    };
    let overhead = armed_ns / base_ns - 1.0;
    println!(
        "armed-idle fast path: baseline {} vs armed {} → {:+.2}% (budget 2%)",
        fmt_ns(base_ns),
        fmt_ns(armed_ns),
        overhead * 100.0
    );
    h.finish();
}
