//! Ethics guardrails (§3.4).
//!
//! The paper's commitments: never download more than 1 MB through any one
//! exit node, and only request domains the study controls or a small set of
//! well-known sites (per-country Alexa top 20 and ten university domains).
//! These are enforced *mechanically* — experiment code cannot bypass them
//! without going through this module.

use proxynet::ZId;
use std::collections::HashMap;

/// Per-node byte budget enforcement.
#[derive(Debug, Default)]
pub struct ByteBudget {
    cap: u64,
    used: HashMap<ZId, u64>,
}

impl ByteBudget {
    /// A budget with the given per-node cap.
    pub fn new(cap: u64) -> Self {
        ByteBudget {
            cap,
            used: HashMap::new(),
        }
    }

    /// True if `zid` can still receive `bytes` more.
    ///
    /// Overflow denies: a request so large that `used + bytes` exceeds
    /// `u64::MAX` can never fit under any finite cap, so the guardrail must
    /// not wrap around into permissiveness (debug builds would panic on the
    /// wrap, but release builds silently wrapped before this used
    /// `checked_add`).
    pub fn allows(&self, zid: &ZId, bytes: u64) -> bool {
        match self.used.get(zid).copied().unwrap_or(0).checked_add(bytes) {
            Some(total) => total <= self.cap,
            None => false,
        }
    }

    /// Record a transfer. Returns false (and records nothing) if it would
    /// exceed the cap — callers must check [`ByteBudget::allows`] first and
    /// treat a false here as a bug. Overflow of the running total denies,
    /// exactly like [`ByteBudget::allows`].
    pub fn charge(&mut self, zid: &ZId, bytes: u64) -> bool {
        let entry = self.used.entry(*zid).or_insert(0);
        match entry.checked_add(bytes) {
            Some(total) if total <= self.cap => {
                *entry = total;
                true
            }
            _ => false,
        }
    }

    /// Bytes already used by `zid`.
    pub fn used(&self, zid: &ZId) -> u64 {
        self.used.get(zid).copied().unwrap_or(0)
    }

    /// Number of nodes that have been charged.
    pub fn nodes_touched(&self) -> usize {
        self.used.len()
    }
}

/// One suffix rule with its dotted form precomputed: `permits` sits on the
/// hot path of every probe admission, and allocating `".{apex}"` per rule
/// per request added a measurable cost once the executor went parallel.
#[derive(Debug)]
struct SuffixRule {
    apex: String,
    dotted: String,
}

/// Domain allowlist: the probe zone, ranked sites, universities, and the
/// study's invalid-cert sites.
#[derive(Debug, Default)]
pub struct DomainAllowlist {
    suffixes: Vec<SuffixRule>,
    exact: std::collections::HashSet<String>,
}

impl DomainAllowlist {
    /// An empty allowlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allow every subdomain of `apex` (and the apex itself).
    pub fn allow_suffix(&mut self, apex: &str) {
        let apex = apex.to_ascii_lowercase();
        let dotted = format!(".{apex}");
        self.suffixes.push(SuffixRule { apex, dotted });
    }

    /// Allow one exact host.
    pub fn allow_exact(&mut self, host: &str) {
        self.exact.insert(host.to_ascii_lowercase());
    }

    /// True if requests to `host` are permitted.
    pub fn permits(&self, host: &str) -> bool {
        let h = host.to_ascii_lowercase();
        if self.exact.contains(&h) {
            return true;
        }
        self.suffixes
            .iter()
            .any(|rule| h == rule.apex || h.ends_with(&rule.dotted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(i: u32) -> ZId {
        ZId(i as u64)
    }

    #[test]
    fn cap_is_enforced() {
        let mut b = ByteBudget::new(1_000_000);
        assert!(b.allows(&z(1), 900_000));
        assert!(b.charge(&z(1), 900_000));
        assert!(!b.allows(&z(1), 200_000));
        assert!(!b.charge(&z(1), 200_000));
        assert_eq!(b.used(&z(1)), 900_000);
        // Other nodes unaffected.
        assert!(b.allows(&z(2), 1_000_000));
    }

    #[test]
    fn exact_cap_boundary() {
        let mut b = ByteBudget::new(100);
        assert!(b.charge(&z(1), 100));
        assert!(!b.allows(&z(1), 1));
    }

    /// Regression: `used + bytes` used to wrap in release mode, so a huge
    /// request against a partially-used budget looked like it fit — the
    /// ethics cap became *permissive* for exactly the requests it most
    /// needed to deny.
    #[test]
    fn huge_request_denied_not_wrapped() {
        let mut b = ByteBudget::new(1_000_000);
        assert!(b.charge(&z(1), 500_000));
        // 500_000 + u64::MAX wraps to 499_999 (< cap) under wrapping
        // arithmetic; checked_add must deny instead.
        assert!(!b.allows(&z(1), u64::MAX));
        assert!(!b.charge(&z(1), u64::MAX));
        assert_eq!(b.used(&z(1)), 500_000, "denied charge records nothing");
        // Fresh node, zero used: still denied (u64::MAX > cap), and the
        // boundary where the sum itself overflows is denied too.
        assert!(!b.allows(&z(2), u64::MAX));
        assert!(!b.charge(&z(2), u64::MAX));
        assert_eq!(b.used(&z(2)), 0);
    }

    #[test]
    fn allowlist_suffix_and_exact() {
        let mut a = DomainAllowlist::new();
        a.allow_suffix("tft-probe.example");
        a.allow_exact("top1.us.example");
        assert!(a.permits("d1-99.tft-probe.example"));
        assert!(a.permits("TFT-PROBE.example"));
        assert!(a.permits("top1.us.example"));
        assert!(!a.permits("top2.us.example"));
        assert!(!a.permits("evil-tft-probe.example"), "no substring tricks");
        assert!(!a.permits("sensitive-site.example"));
    }
}
