//! Probe-outcome taxonomy and the data-quality ledger.
//!
//! Under a fault campaign, probes fail in ways the paper's pipeline never
//! had to distinguish: a stalled exchange that ate the request budget is
//! not a hijack, a truncated body is not an injection, and a corrupted
//! payload is not tampering evidence. Every experiment classifies each
//! issued probe into the [`ProbeOutcome`] taxonomy and records it here, per
//! requested country; damaged payloads are **quarantined** — excluded from
//! violation analysis — rather than miscounted. The report's data-quality
//! annex ([`crate::report::annex`]) renders this ledger and warns when
//! fault losses push a country below the study's minimum-node thresholds.
//!
//! The ledger is pure bookkeeping: recording an outcome draws no
//! randomness, so worlds without faults produce the same streams they
//! always did, just with an all-`ok` ledger attached.

use inetdb::CountryCode;
use proxynet::{ProxyError, TimelineDebug};
use std::collections::BTreeMap;

/// What ultimately happened to one issued probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Delivered on the first attempt; full-fidelity evidence.
    Ok,
    /// Delivered after `n` failed attempts; evidence intact, budget spent.
    Retried(usize),
    /// The per-request deadline elapsed; no evidence.
    TimedOut,
    /// The payload arrived as a strict prefix of what was sent; quarantined.
    Truncated,
    /// The payload failed an integrity check (inconsistent across repeated
    /// fetches, undecodable handshake); quarantined.
    Quarantined,
}

/// Per-group tallies of probe dispositions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QualityCounts {
    /// Probes delivered first try.
    pub ok: usize,
    /// Probes delivered after at least one retry.
    pub retried: usize,
    /// Total failed attempts behind the `retried` probes.
    pub retry_attempts: usize,
    /// Probes lost to the request deadline.
    pub timed_out: usize,
    /// Probes quarantined as truncated payloads.
    pub truncated: usize,
    /// Probes quarantined on other integrity failures.
    pub quarantined: usize,
    /// Probes lost to other proxy failures (all retries failed, churn
    /// mid-pair, circuit open).
    pub failed: usize,
}

impl QualityCounts {
    /// Record one disposition.
    pub fn record(&mut self, outcome: ProbeOutcome) {
        match outcome {
            ProbeOutcome::Ok => self.ok += 1,
            ProbeOutcome::Retried(n) => {
                self.retried += 1;
                self.retry_attempts += n;
            }
            ProbeOutcome::TimedOut => self.timed_out += 1,
            ProbeOutcome::Truncated => self.truncated += 1,
            ProbeOutcome::Quarantined => self.quarantined += 1,
        }
    }

    /// Probes that produced usable evidence.
    pub fn delivered(&self) -> usize {
        self.ok + self.retried
    }

    /// Probes whose evidence was lost or excluded.
    pub fn lost(&self) -> usize {
        self.timed_out + self.truncated + self.quarantined + self.failed
    }

    /// Evidence excluded by the quarantine rule specifically.
    pub fn in_quarantine(&self) -> usize {
        self.truncated + self.quarantined
    }

    /// All dispositions recorded.
    pub fn total(&self) -> usize {
        self.delivered() + self.lost()
    }

    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &QualityCounts) {
        self.ok += other.ok;
        self.retried += other.retried;
        self.retry_attempts += other.retry_attempts;
        self.timed_out += other.timed_out;
        self.truncated += other.truncated;
        self.quarantined += other.quarantined;
        self.failed += other.failed;
    }
}

/// One experiment's data-quality ledger, keyed by the country requested
/// for the probe. `BTreeMap`: the ledger is merged across shards and
/// rendered into the annex, so iteration order must be canonical.
#[derive(Debug, Clone, Default)]
pub struct DataQuality {
    /// Per-country dispositions.
    pub per_country: BTreeMap<CountryCode, QualityCounts>,
}

impl DataQuality {
    /// Record one probe disposition.
    pub fn record(&mut self, country: CountryCode, outcome: ProbeOutcome) {
        self.per_country.entry(country).or_default().record(outcome);
    }

    /// Record a probe lost to a proxy failure that is neither a timeout
    /// nor an integrity problem.
    pub fn record_failure(&mut self, country: CountryCode) {
        self.per_country.entry(country).or_default().failed += 1;
    }

    /// Classify a proxy error and record it: deadline exhaustion becomes
    /// [`ProbeOutcome::TimedOut`], everything else a plain failure.
    pub fn record_error(&mut self, country: CountryCode, err: &ProxyError) {
        match err {
            ProxyError::DeadlineExceeded(_) => self.record(country, ProbeOutcome::TimedOut),
            _ => self.record_failure(country),
        }
    }

    /// Fold another ledger into this one (shard merge).
    pub fn merge(&mut self, other: &DataQuality) {
        for (cc, counts) in &other.per_country {
            self.per_country.entry(*cc).or_default().merge(counts);
        }
    }

    /// Tallies summed over every country.
    pub fn totals(&self) -> QualityCounts {
        let mut t = QualityCounts::default();
        for counts in self.per_country.values() {
            t.merge(counts);
        }
        t
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.per_country.is_empty()
    }
}

/// The delivery-side disposition of a successful response: `Ok` or
/// `Retried(n)` from the attempt timeline (`n` = failed attempts before
/// the final success).
pub fn delivery_outcome(debug: &TimelineDebug) -> ProbeOutcome {
    let failed = debug.attempts.len().saturating_sub(1);
    if failed == 0 {
        ProbeOutcome::Ok
    } else {
        ProbeOutcome::Retried(failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxynet::{Attempt, AttemptOutcome, ZId};

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s)
    }

    fn timeline(outcomes: &[AttemptOutcome]) -> TimelineDebug {
        TimelineDebug {
            attempts: outcomes
                .iter()
                .enumerate()
                .map(|(i, o)| Attempt {
                    zid: ZId(i as u64),
                    outcome: *o,
                })
                .collect(),
        }
    }

    #[test]
    fn counts_partition_into_delivered_and_lost() {
        let mut c = QualityCounts::default();
        c.record(ProbeOutcome::Ok);
        c.record(ProbeOutcome::Retried(3));
        c.record(ProbeOutcome::TimedOut);
        c.record(ProbeOutcome::Truncated);
        c.record(ProbeOutcome::Quarantined);
        c.failed += 1;
        assert_eq!(c.delivered(), 2);
        assert_eq!(c.lost(), 4);
        assert_eq!(c.in_quarantine(), 2);
        assert_eq!(c.total(), 6);
        assert_eq!(c.retry_attempts, 3);
    }

    #[test]
    fn ledger_merges_per_country() {
        let mut a = DataQuality::default();
        a.record(cc("IR"), ProbeOutcome::Ok);
        a.record(cc("IR"), ProbeOutcome::Truncated);
        let mut b = DataQuality::default();
        b.record(cc("IR"), ProbeOutcome::Quarantined);
        b.record(cc("US"), ProbeOutcome::Ok);
        b.record_failure(cc("US"));
        a.merge(&b);
        assert_eq!(a.per_country[&cc("IR")].in_quarantine(), 2);
        assert_eq!(a.per_country[&cc("US")].failed, 1);
        let t = a.totals();
        assert_eq!(t.total(), 5);
        assert_eq!(t.delivered(), 2);
    }

    #[test]
    fn error_classification_separates_deadline_from_failure() {
        let mut q = DataQuality::default();
        q.record_error(
            cc("ZA"),
            &ProxyError::DeadlineExceeded(timeline(&[AttemptOutcome::TimedOut])),
        );
        q.record_error(
            cc("ZA"),
            &ProxyError::AllRetriesFailed(timeline(&[AttemptOutcome::Flaked])),
        );
        q.record_error(cc("ZA"), &ProxyError::NoExitAvailable);
        let c = q.per_country[&cc("ZA")];
        assert_eq!(c.timed_out, 1);
        assert_eq!(c.failed, 2);
    }

    #[test]
    fn delivery_outcome_counts_failed_attempts() {
        assert_eq!(
            delivery_outcome(&timeline(&[AttemptOutcome::Success])),
            ProbeOutcome::Ok
        );
        assert_eq!(
            delivery_outcome(&timeline(&[
                AttemptOutcome::Offline,
                AttemptOutcome::Flaked,
                AttemptOutcome::Success
            ])),
            ProbeOutcome::Retried(2)
        );
    }
}
