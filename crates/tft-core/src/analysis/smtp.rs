//! SMTP extension analysis: STARTTLS-stripping attribution by AS.
//!
//! The inference is comparative: mail servers advertise the same
//! capabilities to everyone, so an AS whose vantage points consistently
//! *don't* see `STARTTLS` (while the rest of the world does) hosts a
//! stripping middlebox.

use crate::config::StudyConfig;
use crate::smtp_exp::SmtpDataset;
use inetdb::{Asn, CountryCode};
use proxynet::World;
use std::collections::{BTreeMap, BTreeSet};

/// One stripping AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippingAsRow {
    /// The AS.
    pub asn: Asn,
    /// Operating ISP.
    pub isp: String,
    /// Country.
    pub country: CountryCode,
    /// Nodes that did not see STARTTLS.
    pub stripped: usize,
    /// Nodes measured in the AS.
    pub total: usize,
}

/// Full SMTP analysis output.
#[derive(Debug, Default)]
pub struct SmtpAnalysis {
    /// Nodes measured.
    pub nodes: usize,
    /// Distinct node ASes.
    pub ases: usize,
    /// Nodes that saw STARTTLS end-to-end.
    pub starttls_seen: usize,
    /// Nodes that did not.
    pub starttls_missing: usize,
    /// Nodes where STARTTLS was advertised but the upgrade then failed
    /// (a command-level stripper).
    pub upgrade_refused: usize,
    /// ASes where stripping is systematic (Table-4-style ≥90% grouping).
    pub stripping_ases: Vec<StrippingAsRow>,
}

/// Run the analysis.
pub fn analyze(data: &SmtpDataset, world: &World, cfg: &StudyConfig) -> SmtpAnalysis {
    let reg = &world.registry;
    let mut out = SmtpAnalysis {
        nodes: data.observations.len(),
        ..Default::default()
    };
    let mut node_ases: BTreeSet<Asn> = BTreeSet::new();
    let mut per_as: BTreeMap<Asn, (usize, usize)> = BTreeMap::new();
    for obs in &data.observations {
        let asn = reg.ip_to_asn(obs.exit_ip).unwrap_or(Asn(0));
        node_ases.insert(asn);
        let e = per_as.entry(asn).or_insert((0, 0));
        e.1 += 1;
        if obs.result.capabilities.starttls {
            out.starttls_seen += 1;
            if obs
                .result
                .starttls_reply
                .as_ref()
                .map(|r| !r.is_positive())
                .unwrap_or(false)
            {
                out.upgrade_refused += 1;
            }
        } else {
            out.starttls_missing += 1;
            e.0 += 1;
        }
    }
    out.ases = node_ases.len();
    out.stripping_ases = per_as
        .into_iter()
        .filter(|(_, (_, total))| *total >= cfg.min_nodes_per_as)
        .filter(|(_, (stripped, total))| {
            *stripped as f64 >= cfg.hijacking_server_share * *total as f64
        })
        .map(|(asn, (stripped, total))| {
            let org = reg.asn_to_org(asn);
            StrippingAsRow {
                asn,
                isp: org
                    .map(|o| o.name.clone())
                    .unwrap_or_else(|| "unknown".into()),
                country: org.map(|o| o.country).unwrap_or(CountryCode::new("ZZ")),
                stripped,
                total,
            }
        })
        .collect();
    out
}

/// Render the extension table.
pub fn render(a: &SmtpAnalysis) -> String {
    use std::fmt::Write as _;
    let mut s = String::from(
        "\n=== Extension — STARTTLS stripping via arbitrary-traffic VPN (the paper's future work) ===\n",
    );
    writeln!(
        s,
        "{:<9} {:<22} {:<3} {:>8} {:>6}",
        "AS", "ISP", "cty", "stripped", "total"
    )
    .unwrap();
    for row in &a.stripping_ases {
        writeln!(
            s,
            "{:<9} {:<22} {:<3} {:>8} {:>6}",
            row.asn.to_string(),
            row.isp,
            row.country.to_string(),
            row.stripped,
            row.total
        )
        .unwrap();
    }
    writeln!(
        s,
        "{} nodes measured in {} ASes; STARTTLS visible from {}, missing from {} ({:.2}%)",
        a.nodes,
        a.ases,
        a.starttls_seen,
        a.starttls_missing,
        100.0 * a.starttls_missing as f64 / a.nodes.max(1) as f64
    )
    .unwrap();
    s
}
