//! Workspace acceptance for `tft-serve`: the serving layer keeps the
//! stack's determinism contract end to end.
//!
//! - An identical request trace produces **byte-identical response
//!   bodies** at workers 1, 2, and 8 — worker count is a wall-clock knob,
//!   nothing more, even through the queue, the cache, and chunked framing.
//! - A cache hit **serves without re-executing**: the execution counters
//!   stay flat while repeat submissions are answered `200` from tier 2.
//! - A saturated queue answers `429 + Retry-After`, and a client that
//!   honors the hint gets admitted on retry.

use httpwire::{Method, Request, Response, StatusCode, Target};
use netsim::{SimDuration, SimTime};
use tft_serve::gateway::Gateway;
use tft_serve::loadgen::{self, LoadGenConfig};
use tft_serve::GatewayConfig;
use worldgen::WorldSpec;

fn post_spec(spec: &WorldSpec) -> Vec<u8> {
    let body = worldgen::to_json(spec).expect("spec renders");
    let mut req = Request {
        method: Method::Post,
        target: Target::Origin("/studies".into()),
        headers: httpwire::Headers::new(),
        body: body.into_bytes(),
    };
    req.headers.set("Host", "gateway");
    req.headers
        .set("Content-Length", &req.body.len().to_string());
    req.encode()
}

fn parse(raw: &[u8]) -> Response {
    Response::parse(raw).expect("gateway responses parse").0
}

/// The headline guarantee: replaying the same deterministic load trace —
/// open-loop arrivals, hot/cold spec mix, polls, retries — digests to the
/// same value over every response byte, whether studies execute on 1, 2,
/// or 8 pool workers.
#[test]
fn identical_traces_are_byte_identical_at_workers_1_2_8() {
    let cfg = |workers: usize| LoadGenConfig {
        seed: 0xE2E_5E4E,
        clients: 200,
        window: SimDuration::from_secs(60),
        hot_specs: 2,
        cold_specs: 2,
        hot_fraction: 0.85,
        gateway: GatewayConfig {
            workers,
            ..GatewayConfig::default()
        },
    };
    let w1 = loadgen::run(&cfg(1));
    let w2 = loadgen::run(&cfg(2));
    let w8 = loadgen::run(&cfg(8));

    assert_eq!(
        w1.response_digest, w2.response_digest,
        "workers=1 vs workers=2 responses diverged"
    );
    assert_eq!(
        w1.response_digest, w8.response_digest,
        "workers=1 vs workers=8 responses diverged"
    );
    // The virtual-time metrics are part of the trace, so they match too.
    assert_eq!(w1.requests, w8.requests);
    assert_eq!(w1.p95_latency_ms, w8.p95_latency_ms);
    assert_eq!(w1.stats, w8.stats);
    // And the trace actually exercised the interesting paths.
    assert!(w1.stats.cache_hits > 0, "hot set never hit: {w1:?}");
    assert!(w1.stats.studies_executed > 0, "nothing executed: {w1:?}");
}

/// Single-flight + content addressing: once a study has run, resubmitting
/// the same spec is answered from the report cache — `200`, same body as a
/// `GET`, and the execution counters never move again.
#[test]
fn cache_hit_serves_without_reexecuting() {
    let mut gw = Gateway::new(GatewayConfig::default());
    let spec = worldgen::smoke_spec(0xCAFE);
    let raw = post_spec(&spec);

    let accept = parse(&gw.handle(&raw, SimTime::EPOCH));
    assert_eq!(accept.status, StatusCode::ACCEPTED);
    let id = accept.headers.get("X-Study-Id").expect("id").to_string();

    // Step virtual time past the whole study; it executes exactly once.
    let done_t = SimTime::EPOCH + Gateway::cold_study_cost() + SimDuration::from_millis(1);
    let hit = parse(&gw.handle(&raw, done_t));
    assert_eq!(hit.status, StatusCode::OK);
    assert_eq!(hit.headers.get("X-Cache"), Some("hit"));
    assert_eq!(gw.stats().studies_executed, 1);
    assert_eq!(gw.stats().worlds_built, 1);

    // Hammer the same spec: all hits, zero additional work.
    for _ in 0..5 {
        let again = parse(&gw.handle(&raw, done_t));
        assert_eq!(again.status, StatusCode::OK);
        assert_eq!(again.body, hit.body);
    }
    let stats = gw.stats();
    assert_eq!(stats.studies_executed, 1, "cache hits re-executed");
    assert_eq!(stats.worlds_built, 1, "cache hits rebuilt the world");
    assert_eq!(stats.cache_hits, 6);

    // The POST-hit body and the GET body are the same bytes.
    let get = Request::origin_get("gateway", &format!("/studies/{id}")).encode();
    let got = parse(&gw.handle(&get, done_t));
    assert_eq!(got.status, StatusCode::OK);
    assert_eq!(got.body, hit.body);
}

/// Backpressure round-trip: a full queue refuses with `429 + Retry-After`,
/// and retrying after the hinted delay is admitted.
#[test]
fn retry_after_hint_is_honest() {
    let mut gw = Gateway::new(GatewayConfig {
        queue_depth: 1,
        ..GatewayConfig::default()
    });
    let t0 = SimTime::EPOCH;
    let first = parse(&gw.handle(&post_spec(&worldgen::smoke_spec(1)), t0));
    assert_eq!(first.status, StatusCode::ACCEPTED);

    let second_raw = post_spec(&worldgen::smoke_spec(2));
    let full = parse(&gw.handle(&second_raw, t0));
    assert_eq!(full.status, StatusCode::TOO_MANY_REQUESTS);
    let secs: u64 = full
        .headers
        .get("Retry-After")
        .expect("backpressure carries Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");

    // A client that honors the hint finds a slot (the first study has
    // drained off the virtual server by then).
    let retry = parse(&gw.handle(&second_raw, t0 + SimDuration::from_secs(secs)));
    assert_eq!(retry.status, StatusCode::ACCEPTED);
    assert_eq!(retry.headers.get("X-Cache"), Some("miss"));
}
