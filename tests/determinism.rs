//! Workspace invariant: the entire stack — world construction, four
//! experiments, analysis, rendering — is a pure function of (spec, seed).

use tft::prelude::*;

fn run_once(seed: u64) -> (String, usize, u64) {
    let mut built = build(&paper_spec(0.004, seed));
    let cfg = StudyConfig::scaled(0.004);
    let report = run_study(&mut built.world, &cfg);
    (
        render_tables(&report),
        report.unique_nodes(),
        built.world.bytes_billed(&cfg.customer),
    )
}

#[test]
fn identical_seeds_produce_identical_reports() {
    let a = run_once(0xD00D);
    let b = run_once(0xD00D);
    assert_eq!(a.1, b.1, "node counts differ");
    assert_eq!(a.2, b.2, "billing differs");
    assert_eq!(a.0, b.0, "rendered tables differ");
}

#[test]
fn different_seeds_produce_different_measurements() {
    let a = run_once(1);
    let b = run_once(2);
    assert_ne!(a.0, b.0, "different seeds should not collide");
}
