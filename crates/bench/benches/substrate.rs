//! Substrate benchmarks: world construction, proxied-request throughput,
//! longest-prefix matching, scheduling, and the monitor delay models —
//! the costs that bound how large a simulated campaign can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use httpwire::{Response, Uri};
use inetdb::{Ipv4Net, PrefixTrie};
use middlebox::monitor::profiles;
use netsim::{Scheduler, SimDuration, SimRng};
use proxynet::UsernameOptions;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn bench_world_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("worldgen");
    g.sample_size(10);
    for scale in [0.005, 0.02] {
        g.bench_with_input(
            BenchmarkId::new("build_paper_world", scale),
            &scale,
            |b, &scale| b.iter(|| black_box(worldgen::build(&worldgen::paper_spec(scale, 7)))),
        );
    }
    g.finish();
}

fn bench_proxy_throughput(c: &mut Criterion) {
    let mut built = worldgen::build(&worldgen::paper_spec(0.01, 9));
    // Provision one object to fetch repeatedly.
    let apex = built.world.auth_apex().clone();
    let host = apex.child("bench").expect("valid").to_string();
    let web_ip = built.world.web_ip();
    built
        .world
        .auth_server_mut()
        .zone_mut()
        .add_a(apex.child("bench").expect("valid"), web_ip);
    built
        .world
        .web_server_mut()
        .put(&host, "/", Response::ok("text/html", vec![b'x'; 1024]));
    let uri = Uri::http(&host, "/");
    let mut session = 0u64;
    let mut g = c.benchmark_group("proxynet");
    g.throughput(Throughput::Elements(1));
    g.bench_function("proxy_get_fresh_session", |b| {
        b.iter(|| {
            session += 1;
            let opts = UsernameOptions::new("bench").session(session).dns_remote();
            black_box(built.world.proxy_get(&opts, &uri)).ok();
        })
    });
    g.finish();
}

fn bench_trie(c: &mut Criterion) {
    let mut rng = SimRng::new(3);
    use netsim::rng::RngExt;
    let mut trie = PrefixTrie::new();
    for i in 0..10_000u32 {
        let addr = Ipv4Addr::from(rng.random::<u32>());
        trie.insert(Ipv4Net::new(addr, 8 + (i % 17) as u8), i);
    }
    let probes: Vec<Ipv4Addr> = (0..1024)
        .map(|_| Ipv4Addr::from(rng.random::<u32>()))
        .collect();
    let mut g = c.benchmark_group("inetdb");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("lpm_lookup_10k_routes", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % probes.len();
            black_box(trie.lookup(probes[i]))
        })
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    g.bench_function("schedule_and_drain_1k_events", |b| {
        b.iter(|| {
            let mut s: Scheduler<u32> = Scheduler::new();
            for i in 0..1000u32 {
                s.schedule(SimDuration::from_millis((i as u64 * 37) % 1000), i);
            }
            let mut acc = 0u64;
            while let Some(f) = s.next() {
                acc += f.payload as u64;
            }
            black_box(acc)
        })
    });
    g.bench_function("monitor_delay_models_sample", |b| {
        let models = [
            profiles::trend_micro(),
            profiles::talktalk(),
            profiles::commtouch(),
            profiles::anchorfree(),
            profiles::bluecoat(),
            profiles::tiscali(),
        ];
        let mut rng = SimRng::new(11);
        b.iter(|| {
            for m in &models {
                black_box(m.sample(&mut rng));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_world_build,
    bench_proxy_throughput,
    bench_trie,
    bench_scheduler
);
criterion_main!(benches);
