//! `hot-path-alloc`: no per-probe allocation churn in functions reachable
//! from an annotated hot root.
//!
//! ROADMAP open item 1 is the allocation/memory overhaul: at scale 0.1 a
//! study run makes ~45M allocations, and the per-probe loops are where
//! they multiply. A `format!` that looks harmless in isolation runs four
//! million times in a full study. This pass rides the call graph: any
//! function reachable from a `// tft-lint: hot-root` annotation is *hot*,
//! and known allocation idioms inside it are findings:
//!
//! - `format!(…)` — builds a fresh `String` every call,
//! - `.to_string()` / `.to_owned()` — ditto,
//! - `.clone()` — deep-copies sized containers (over-approximate: the
//!   engine has no types, so scalar `Copy`-ish clones are flagged too and
//!   belong in an allow or the baseline),
//! - `String::new(…)` / `String::from(…)` / `Vec::new(…)` — fresh heap
//!   containers per call.
//!
//! The fix is a reusable scratch buffer (`String::clear` + `write!`), a
//! `&'static str` label, or hoisting the allocation out of the loop. One
//! structural exemption: allocations inside a closure passed to a `*_with`
//! callee (lazy-evaluation convention, e.g. `TraceLog::record_with`) are
//! skipped — the closure only runs when the guarded feature is enabled.
//! Other findings that are genuinely cold carry a reasoned entry in
//! `LINT_baseline.json`.

use super::in_src;
use crate::engine::{Analysis, Diagnostic, FileKind, Pass, SourceFile};

/// Flag allocation idioms in hot-root-reachable functions.
pub struct HotPathAlloc;

/// Method names that allocate on every call.
const ALLOC_METHODS: [&str; 3] = ["clone", "to_owned", "to_string"];
/// `Type::fn` pairs that allocate a fresh container.
const ALLOC_CTORS: [(&str, &str); 3] = [("String", "from"), ("String", "new"), ("Vec", "new")];

impl Pass for HotPathAlloc {
    fn id(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn description(&self) -> &'static str {
        "forbid format!/to_string/to_owned/clone/String::new/Vec::new in functions \
         reachable from a `// tft-lint: hot-root` annotation; reuse scratch \
         buffers or &'static str labels"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.kind == FileKind::Rust && in_src(file)
    }

    fn check(&self, _file: &SourceFile, _out: &mut Vec<Diagnostic>) {}

    fn check_analysis(&self, files: &[SourceFile], analysis: &Analysis, out: &mut Vec<Diagnostic>) {
        let table = &analysis.table;
        for id in 0..table.len() {
            let Some(root) = analysis.reach.hot[id] else {
                continue;
            };
            let node = table.node(id);
            let file = &files[table.fns[id].file];
            if node.in_test_mod || !self.applies(file) {
                continue;
            }
            let root_label = table.label(files, root);
            let via = if root == id {
                "is an annotated hot root".to_string()
            } else {
                format!("is reachable from hot root {root_label}")
            };
            // Lazy-evaluation exemption: a closure passed to a `*_with`
            // callee (`TraceLog::record_with`, `unwrap_or_else`-style
            // deferral APIs named by convention) only runs when the guarded
            // feature is active, so allocations inside it are not per-probe
            // costs. This is exactly the remediation this pass recommends
            // for trace formatting — flagging the fixed form would force
            // every fix into the baseline.
            let lazy: Vec<(usize, usize)> = node
                .closures
                .iter()
                .filter(|cl| {
                    node.calls.iter().any(|c| {
                        c.path.last().is_some_and(|n| n.ends_with("_with"))
                            && c.args.0 <= cl.body.0
                            && cl.body.1 <= c.args.1
                    })
                })
                .map(|cl| cl.body)
                .collect();
            let in_lazy = |tok: usize| lazy.iter().any(|&(a, b)| a <= tok && tok < b);
            for m in &node.macros {
                if m.name == "format" && !in_lazy(m.name_tok) {
                    out.push(self.diag(
                        file,
                        m.line,
                        m.col,
                        &format!(
                            "format! allocates a fresh String per call and `{}` {via}; \
                             write into a reused scratch buffer or use a &'static str label",
                            node.name
                        ),
                    ));
                }
            }
            for c in &node.calls {
                if in_lazy(c.name_tok) {
                    continue;
                }
                let name = c.path.last().map(String::as_str).unwrap_or("");
                if c.method && ALLOC_METHODS.contains(&name) {
                    out.push(self.diag(
                        file,
                        c.line,
                        c.col,
                        &format!(
                            ".{name}() allocates per call and `{}` {via}; hoist the copy \
                             out of the hot path or borrow instead",
                            node.name
                        ),
                    ));
                } else if !c.method && c.path.len() >= 2 {
                    let ty = &c.path[c.path.len() - 2];
                    if ALLOC_CTORS.iter().any(|&(t, f)| t == ty && f == name) {
                        out.push(self.diag(
                            file,
                            c.line,
                            c.col,
                            &format!(
                                "{ty}::{name} builds a fresh container per call and `{}` {via}; \
                                 allocate once outside the loop and reuse it",
                                node.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

impl HotPathAlloc {
    fn diag(&self, file: &SourceFile, line: u32, col: u32, message: &str) -> Diagnostic {
        Diagnostic {
            pass: self.id().into(),
            file: file.rel_path.clone(),
            line,
            col,
            message: message.to_string(),
        }
    }
}
