//! Builds the calibrated world at a test scale and checks the planted
//! ground truth lands near the paper's headline rates.

use worldgen::{build, calibration::headline, paper_spec, DnsHijackSource, DEFAULT_SEED};

fn built() -> worldgen::BuiltWorld {
    build(&paper_spec(0.02, DEFAULT_SEED))
}

#[test]
fn population_scales_proportionally() {
    let b = built();
    let n = b.truth.total_nodes;
    // 0.02 × ~645k ≈ 13k (clamping inflates small groups slightly).
    assert!((9_000..20_000).contains(&n), "population {n}");
    assert!(b.truth.nodes_per_country.len() >= 60);
}

#[test]
fn planted_dns_hijack_rate_near_paper() {
    let b = built();
    let rate = b.truth.dns_hijack_rate();
    assert!(
        (headline::DNS_HIJACK_RATE * 0.6..headline::DNS_HIJACK_RATE * 1.6).contains(&rate),
        "planted hijack rate {rate:.4} vs paper {:.4}",
        headline::DNS_HIJACK_RATE
    );
}

#[test]
fn planted_attribution_mix_is_isp_dominated() {
    let b = built();
    let (isp, public, other) = b.truth.dns_attribution_mix();
    assert!(isp > 0.75, "ISP share {isp:.3}");
    assert!(public < 0.20, "public share {public:.3}");
    assert!(other < 0.15, "other share {other:.3}");
    assert!((isp + public + other - 1.0).abs() < 1e-9);
}

#[test]
fn malaysia_hijack_ratio_dominates() {
    let b = built();
    let cc = inetdb::CountryCode::new("MY");
    let total = b.truth.nodes_per_country[&cc] as f64;
    let hijacked = b
        .truth
        .dns_hijacked
        .iter()
        .filter(|(id, _)| b.world.node(proxynet::NodeId(id.0)).country == cc)
        .count() as f64;
    let ratio = hijacked / total;
    assert!((0.40..0.65).contains(&ratio), "MY ratio {ratio:.3}");
}

#[test]
fn named_isp_resolvers_hijack() {
    let b = built();
    let named: std::collections::HashSet<&str> = b
        .truth
        .dns_hijacked
        .values()
        .filter_map(|s| match s {
            DnsHijackSource::IspResolver(name) => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for isp in [
        "TMnet",
        "Talk Talk",
        "Verizon",
        "Cox Communications",
        "Oi Fixo",
    ] {
        assert!(named.contains(isp), "missing hijacking ISP {isp}");
    }
}

#[test]
fn tls_and_monitor_rates_near_paper() {
    let b = built();
    let tls = b.truth.tls_rate();
    assert!(
        (headline::CERT_REPLACE_RATE * 0.5..headline::CERT_REPLACE_RATE * 2.0).contains(&tls),
        "tls rate {tls:.5}"
    );
    let mon = b.truth.monitor_rate();
    assert!(
        (headline::MONITOR_RATE * 0.5..headline::MONITOR_RATE * 2.0).contains(&mon),
        "monitor rate {mon:.5}"
    );
}

#[test]
fn transcoding_ases_present_with_real_asns() {
    let b = built();
    // Every Table 7 ASN must exist and actually transcode.
    for row in &worldgen::calibration::TABLE7 {
        let asn = inetdb::Asn(row.asn);
        assert!(
            b.world
                .isp_http_of(asn)
                .map(|c| c.transcoder.is_some())
                .unwrap_or(false),
            "AS{} has no transcoder",
            row.asn
        );
    }
    assert!(!b.truth.image_transcoded.is_empty());
}

#[test]
fn invalid_sites_exist_with_invalid_chains() {
    let b = built();
    for host in [
        "invalid-selfsigned.tft-probe.example",
        "invalid-expired.tft-probe.example",
        "invalid-wrongname.tft-probe.example",
    ] {
        let ip = b.world.site_address(host).expect("site registered");
        assert!(!ip.is_unspecified());
    }
}

#[test]
fn build_is_deterministic() {
    let a = built();
    let b = built();
    assert_eq!(a.truth.total_nodes, b.truth.total_nodes);
    assert_eq!(a.truth.dns_hijacked.len(), b.truth.dns_hijacked.len());
    assert_eq!(a.truth.tls_intercepted, b.truth.tls_intercepted);
    assert_eq!(
        a.world.node(proxynet::NodeId(100)).ip,
        b.world.node(proxynet::NodeId(100)).ip
    );
}

#[test]
fn different_seed_different_world() {
    let a = build(&paper_spec(0.02, 1));
    let b = build(&paper_spec(0.02, 2));
    // Same structure…
    assert_eq!(a.truth.total_nodes, b.truth.total_nodes);
    // …different assignment.
    assert_ne!(
        a.truth.dns_hijacked.keys().collect::<Vec<_>>(),
        b.truth.dns_hijacked.keys().collect::<Vec<_>>()
    );
}
