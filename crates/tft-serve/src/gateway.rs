//! The study gateway: HTTP in, study results out.
//!
//! ## Request → queue → execute → cache → respond
//!
//! `POST /studies` takes a [`worldgen::WorldSpec`] as JSON. The spec is
//! validated, content-addressed (see [`crate::cache`]), and dispatched:
//!
//! - **cache hit** — a completed study with the same address exists: `200`
//!   with the full rendered body, no execution;
//! - **in-flight join** — the same address is queued or running: `202`
//!   pointing at the existing study (single-flight: concurrent identical
//!   submissions never execute twice);
//! - **admitted** — a free queue slot: `202` with the study's URL;
//! - **backpressure** — the queue is full: `429` with a `Retry-After`
//!   computed from the queued virtual work, so a well-behaved client's
//!   retry lands when a slot is actually plausible.
//!
//! `GET /studies/{id}` serves a running study's output **incrementally**:
//! sections appear as virtual stages complete, framed with chunked
//! transfer coding ([`httpwire::chunked::Encoder`]); once complete, the
//! full body is served with a content length.
//!
//! ## Virtual time
//!
//! The gateway never reads a wall clock. Every `handle` call carries the
//! caller's virtual `now`; queued studies execute on one virtual server in
//! FIFO order, each stage completing at a fixed virtual offset. The *real*
//! work (worldgen, experiment shards on [`substrate::pool`] workers) runs
//! lazily as virtual completion times pass. Worker count changes only
//! wall-clock, so identical request traces produce byte-identical
//! responses at any worker count — the workspace e2e test pins this at
//! workers 1, 2, and 8.

use crate::cache::{StudyCache, StudyKey, TierStats};
use crate::queue::BoundedFifo;
use httpwire::{chunked, Method, Request, Response, StatusCode, Target};
use netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use tft_core::{render_annex, render_tables, ExecOptions, StudyConfig, StudyDriver, StudyStage};
use worldgen::WorldSpec;

/// Gateway tuning.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Worker threads for study execution (a wall-clock knob only).
    pub workers: usize,
    /// Maximum studies queued or running before `429`.
    pub queue_depth: usize,
    /// Tier-1 capacity (pristine worlds).
    pub world_cache: usize,
    /// Tier-2 capacity (rendered reports).
    pub report_cache: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 1,
            queue_depth: 8,
            world_cache: 8,
            report_cache: 8,
        }
    }
}

/// Virtual cost of building a world.
const COST_BUILD: SimDuration = SimDuration::from_millis(400);

/// Virtual cost of one study stage. Constants, not measurements: virtual
/// time models queueing, it does not profile the host.
fn stage_cost(stage: StudyStage) -> SimDuration {
    SimDuration::from_millis(match stage {
        StudyStage::Dns => 1500,
        StudyStage::Http => 1200,
        StudyStage::Https => 900,
        StudyStage::Monitor => 800,
        StudyStage::Analyze => 600,
        StudyStage::Done => 0,
    })
}

/// Everything a study costs on the virtual server, end to end.
fn total_cost() -> SimDuration {
    let mut d = COST_BUILD;
    for stage in [
        StudyStage::Dns,
        StudyStage::Http,
        StudyStage::Https,
        StudyStage::Monitor,
        StudyStage::Analyze,
    ] {
        d += stage_cost(stage);
    }
    d
}

/// Request counters, split by outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// All requests handled.
    pub requests: u64,
    /// POSTs served whole from the report cache.
    pub cache_hits: u64,
    /// POSTs deduplicated onto an in-flight study.
    pub joined: u64,
    /// POSTs admitted as new studies.
    pub accepted: u64,
    /// POSTs refused with `429`.
    pub rejected: u64,
    /// Requests refused with `400` (malformed HTTP, JSON, or spec).
    pub invalid: u64,
    /// GETs (and bad routes) answered `404`.
    pub not_found: u64,
    /// Worlds actually built (tier-1 misses that did the work).
    pub worlds_built: u64,
    /// Studies actually executed end to end (tier-2 misses that did the work).
    pub studies_executed: u64,
}

/// One queued-or-running study.
struct Job {
    spec: WorldSpec,
    /// Virtual completion time of each remaining step; the first entry is
    /// the world build, the rest are [`StudyDriver`] stages in order.
    pending: VecDeque<SimTime>,
    /// Populated by the build step.
    driver: Option<StudyDriver>,
    /// Chunk-framed body emitted so far (what an incremental GET serves).
    wire: Vec<u8>,
    /// Plain body emitted so far (what the cache stores at completion).
    body: Vec<u8>,
    enc: chunked::Encoder,
}

/// The gateway. One instance is one virtual server; see the module docs.
pub struct Gateway {
    cfg: GatewayConfig,
    cache: StudyCache,
    /// Admission-ordered keys of queued/running studies.
    active: BoundedFifo<StudyKey>,
    jobs: BTreeMap<StudyKey, Job>,
    finished: BTreeMap<StudyKey, SimTime>,
    clock: SimTime,
    busy_until: SimTime,
    stats: GatewayStats,
}

impl Gateway {
    /// A fresh gateway at the virtual epoch.
    pub fn new(cfg: GatewayConfig) -> Gateway {
        Gateway {
            cache: StudyCache::new(cfg.world_cache, cfg.report_cache),
            active: BoundedFifo::new(cfg.queue_depth),
            jobs: BTreeMap::new(),
            finished: BTreeMap::new(),
            clock: SimTime::EPOCH,
            busy_until: SimTime::EPOCH,
            stats: GatewayStats::default(),
            cfg,
        }
    }

    /// Handle one raw HTTP request at virtual time `now`, returning the
    /// encoded response. Total: malformed input yields `400`, never a
    /// panic.
    pub fn handle(&mut self, raw: &[u8], now: SimTime) -> Vec<u8> {
        self.stats.requests += 1;
        self.advance_to(now);
        let Ok((req, _)) = Request::parse(raw) else {
            self.stats.invalid += 1;
            return plain(StatusCode::BAD_REQUEST, "malformed HTTP request\n").encode();
        };
        let response = match (&req.method, &req.target) {
            (Method::Post, Target::Origin(path)) if path == "/studies" => self.post_study(&req),
            (Method::Get, Target::Origin(path)) => match path.strip_prefix("/studies/") {
                Some(id) => self.get_study(id),
                None => self.route_not_found(),
            },
            _ => self.route_not_found(),
        };
        response.encode()
    }

    fn route_not_found(&mut self) -> Response {
        self.stats.not_found += 1;
        plain(StatusCode::NOT_FOUND, "no such route\n")
    }

    /// `POST /studies`: validate, address, and dispatch a spec.
    fn post_study(&mut self, req: &Request) -> Response {
        let spec = match std::str::from_utf8(&req.body)
            .map_err(|_| "spec body is not UTF-8".to_string())
            .and_then(|s| worldgen::from_json(s).map_err(|e| e.to_string()))
        {
            Ok(spec) => spec,
            Err(msg) => {
                self.stats.invalid += 1;
                return plain(StatusCode::BAD_REQUEST, &format!("invalid spec: {msg}\n"));
            }
        };
        let key = StudyKey::for_spec(&spec);
        let id = key.study_id();

        if let Some(body) = self.cache.report(&key) {
            // Terminal: the study already ran; serve it without executing.
            self.stats.cache_hits += 1;
            let mut resp = plain_body(StatusCode::OK, body.clone());
            resp.headers.set("X-Study-Id", &id);
            resp.headers.set("X-Cache", "hit");
            return resp;
        }
        if self.jobs.contains_key(&key) {
            // Single-flight: identical submission joins the in-flight study.
            self.stats.joined += 1;
            return self.accepted_response(&id, "joined");
        }
        if self.active.is_full() {
            // Retry, not terminal: tell the client when a slot is plausible.
            self.stats.rejected += 1;
            let mut resp = plain(
                StatusCode::TOO_MANY_REQUESTS,
                &format!("queue full ({} studies pending)\n", self.active.len()),
            );
            resp.headers
                .set("Retry-After", &self.retry_after_secs().to_string());
            return resp;
        }

        // Admit: reserve the virtual server right after the current backlog.
        let start = self.clock.max(self.busy_until);
        let mut pending = VecDeque::with_capacity(6);
        let mut t = start + COST_BUILD;
        pending.push_back(t);
        for stage in [
            StudyStage::Dns,
            StudyStage::Http,
            StudyStage::Https,
            StudyStage::Monitor,
            StudyStage::Analyze,
        ] {
            t += stage_cost(stage);
            pending.push_back(t);
        }
        self.busy_until = t;
        self.jobs.insert(
            key,
            Job {
                spec,
                pending,
                driver: None,
                wire: Vec::new(),
                body: Vec::new(),
                enc: chunked::Encoder::new(),
            },
        );
        self.active
            .push(key)
            .unwrap_or_else(|_| unreachable!("fullness checked above"));
        self.stats.accepted += 1;
        self.accepted_response(&id, "miss")
    }

    fn accepted_response(&self, id: &str, cache_state: &str) -> Response {
        let mut resp = plain(
            StatusCode::ACCEPTED,
            &format!("study {id} accepted; fetch /studies/{id}\n"),
        );
        resp.headers.set("X-Study-Id", id);
        resp.headers.set("X-Cache", cache_state);
        resp.headers.set("Location", &format!("/studies/{id}"));
        resp
    }

    /// `GET /studies/{id}`: completed studies get the full body with a
    /// content length; running studies get the chunk frames emitted so far
    /// (a decodable snapshot — each poll sees strictly more).
    fn get_study(&mut self, id: &str) -> Response {
        let Some(key) = StudyKey::parse_id(id) else {
            self.stats.not_found += 1;
            return plain(StatusCode::NOT_FOUND, "malformed study id\n");
        };
        if let Some(job) = self.jobs.get(&key) {
            let mut wire = job.wire.clone();
            wire.extend_from_slice(b"0\r\n\r\n");
            let mut resp = Response::new(StatusCode::OK, wire);
            resp.headers.set("Content-Type", "text/plain");
            resp.headers.set("Transfer-Encoding", "chunked");
            resp.headers.set("X-Study-Id", id);
            resp.headers.set("X-Study-Complete", "false");
            return resp;
        }
        if let Some(body) = self.cache.peek_report(&key) {
            let mut resp = plain_body(StatusCode::OK, body.clone());
            resp.headers.set("X-Study-Id", id);
            resp.headers.set("X-Study-Complete", "true");
            return resp;
        }
        self.stats.not_found += 1;
        plain(StatusCode::NOT_FOUND, "unknown study\n")
    }

    /// Move the virtual clock to `now` and run every step whose virtual
    /// completion time has passed. Jobs run strictly in admission order —
    /// the FIFO front gates everything behind it.
    fn advance_to(&mut self, now: SimTime) {
        if now > self.clock {
            self.clock = now;
        }
        while let Some(&key) = self.active.front() {
            let job = self.jobs.get_mut(&key).expect("active keys have jobs");
            while let Some(&end) = job.pending.front() {
                if end > self.clock {
                    break;
                }
                job.pending.pop_front();
                // Build step or driver stage, decided by driver presence.
                if job.driver.is_none() {
                    let world = match self.cache.world(&key) {
                        Some(world) => world,
                        None => {
                            let built = worldgen::build(&job.spec).world;
                            self.stats.worlds_built += 1;
                            self.cache.insert_world(key, built.clone());
                            built
                        }
                    };
                    let cfg = StudyConfig::scaled(job.spec.scale);
                    job.driver = Some(StudyDriver::new(
                        world,
                        cfg,
                        &ExecOptions::with_workers(self.cfg.workers),
                    ));
                    let section = format!(
                        "# study {}\nstage build complete at {end}\n",
                        key.study_id()
                    );
                    emit(job, &section);
                } else {
                    let stage = job.driver.as_mut().expect("built above").step();
                    let section = format!("stage {} complete at {end}\n", stage.label());
                    emit(job, &section);
                    if job.driver.as_ref().expect("built above").is_done() {
                        let driver = job.driver.take().expect("present in this branch");
                        let (report, _world) = driver.into_parts();
                        let cfg = StudyConfig::scaled(job.spec.scale);
                        let tail = format!(
                            "\n{}{}# end study {}\n",
                            render_tables(&report),
                            render_annex(&report, &cfg),
                            key.study_id()
                        );
                        emit(job, &tail);
                        job.wire.extend_from_slice(&job.enc.finish());
                        self.stats.studies_executed += 1;
                        self.cache.insert_report(key, job.body.clone());
                        self.finished.insert(key, end);
                    }
                }
            }
            if self
                .jobs
                .get(&key)
                .expect("still present")
                .pending
                .is_empty()
            {
                self.jobs.remove(&key);
                self.active.pop();
            } else {
                break;
            }
        }
    }

    /// Seconds until the virtual backlog drains (the `Retry-After` value):
    /// at least 1, rounded up.
    fn retry_after_secs(&self) -> u64 {
        let backlog = self
            .busy_until
            .checked_since(self.clock)
            .unwrap_or(SimDuration::ZERO);
        backlog.as_millis().div_ceil(1000).max(1)
    }

    /// Request counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Cache counters, `(tier-1 worlds, tier-2 reports)`.
    pub fn cache_stats(&self) -> (TierStats, TierStats) {
        (self.cache.world_stats(), self.cache.report_stats())
    }

    /// Virtual completion time of a study that has finished.
    pub fn finished_at(&self, key: &StudyKey) -> Option<SimTime> {
        self.finished.get(key).copied()
    }

    /// The gateway's virtual clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// When the virtual server's current backlog drains.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// The worst-case virtual latency of a cold study admitted to an empty
    /// queue (used by clients to space their polls).
    pub fn cold_study_cost() -> SimDuration {
        total_cost()
    }
}

/// Append one section to a job's plain body and chunk-framed wire.
fn emit(job: &mut Job, section: &str) {
    job.body.extend_from_slice(section.as_bytes());
    job.wire
        .extend_from_slice(&job.enc.push(section.as_bytes()));
}

fn plain(status: StatusCode, text: &str) -> Response {
    plain_body(status, text.as_bytes().to_vec())
}

fn plain_body(status: StatusCode, body: Vec<u8>) -> Response {
    let mut resp = Response::new(status, body);
    resp.headers.set("Content-Type", "text/plain");
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post_spec(spec: &WorldSpec) -> Vec<u8> {
        let body = worldgen::to_json(spec).expect("spec renders");
        let mut req = Request {
            method: Method::Post,
            target: Target::Origin("/studies".into()),
            headers: httpwire::Headers::new(),
            body: body.into_bytes(),
        };
        req.headers.set("Host", "gateway");
        req.headers
            .set("Content-Length", &req.body.len().to_string());
        req.encode()
    }

    fn parse(raw: &[u8]) -> Response {
        Response::parse(raw).expect("gateway responses parse").0
    }

    #[test]
    fn malformed_http_and_bad_specs_get_400() {
        let mut gw = Gateway::new(GatewayConfig::default());
        let t = SimTime::EPOCH;
        assert_eq!(
            parse(&gw.handle(b"NONSENSE", t)).status,
            StatusCode::BAD_REQUEST
        );
        let mut req = Request::origin_get("gateway", "/studies");
        req.method = Method::Post;
        req.body = b"{not json".to_vec();
        req.headers.set("Content-Length", "9");
        assert_eq!(
            parse(&gw.handle(&req.encode(), t)).status,
            StatusCode::BAD_REQUEST
        );
        let mut bad_spec = worldgen::smoke_spec(1);
        bad_spec.scale = -1.0; // parses, fails validation
        let resp = parse(&gw.handle(&post_spec(&bad_spec), t));
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
        assert_eq!(gw.stats().invalid, 3);
    }

    #[test]
    fn unknown_routes_and_ids_get_404() {
        let mut gw = Gateway::new(GatewayConfig::default());
        let t = SimTime::EPOCH;
        let get = |path: &str| Request::origin_get("gateway", path).encode();
        assert_eq!(
            parse(&gw.handle(&get("/nope"), t)).status,
            StatusCode::NOT_FOUND
        );
        assert_eq!(
            parse(&gw.handle(&get("/studies/not-a-real-id"), t)).status,
            StatusCode::NOT_FOUND
        );
        let id = StudyKey::for_spec(&worldgen::smoke_spec(1)).study_id();
        assert_eq!(
            parse(&gw.handle(&get(&format!("/studies/{id}")), t)).status,
            StatusCode::NOT_FOUND
        );
    }

    #[test]
    fn admission_join_and_backpressure() {
        let mut gw = Gateway::new(GatewayConfig {
            queue_depth: 1,
            ..GatewayConfig::default()
        });
        let t = SimTime::EPOCH; // never advances: nothing executes
        let first = parse(&gw.handle(&post_spec(&worldgen::smoke_spec(1)), t));
        assert_eq!(first.status, StatusCode::ACCEPTED);
        assert_eq!(first.headers.get("X-Cache"), Some("miss"));
        let id = first.headers.get("X-Study-Id").expect("id header");
        assert_eq!(
            first.headers.get("Location").unwrap(),
            format!("/studies/{id}")
        );

        // Identical resubmission joins in-flight — no second slot consumed.
        let joined = parse(&gw.handle(&post_spec(&worldgen::smoke_spec(1)), t));
        assert_eq!(joined.status, StatusCode::ACCEPTED);
        assert_eq!(joined.headers.get("X-Cache"), Some("joined"));

        // A different spec finds the queue full: 429 + Retry-After covering
        // the backlog (5.4s of queued virtual work → 6s).
        let full = parse(&gw.handle(&post_spec(&worldgen::smoke_spec(2)), t));
        assert_eq!(full.status, StatusCode::TOO_MANY_REQUESTS);
        assert_eq!(full.headers.get("Retry-After"), Some("6"));
        let s = gw.stats();
        assert_eq!((s.accepted, s.joined, s.rejected), (1, 1, 1));
        assert_eq!(s.studies_executed, 0, "clock never moved");
    }

    #[test]
    fn incremental_get_grows_and_completes() {
        let mut gw = Gateway::new(GatewayConfig::default());
        let accept = parse(&gw.handle(&post_spec(&worldgen::smoke_spec(5)), SimTime::EPOCH));
        let id = accept.headers.get("X-Study-Id").expect("id").to_string();
        let get = Request::origin_get("gateway", &format!("/studies/{id}")).encode();

        // Mid-flight: chunked snapshot, strictly growing.
        let early = parse(&gw.handle(&get, SimTime::from_millis(500)));
        assert_eq!(early.headers.get("X-Study-Complete"), Some("false"));
        assert!(early.headers.is_chunked());
        let mid = parse(&gw.handle(&get, SimTime::from_millis(3_500)));
        assert!(
            mid.body.len() > early.body.len(),
            "later poll must have seen more stages"
        );
        assert!(String::from_utf8_lossy(&mid.body).contains("stage dns complete"));

        // Past the virtual end: complete, content-length framed, cached.
        let done = parse(&gw.handle(&get, SimTime::from_millis(10_000)));
        assert_eq!(done.headers.get("X-Study-Complete"), Some("true"));
        assert!(!done.headers.is_chunked());
        let text = String::from_utf8_lossy(&done.body);
        assert!(text.contains("Table 1"), "tables served");
        assert!(text.contains(&format!("# end study {id}")));
        assert_eq!(gw.stats().studies_executed, 1);

        // And the mid-flight snapshot (already de-chunked by the response
        // parser) was a strict prefix of the final body.
        assert!(done.body.starts_with(&mid.body));
        assert!(done.body.len() > mid.body.len());
    }
}
