//! Shared parsing machinery for requests and responses.

use crate::chunked;
use crate::headers::Headers;
use std::fmt;

/// Errors parsing an HTTP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Input ended before the message was complete.
    Incomplete,
    /// The start line was malformed.
    BadStartLine,
    /// A header line was malformed.
    BadHeader,
    /// The body framing was invalid (bad Content-Length or chunk coding).
    BadBody,
    /// Non-UTF-8 bytes in the head section.
    BadEncoding,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Incomplete => write!(f, "message incomplete"),
            ParseError::BadStartLine => write!(f, "malformed start line"),
            ParseError::BadHeader => write!(f, "malformed header"),
            ParseError::BadBody => write!(f, "invalid body framing"),
            ParseError::BadEncoding => write!(f, "non-UTF-8 head section"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Split the head section: returns `(start_line, headers, body_offset)`.
pub(crate) fn head(input: &[u8]) -> Result<(&str, Headers, usize), ParseError> {
    let head_end = input
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(ParseError::Incomplete)?;
    let head_bytes = input.get(..head_end).ok_or(ParseError::Incomplete)?;
    let head = std::str::from_utf8(head_bytes).map_err(|_| ParseError::BadEncoding)?;
    let mut lines = head.split("\r\n");
    let start_line = lines.next().ok_or(ParseError::BadStartLine)?;
    if start_line.is_empty() {
        return Err(ParseError::BadStartLine);
    }
    let mut headers = Headers::new();
    for line in lines {
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadHeader);
        }
        headers.append(name, value.trim());
    }
    Ok((start_line, headers, head_end + 4))
}

/// Extract the body given the framing headers. Returns `(body, total bytes
/// consumed from the start of the message)`.
///
/// `read_to_end` selects the HTTP/1.0-style "body is everything until
/// connection close" fallback used for responses without framing headers;
/// requests never use it.
pub(crate) fn body(
    headers: &Headers,
    input: &[u8],
    body_start: usize,
    read_to_end: bool,
) -> Result<(Vec<u8>, usize), ParseError> {
    let tail = input.get(body_start..).ok_or(ParseError::Incomplete)?;
    if headers.is_chunked() {
        let (body, used) = chunked::decode(tail).map_err(|e| match e {
            chunked::ChunkError::Truncated => ParseError::Incomplete,
            _ => ParseError::BadBody,
        })?;
        return Ok((body, body_start + used));
    }
    if let Some(len) = headers.content_length() {
        let body = tail.get(..len).ok_or(ParseError::Incomplete)?;
        return Ok((body.to_vec(), body_start + len));
    }
    if headers.contains("content-length") {
        // Header present but unparseable.
        return Err(ParseError::BadBody);
    }
    if read_to_end {
        Ok((tail.to_vec(), input.len()))
    } else {
        Ok((Vec::new(), body_start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_splits_start_line_and_headers() {
        let raw = b"GET / HTTP/1.1\r\nHost: x\r\nA: b\r\n\r\nBODY";
        let (start, headers, off) = head(raw).unwrap();
        assert_eq!(start, "GET / HTTP/1.1");
        assert_eq!(headers.get("host"), Some("x"));
        assert_eq!(&raw[off..], b"BODY");
    }

    #[test]
    fn incomplete_head() {
        assert!(matches!(
            head(b"GET / HTTP/1.1\r\nHost: x"),
            Err(ParseError::Incomplete)
        ));
    }

    #[test]
    fn bad_header_line() {
        assert!(matches!(
            head(b"GET / HTTP/1.1\r\nNOCOLON\r\n\r\n"),
            Err(ParseError::BadHeader)
        ));
        assert!(matches!(
            head(b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n"),
            Err(ParseError::BadHeader)
        ));
    }

    #[test]
    fn body_content_length() {
        let mut h = Headers::new();
        h.set("Content-Length", "4");
        let raw = b"....ABCDextra";
        let (body, used) = body(&h, raw, 4, false).unwrap();
        assert_eq!(body, b"ABCD");
        assert_eq!(used, 8);
    }

    #[test]
    fn body_content_length_incomplete() {
        let mut h = Headers::new();
        h.set("Content-Length", "10");
        assert_eq!(body(&h, b"....AB", 4, false), Err(ParseError::Incomplete));
    }

    #[test]
    fn body_bad_content_length() {
        let mut h = Headers::new();
        h.set("Content-Length", "wat");
        assert_eq!(body(&h, b"....", 4, false), Err(ParseError::BadBody));
    }

    #[test]
    fn body_read_to_end_fallback() {
        let h = Headers::new();
        let (b, used) = body(&h, b"....tail", 4, true).unwrap();
        assert_eq!(b, b"tail");
        assert_eq!(used, 8);
        let (b2, used2) = body(&h, b"....tail", 4, false).unwrap();
        assert!(b2.is_empty());
        assert_eq!(used2, 4);
    }
}
