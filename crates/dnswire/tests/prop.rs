//! Property-based tests: wire-format roundtrips and decoder robustness.

use dnswire::{decode, encode, DnsName, Message, QType, RData, Rcode, Record};
use std::net::{Ipv4Addr, Ipv6Addr};
use substrate::qc::{self, alphabet, Config, Gen};
use substrate::qc_assert_eq;

fn cfg() -> Config {
    Config::with_cases(256)
}

/// `[a-z0-9][a-z0-9-]{0,14}` — one DNS label.
fn labels() -> Gen<String> {
    qc::tuple2(
        qc::string_of(alphabet::LOWER_ALNUM, 1..=1),
        qc::string_of("abcdefghijklmnopqrstuvwxyz0123456789-", 0..15),
    )
    .map(|(head, tail)| head + &tail)
}

fn names() -> Gen<DnsName> {
    qc::vec_of(labels(), 1..5)
        .map(|labels| DnsName::parse(&labels.join(".")).expect("generated labels are valid"))
}

fn qtypes() -> Gen<QType> {
    qc::one_of(vec![
        qc::just(QType::A),
        qc::just(QType::Ns),
        qc::just(QType::Cname),
        qc::just(QType::Txt),
        qc::just(QType::Aaaa),
        qc::just(QType::Soa),
    ])
}

fn rdatas() -> Gen<RData> {
    qc::one_of(vec![
        qc::any_u32().map(|v| RData::A(Ipv4Addr::from(v))),
        qc::any_u128().map(|v| RData::Aaaa(Ipv6Addr::from(v))),
        names().map(RData::Ns),
        names().map(RData::Cname),
        names().map(RData::Ptr),
        qc::vec_of(qc::string_of(alphabet::PRINTABLE, 0..41), 0..3).map(RData::Txt),
        qc::tuple4(names(), names(), qc::any_u32(), qc::any_u32()).map(
            |(mname, rname, serial, t)| RData::Soa {
                mname,
                rname,
                serial,
                refresh: t,
                retry: t / 2,
                expire: t.saturating_mul(2),
                minimum: 300,
            },
        ),
    ])
}

fn records() -> Gen<Record> {
    qc::tuple3(names(), qc::any_u32(), rdatas()).map(|(name, ttl, rdata)| Record {
        name,
        ttl,
        rdata,
    })
}

fn messages() -> Gen<Message> {
    let rcodes = qc::one_of(vec![
        qc::just(Rcode::NoError),
        qc::just(Rcode::NxDomain),
        qc::just(Rcode::ServFail),
    ]);
    qc::tuple5(
        qc::any_u16(),
        qc::tuple2(names(), qtypes()),
        qc::vec_of(records(), 0..6),
        qc::vec_of(records(), 0..3),
        rcodes,
    )
    .map(|(id, (qname, qtype), answers, authority, rcode)| {
        let q = Message::query(id, qname, qtype);
        let mut m = Message::respond(&q, rcode, answers);
        m.authority = authority;
        m
    })
}

/// encode → decode is the identity on well-formed messages, including
/// through the name-compression path.
#[test]
fn roundtrip() {
    qc::check("dns message roundtrip", &cfg(), &messages(), |msg| {
        let bytes = encode(msg).expect("encodable");
        let back = decode(&bytes).expect("decodable");
        qc_assert_eq!(&back, msg);
        qc::pass()
    });
}

/// The decoder never panics on arbitrary bytes.
#[test]
fn decoder_total_on_garbage() {
    qc::check(
        "decoder totality on garbage",
        &cfg(),
        &qc::bytes(0..512),
        |bytes| {
            let _ = decode(bytes);
            qc::pass()
        },
    );
}

/// The decoder never panics on corrupted valid messages (single-octet
/// mutations, the fault-injector model).
#[test]
fn decoder_total_on_corruption() {
    qc::check(
        "decoder totality on corruption",
        &cfg(),
        &qc::tuple3(messages(), qc::any_usize(), qc::ints(1u8..)),
        |(msg, idx, flip)| {
            let mut bytes = encode(msg).expect("encodable");
            if !bytes.is_empty() {
                let i = idx % bytes.len();
                bytes[i] ^= flip;
                let _ = decode(&bytes);
            }
            qc::pass()
        },
    );
}

/// Truncation at every length errors or yields a message, never panics.
#[test]
fn decoder_total_on_truncation() {
    qc::check(
        "decoder totality on truncation",
        &cfg(),
        &qc::tuple2(messages(), qc::floats(0.0..1.0)),
        |(msg, cut)| {
            let bytes = encode(msg).expect("encodable");
            let cut = (bytes.len() as f64 * cut) as usize;
            let _ = decode(&bytes[..cut]);
            qc::pass()
        },
    );
}

/// Name parse/display roundtrip.
#[test]
fn name_roundtrip() {
    qc::check("dns name roundtrip", &cfg(), &names(), |name| {
        let s = name.to_string();
        qc_assert_eq!(&DnsName::parse(&s).unwrap(), name);
        qc::pass()
    });
}
