//! `pool-shared-mut`: a determinism race detector for worker-pool closures.
//!
//! The determinism contract says worker count is a pure throughput knob —
//! no task may observe scheduling. The ways that contract breaks in
//! practice are all *shared mutable state smuggled into the task closure*:
//!
//! - interior-mutability types (`RefCell`, `Cell`, `Mutex`, `RwLock`,
//!   `Atomic*`) touched inside a `pool::par_map` / `thread::scope` task
//!   closure — update order depends on scheduling;
//! - a captured `&mut` reference crossing the closure boundary — mutation
//!   order depends on scheduling (locals declared *inside* the closure are
//!   exempted by a conservative binding scan);
//! - an RNG used inside a shard closure without first being forked by
//!   index or label (`fork`/`fork_indexed`) — draws would interleave
//!   nondeterministically across tasks.
//!
//! The engine has no alias analysis, so all three checks over-approximate:
//! a `Mutex` that is provably per-task still fires and must carry a
//! reasoned allow. That is the price of catching the real ones on every
//! commit instead of in a flaky 2 a.m. benchmark diff.

use super::in_src;
use crate::ast::{Closure, FnNode};
use crate::engine::{Analysis, Diagnostic, FileKind, Pass, SourceFile};
use crate::lexer::TokKind;

/// Flag shared mutable state crossing pool-closure boundaries.
pub struct PoolSharedMut;

/// Interior-mutability type names (plus the `Atomic*` prefix family).
const SHARED_MUT_TYPES: [&str; 4] = ["Cell", "Mutex", "RefCell", "RwLock"];

impl Pass for PoolSharedMut {
    fn id(&self) -> &'static str {
        "pool-shared-mut"
    }

    fn description(&self) -> &'static str {
        "forbid RefCell/Cell/Mutex/RwLock/Atomic*, captured &mut, and unforked \
         RNGs inside pool::par_map / thread::scope task closures"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.kind == FileKind::Rust && in_src(file)
    }

    fn check(&self, _file: &SourceFile, _out: &mut Vec<Diagnostic>) {}

    fn check_analysis(&self, files: &[SourceFile], analysis: &Analysis, out: &mut Vec<Diagnostic>) {
        let table = &analysis.table;
        for id in 0..table.len() {
            let node = table.node(id);
            let file = &files[table.fns[id].file];
            if node.in_test_mod || !self.applies(file) {
                continue;
            }
            for call in &node.calls {
                if !is_pool_boundary(&call.path, call.method) {
                    continue;
                }
                let boundary = call.path.join("::");
                for closure in &node.closures {
                    // The task closure: lexically inside the boundary
                    // call's argument list.
                    if closure.body.0 < call.args.0 || closure.body.1 > call.args.1 {
                        continue;
                    }
                    self.check_closure(file, node, closure, &boundary, out);
                }
            }
        }
    }
}

impl PoolSharedMut {
    fn check_closure(
        &self,
        file: &SourceFile,
        node: &FnNode,
        closure: &Closure,
        boundary: &str,
        out: &mut Vec<Diagnostic>,
    ) {
        let body = body_code_tokens(file, closure);
        let locals = local_bindings(file, &body);
        let is_local = |name: &str| {
            closure.params.iter().any(|p| p == name) || locals.contains(&name.to_string())
        };

        let mut rng_site: Option<(u32, u32, String)> = None;
        let mut forked = false;
        for (w, &i) in body.iter().enumerate() {
            let t = &file.tokens[i];
            let text = t.text(&file.text);
            if t.kind == TokKind::Ident {
                if SHARED_MUT_TYPES.contains(&text)
                    || (text.starts_with("Atomic") && text.len() > "Atomic".len())
                {
                    out.push(self.diag(
                        file,
                        t.line,
                        t.col,
                        &format!(
                            "{text} inside the {boundary} task closure of `{}`: update order \
                             depends on scheduling, breaking worker-count determinism; pass \
                             per-task state in and merge results in task-index order",
                            node.name
                        ),
                    ));
                }
                if forked || text == "fork" || text == "fork_indexed" {
                    forked = true;
                } else if rng_site.is_none() && (text == "rng" || text.ends_with("_rng")) {
                    rng_site = Some((t.line, t.col, text.to_string()));
                }
                continue;
            }
            // Captured `&mut x`: the borrow target is neither a closure
            // parameter nor bound by a let/for inside the body.
            if text == "&" && tok_text(file, &body, w + 1) == "mut" {
                let target = tok_text(file, &body, w + 2);
                let is_ident = body
                    .get(w + 2)
                    .is_some_and(|&j| file.tokens[j].kind == TokKind::Ident);
                if is_ident && target != "self" && !is_local(target) {
                    out.push(self.diag(
                        file,
                        t.line,
                        t.col,
                        &format!(
                            "&mut {target} captured by the {boundary} task closure of `{}`: \
                             shared mutation across tasks races on scheduling; return values \
                             from the closure and merge them in task-index order",
                            node.name
                        ),
                    ));
                }
            }
        }
        // RNG used in the task closure without an index/label fork: draws
        // interleave by scheduling. Forking anywhere in the body (usually
        // its first statement) satisfies the discipline.
        if let Some((line, col, name)) = rng_site {
            if !forked && !is_local(&name) {
                out.push(self.diag(
                    file,
                    line,
                    col,
                    &format!(
                        "RNG `{name}` is used inside the {boundary} task closure of `{}` \
                         without fork()/fork_indexed(); fork a per-task stream by index or \
                         label before drawing",
                        node.name
                    ),
                ));
            }
        }
    }

    fn diag(&self, file: &SourceFile, line: u32, col: u32, message: &str) -> Diagnostic {
        Diagnostic {
            pass: self.id().into(),
            file: file.rel_path.clone(),
            line,
            col,
            message: message.to_string(),
        }
    }
}

/// Is this call site a pool task boundary?
fn is_pool_boundary(path: &[String], method: bool) -> bool {
    let Some(name) = path.last() else {
        return false;
    };
    if name == "par_map" {
        return true;
    }
    // `thread::scope` / `std::thread::scope`, but not an arbitrary
    // `.scope(…)` method or a same-named free fn.
    !method && name == "scope" && path.len() >= 2 && path[path.len() - 2] == "thread"
}

/// Code-token indices (into `file.tokens`) of the closure body.
fn body_code_tokens(file: &SourceFile, closure: &Closure) -> Vec<usize> {
    (closure.body.0..closure.body.1.min(file.tokens.len()))
        .filter(|&i| {
            !matches!(
                file.tokens[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect()
}

fn tok_text<'a>(file: &'a SourceFile, body: &[usize], w: usize) -> &'a str {
    body.get(w)
        .map(|&i| file.tokens[i].text(&file.text))
        .unwrap_or("")
}

/// Identifiers bound inside the body by `let` patterns or `for` loops —
/// a conservative "declared locally" set for the captured-`&mut` check.
fn local_bindings(file: &SourceFile, body: &[usize]) -> Vec<String> {
    let mut out = Vec::new();
    let mut w = 0;
    while w < body.len() {
        match tok_text(file, body, w) {
            "let" => {
                // Idents between `let` and `=`/`;` (pattern flattening).
                let mut v = w + 1;
                while v < body.len() {
                    let t = tok_text(file, body, v);
                    if t == "=" || t == ";" {
                        break;
                    }
                    if file.tokens[body[v]].kind == TokKind::Ident && t != "mut" && t != "ref" {
                        out.push(t.to_string());
                    }
                    v += 1;
                }
                w = v;
            }
            "for" => {
                let mut v = w + 1;
                while v < body.len() && tok_text(file, body, v) != "in" {
                    if file.tokens[body[v]].kind == TokKind::Ident {
                        out.push(tok_text(file, body, v).to_string());
                    }
                    v += 1;
                }
                w = v;
            }
            _ => w += 1,
        }
    }
    out
}
