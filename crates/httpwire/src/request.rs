//! HTTP requests: the three target forms the proxy ecosystem uses, plus
//! serialization and parsing.

use crate::headers::Headers;
use crate::parse::{self, ParseError};
use crate::uri::Uri;
use std::fmt;

/// HTTP request method.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// HEAD
    Head,
    /// POST
    Post,
    /// CONNECT — the tunnel-establishment method the HTTPS experiment uses.
    Connect,
    /// Any other token, preserved verbatim.
    Other(String),
}

impl Method {
    /// The method token.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Connect => "CONNECT",
            Method::Other(s) => s,
        }
    }

    /// Parse a method token.
    pub fn parse(s: &str) -> Method {
        match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "CONNECT" => Method::Connect,
            other => Method::Other(other.to_string()),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The request target, in one of the three forms of RFC 7230 §5.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// Origin form: `/path` (what origin servers receive).
    Origin(String),
    /// Absolute form: `http://host/path` (what HTTP proxies receive).
    Absolute(Uri),
    /// Authority form: `host:port` (CONNECT only).
    Authority(String, u16),
}

impl Target {
    /// The path component of the target (authority form has none).
    pub fn path(&self) -> Option<&str> {
        match self {
            Target::Origin(p) => Some(p),
            Target::Absolute(u) => Some(&u.path),
            Target::Authority(..) => None,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Origin(p) => f.write_str(p),
            Target::Absolute(u) => write!(f, "{u}"),
            Target::Authority(h, p) => write!(f, "{h}:{p}"),
        }
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target.
    pub target: Target,
    /// Header fields.
    pub headers: Headers,
    /// Message body (empty for GET/HEAD/CONNECT in this ecosystem).
    pub body: Vec<u8>,
}

impl Request {
    /// A GET in absolute (proxy) form with a `Host` header.
    pub fn proxy_get(uri: Uri) -> Request {
        let mut headers = Headers::new();
        headers.set("Host", &uri.authority());
        Request {
            method: Method::Get,
            target: Target::Absolute(uri),
            headers,
            body: Vec::new(),
        }
    }

    /// A GET in origin form (as seen by the origin server).
    pub fn origin_get(host: &str, path: &str) -> Request {
        let mut headers = Headers::new();
        headers.set("Host", host);
        Request {
            method: Method::Get,
            target: Target::Origin(path.to_string()),
            headers,
            body: Vec::new(),
        }
    }

    /// A CONNECT request to `host:port`.
    pub fn connect(host: &str, port: u16) -> Request {
        let mut headers = Headers::new();
        headers.set("Host", &format!("{host}:{port}"));
        Request {
            method: Method::Connect,
            target: Target::Authority(host.to_string(), port),
            headers,
            body: Vec::new(),
        }
    }

    /// The `Host` header value, if present.
    pub fn host(&self) -> Option<&str> {
        self.headers.get("host")
    }

    /// Serialize to wire bytes. A `Content-Length` header is added when a
    /// body is present and neither framing header exists.
    // tft-lint: hot-root — runs once per HTTP probe
    pub fn encode(&self) -> Vec<u8> {
        let mut headers = self.headers.clone();
        if !self.body.is_empty() && headers.content_length().is_none() && !headers.is_chunked() {
            headers.set("Content-Length", &self.body.len().to_string());
        }
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("{} {} HTTP/1.1\r\n{headers}\r\n", self.method, self.target).as_bytes(),
        );
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse a complete request from wire bytes. Returns the request and the
    /// number of bytes consumed.
    // tft-lint: hot-root — runs once per HTTP probe
    // tft-lint: wire-entry — parses untrusted bytes
    pub fn parse(input: &[u8]) -> Result<(Request, usize), ParseError> {
        let (start_line, headers, body_start) = parse::head(input)?;
        let mut parts = start_line.split(' ');
        let method = Method::parse(parts.next().ok_or(ParseError::BadStartLine)?);
        let target_str = parts.next().ok_or(ParseError::BadStartLine)?;
        let version = parts.next().ok_or(ParseError::BadStartLine)?;
        if !version.starts_with("HTTP/1.") || parts.next().is_some() {
            return Err(ParseError::BadStartLine);
        }
        let target = if method == Method::Connect {
            let (host, port) = target_str
                .rsplit_once(':')
                .ok_or(ParseError::BadStartLine)?;
            let port: u16 = port.parse().map_err(|_| ParseError::BadStartLine)?;
            Target::Authority(host.to_string(), port)
        } else if target_str.starts_with('/') {
            Target::Origin(target_str.to_string())
        } else if target_str.starts_with("http") {
            Target::Absolute(Uri::parse(target_str).map_err(|_| ParseError::BadStartLine)?)
        } else {
            return Err(ParseError::BadStartLine);
        };
        let (body, consumed) = parse::body(&headers, input, body_start, false)?;
        Ok((
            Request {
                method,
                target,
                headers,
                body,
            },
            consumed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_get_encodes_absolute_form() {
        let req = Request::proxy_get(Uri::parse("http://d1.tft-probe.example/").unwrap());
        let wire = String::from_utf8(req.encode()).unwrap();
        assert!(
            wire.starts_with("GET http://d1.tft-probe.example/ HTTP/1.1\r\n"),
            "got: {wire}"
        );
        assert!(wire.contains("Host: d1.tft-probe.example\r\n"));
    }

    #[test]
    fn connect_encodes_authority_form() {
        let req = Request::connect("203.0.113.4", 443);
        let wire = String::from_utf8(req.encode()).unwrap();
        assert!(wire.starts_with("CONNECT 203.0.113.4:443 HTTP/1.1\r\n"));
    }

    #[test]
    fn parse_roundtrip_all_forms() {
        for req in [
            Request::proxy_get(Uri::parse("http://a.example/x").unwrap()),
            Request::origin_get("a.example", "/x"),
            Request::connect("a.example", 443),
        ] {
            let wire = req.encode();
            let (parsed, consumed) = Request::parse(&wire).unwrap();
            assert_eq!(parsed, req);
            assert_eq!(consumed, wire.len());
        }
    }

    #[test]
    fn parse_with_body() {
        let mut req = Request::origin_get("a.example", "/submit");
        req.method = Method::Post;
        req.body = b"payload".to_vec();
        let wire = req.encode();
        let (parsed, _) = Request::parse(&wire).unwrap();
        assert_eq!(parsed.body, b"payload");
        assert_eq!(parsed.headers.content_length(), Some(7));
    }

    #[test]
    fn rejects_bad_start_lines() {
        assert!(Request::parse(b"GARBAGE\r\n\r\n").is_err());
        assert!(Request::parse(b"GET /x HTTP/2.0 extra\r\n\r\n").is_err());
        assert!(Request::parse(b"GET ftp://x/ HTTP/1.1\r\n\r\n").is_err());
        assert!(Request::parse(b"CONNECT noport HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn method_parse_preserves_unknown() {
        assert_eq!(Method::parse("PATCH"), Method::Other("PATCH".into()));
        assert_eq!(Method::parse("GET"), Method::Get);
    }
}
