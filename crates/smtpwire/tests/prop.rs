//! Property tests: SMTP reply wire roundtrips and parser totality.

use smtpwire::{Capabilities, Command, Reply};
use substrate::qc::{self, alphabet, Config, Gen};
use substrate::{qc_assert, qc_assert_eq};

/// Printable ASCII without CR/LF.
fn reply_lines() -> Gen<String> {
    qc::string_of(alphabet::PRINTABLE, 0..61)
}

#[test]
fn reply_roundtrip() {
    qc::check(
        "reply roundtrip",
        &Config::default(),
        &qc::tuple2(qc::ints(200u16..560), qc::vec_of(reply_lines(), 1..6)),
        |(code, lines)| {
            let reply = Reply::multiline(*code, lines.clone());
            let text = reply.to_text();
            qc_assert_eq!(Reply::parse(&text).unwrap(), reply);
            qc::pass()
        },
    );
}

#[test]
fn reply_parser_total() {
    qc::check(
        "reply parser totality",
        &Config::default(),
        &qc::bytes(0..256),
        |garbage| {
            let text = String::from_utf8_lossy(garbage).into_owned();
            let _ = Reply::parse(&text);
            qc::pass()
        },
    );
}

#[test]
fn command_parser_total() {
    qc::check(
        "command parser totality",
        &Config::default(),
        &qc::string_of(alphabet::PRINTABLE, 0..81),
        |line| {
            let _ = Command::parse(line);
            qc::pass()
        },
    );
}

/// Stripping the STARTTLS line from any EHLO reply always clears the
/// parsed capability — the invariant the stripping middlebox relies on.
#[test]
fn capability_stripping_invariant() {
    qc::check(
        "capability stripping invariant",
        &Config::default(),
        &qc::vec_of(reply_lines(), 0..4),
        |extra| {
            let mut lines = vec!["mx.example".to_string(), "STARTTLS".to_string()];
            lines.extend(extra.iter().cloned());
            let full = Reply::multiline(250, lines.clone());
            qc_assert!(Capabilities::from_ehlo(&full).starttls);
            let stripped_lines: Vec<String> = lines
                .iter()
                .enumerate()
                .filter(|(i, l)| *i == 0 || !l.eq_ignore_ascii_case("STARTTLS"))
                .map(|(_, l)| l.clone())
                .collect();
            let stripped = Reply::multiline(250, stripped_lines);
            qc_assert!(!Capabilities::from_ehlo(&stripped).starttls);
            qc::pass()
        },
    );
}
