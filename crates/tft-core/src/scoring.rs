//! Scoring: does the inference pipeline rediscover the planted ground
//! truth?
//!
//! This is the only place analysis output and [`worldgen::GroundTruth`]
//! meet. Precision/recall are computed over the nodes each experiment
//! actually measured (an unmeasured violator is out of scope, exactly as
//! in the real study).

use crate::obs::DnsOutcome;
use crate::study::StudyReport;
use proxynet::{NodeId, ZId};
use std::collections::{HashMap, HashSet};
use std::fmt;
use worldgen::GroundTruth;

/// Detection quality for one experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Correctly flagged nodes.
    pub true_positives: usize,
    /// Flagged nodes that are clean in ground truth.
    pub false_positives: usize,
    /// Violating measured nodes the pipeline missed.
    pub false_negatives: usize,
}

impl Score {
    /// Precision (1.0 when nothing was flagged).
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / flagged as f64
        }
    }

    /// Recall (1.0 when nothing was plantable).
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            1.0
        } else {
            self.true_positives as f64 / actual as f64
        }
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} fn={} precision={:.3} recall={:.3}",
            self.true_positives,
            self.false_positives,
            self.false_negatives,
            self.precision(),
            self.recall()
        )
    }
}

/// Scores for all four experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreCard {
    /// DNS hijack detection.
    pub dns: Score,
    /// HTML modification detection (injection or block page).
    pub http_html: Score,
    /// Image transcoding detection.
    pub http_image: Score,
    /// Certificate replacement detection.
    pub https: Score,
    /// Content monitoring detection.
    pub monitor: Score,
}

/// Build the zID → ground-truth lookup (zIDs derive deterministically from
/// node ids).
fn zid_index(truth: &GroundTruth) -> HashMap<ZId, NodeId> {
    (0..truth.total_nodes as u32)
        .map(|i| (ZId::for_node(NodeId(i)), NodeId(i)))
        .collect()
}

fn score<'a>(
    measured: impl Iterator<Item = (&'a ZId, bool)>,
    truth_set: &HashSet<NodeId>,
    index: &HashMap<ZId, NodeId>,
) -> Score {
    let mut s = Score {
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
    };
    for (zid, flagged) in measured {
        let Some(node) = index.get(zid) else { continue };
        let actual = truth_set.contains(node);
        match (flagged, actual) {
            (true, true) => s.true_positives += 1,
            (true, false) => s.false_positives += 1,
            (false, true) => s.false_negatives += 1,
            (false, false) => {}
        }
    }
    s
}

/// Score a study report against the planted truth.
pub fn score_report(report: &StudyReport, truth: &GroundTruth) -> ScoreCard {
    let index = zid_index(truth);

    let dns_truth: HashSet<NodeId> = truth.dns_hijacked.keys().copied().collect();
    let dns = score(
        report
            .dns_data
            .observations
            .iter()
            .map(|o| (&o.zid, matches!(o.outcome, DnsOutcome::Hijacked { .. }))),
        &dns_truth,
        &index,
    );

    let html_truth: HashSet<NodeId> = truth
        .html_injected
        .keys()
        .chain(truth.html_blocked.iter())
        .copied()
        .collect();
    let http_html = score(
        report.http_data.observations.iter().map(|o| {
            let flagged = o
                .results
                .iter()
                .any(|r| r.object == crate::obs::ProbeObject::Html && r.is_modified());
            (&o.zid, flagged)
        }),
        &html_truth,
        &index,
    );

    let image_truth: HashSet<NodeId> = truth.image_transcoded.iter().copied().collect();
    let http_image = score(
        report.http_data.observations.iter().filter_map(|o| {
            // Only nodes whose JPEG was actually fetched count.
            let result = o
                .results
                .iter()
                .find(|r| r.object == crate::obs::ProbeObject::Jpeg)?;
            Some((&o.zid, result.is_modified()))
        }),
        &image_truth,
        &index,
    );

    let https_truth: HashSet<NodeId> = truth.tls_intercepted.keys().copied().collect();
    // Recompute per-node replacement flags the same way the analysis does:
    // any probe failing its class check. The analysis aggregates; here we
    // need per-node flags, so reuse escalation + per-probe evaluation via
    // the stored observations' `escalated` field: a node escalates exactly
    // when a phase-1 check failed, and phase-2 confirms. For scoring we use
    // "escalated" as the flag — a clean node never escalates because its
    // phase-1 chains verify.
    let https = score(
        report
            .https_data
            .observations
            .iter()
            .map(|o| (&o.zid, o.escalated)),
        &https_truth,
        &index,
    );

    let monitor_truth: HashSet<NodeId> = truth.monitored.keys().copied().collect();
    let monitor = score(
        report
            .monitor_data
            .observations
            .iter()
            .map(|o| (&o.zid, !o.unexpected.is_empty())),
        &monitor_truth,
        &index,
    );

    ScoreCard {
        dns,
        http_html,
        http_image,
        https,
        monitor,
    }
}

/// Score the SMTP extension experiment against planted stripping truth.
pub fn score_smtp(data: &crate::smtp_exp::SmtpDataset, truth: &GroundTruth) -> Score {
    let index = zid_index(truth);
    let truth_set: HashSet<NodeId> = truth.smtp_stripped.iter().copied().collect();
    score(
        data.observations
            .iter()
            .map(|o| (&o.zid, !o.result.capabilities.starttls)),
        &truth_set,
        &index,
    )
}

/// Render a scorecard.
pub fn render(card: &ScoreCard) -> String {
    format!(
        "\n=== Scoring vs planted ground truth ===\n\
         DNS hijack   : {}\n\
         HTML mod     : {}\n\
         Image mod    : {}\n\
         Cert replace : {}\n\
         Monitoring   : {}\n",
        card.dns, card.http_html, card.http_image, card.https, card.monitor
    )
}
