//! Property tests: chain validation accepts exactly the chains it should.

use certs::{verify_chain, CertAuthority, CertError, DistinguishedName, KeyId, RootStore};
use netsim::{SimDuration, SimRng, SimTime};
use substrate::qc::{self, alphabet, Config, Gen};
use substrate::{qc_assert_eq, qc_assert_ne, qc_assume};

/// `[a-z]{1,10}(\.[a-z]{2,8}){1,3}` — a dotted hostname.
fn hosts() -> Gen<String> {
    qc::tuple2(
        qc::string_of(alphabet::LOWER, 1..11),
        qc::vec_of(qc::string_of(alphabet::LOWER, 2..9), 1..4),
    )
    .map(|(head, tail)| {
        let mut s = head;
        for part in tail {
            s.push('.');
            s.push_str(&part);
        }
        s
    })
}

/// A chain issued root → (0..3 intermediates) → leaf always validates
/// for its own hostname inside its validity window.
#[test]
fn issued_chains_validate() {
    qc::check(
        "issued chains validate",
        &Config::default(),
        &qc::tuple3(qc::any_u64(), hosts(), qc::ints(0usize..3)),
        |(seed, host, depth)| {
            let mut rng = SimRng::new(*seed);
            let now = SimTime::EPOCH + SimDuration::from_days(10);
            let (store, mut cas) = RootStore::os_x_like(3, SimTime::EPOCH, &mut rng);
            let mut signer = cas.remove(0);
            let mut chain_tail = vec![signer.cert.clone()];
            for i in 0..*depth {
                let inter = signer.issue_intermediate(
                    DistinguishedName::cn(&format!("Inter {i}")),
                    SimTime::EPOCH,
                    &mut rng,
                );
                chain_tail.insert(0, inter.cert.clone());
                signer = inter;
            }
            let leaf = signer.issue_leaf(host, SimTime::EPOCH, &mut rng);
            let mut chain = vec![leaf];
            chain.extend(chain_tail);
            qc_assert_eq!(verify_chain(&chain, host, now, &store), Ok(()));
            qc::pass()
        },
    );
}

/// Any single broken signature link invalidates the chain.
#[test]
fn broken_link_is_rejected() {
    qc::check(
        "broken link rejected",
        &Config::default(),
        &qc::tuple3(qc::any_u64(), hosts(), qc::any_u64()),
        |(seed, host, key)| {
            let mut rng = SimRng::new(*seed);
            let now = SimTime::EPOCH + SimDuration::from_days(10);
            let (store, mut cas) = RootStore::os_x_like(2, SimTime::EPOCH, &mut rng);
            let mut inter =
                cas[0].issue_intermediate(DistinguishedName::cn("Inter"), SimTime::EPOCH, &mut rng);
            let mut leaf = inter.issue_leaf(host, SimTime::EPOCH, &mut rng);
            let forged = KeyId(*key);
            qc_assume!(forged != leaf.issuer_key);
            leaf.issuer_key = forged;
            let chain = vec![leaf, inter.cert.clone()];
            qc_assert_eq!(
                verify_chain(&chain, host, now, &store),
                Err(CertError::BadSignature)
            );
            qc::pass()
        },
    );
}

/// A chain for host A never validates for an unrelated host B.
#[test]
fn wrong_hostname_rejected() {
    qc::check(
        "wrong hostname rejected",
        &Config::default(),
        &qc::tuple3(qc::any_u64(), hosts(), hosts()),
        |(seed, a, b)| {
            qc_assume!(a != b);
            let mut rng = SimRng::new(*seed);
            let now = SimTime::EPOCH + SimDuration::from_days(10);
            let (store, mut cas) = RootStore::os_x_like(1, SimTime::EPOCH, &mut rng);
            let leaf = cas[0].issue_leaf(a, SimTime::EPOCH, &mut rng);
            qc_assert_eq!(
                verify_chain(&[leaf], b, now, &store),
                Err(CertError::NameMismatch)
            );
            qc::pass()
        },
    );
}

/// Outside the validity window the verdict is Expired / NotYetValid.
#[test]
fn time_window_enforced() {
    qc::check(
        "time window enforced",
        &Config::default(),
        &qc::tuple3(qc::any_u64(), hosts(), qc::ints(731u64..2000)),
        |(seed, host, offset_days)| {
            let mut rng = SimRng::new(*seed);
            let (store, mut cas) = RootStore::os_x_like(1, SimTime::EPOCH, &mut rng);
            let leaf =
                cas[0].issue_leaf(host, SimTime::EPOCH + SimDuration::from_days(1), &mut rng);
            let too_late = SimTime::EPOCH + SimDuration::from_days(1 + offset_days);
            qc_assert_eq!(
                verify_chain(std::slice::from_ref(&leaf), host, too_late, &store),
                Err(CertError::Expired)
            );
            qc_assert_eq!(
                verify_chain(&[leaf], host, SimTime::EPOCH, &store),
                Err(CertError::NotYetValid)
            );
            qc::pass()
        },
    );
}

/// Fingerprints of independently issued certificates never collide in
/// practice; a certificate equals itself.
#[test]
fn fingerprint_discriminates() {
    qc::check(
        "fingerprint discriminates",
        &Config::default(),
        &qc::tuple2(qc::any_u64(), hosts()),
        |(seed, host)| {
            let mut rng = SimRng::new(*seed);
            let mut ca =
                CertAuthority::new_root(DistinguishedName::cn("Root"), SimTime::EPOCH, &mut rng);
            let a = ca.issue_leaf(host, SimTime::EPOCH, &mut rng);
            let b = ca.issue_leaf(host, SimTime::EPOCH, &mut rng);
            qc_assert_eq!(a.fingerprint(), a.fingerprint());
            qc_assert_ne!(a.fingerprint(), b.fingerprint());
            qc::pass()
        },
    );
}
