//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale S] [--seed N] [--table K | --figure K | --csv K | --all]
//! ```
//!
//! With no selector, prints everything: Tables 1–9, Figures 1–5, and the
//! ground-truth scorecard.

use tft_bench::{render_all, render_timeline_figures, run_full, DEFAULT_SCALE};
use tft_core::report::{csv, figures, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = DEFAULT_SCALE;
    let mut seed = worldgen::DEFAULT_SEED;
    let mut table: Option<u32> = None;
    let mut figure: Option<u32> = None;
    let mut csv_table: Option<u32> = None;
    let mut markdown = false;
    let mut spec_path: Option<String> = None;
    let mut export_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("bad --scale"));
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("bad --seed"));
                i += 2;
            }
            "--table" => {
                table = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("bad --table")),
                );
                i += 2;
            }
            "--figure" => {
                figure = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("bad --figure")),
                );
                i += 2;
            }
            "--spec" => {
                spec_path = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| usage("bad --spec")),
                );
                i += 2;
            }
            "--export-spec" => {
                export_path = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| usage("bad --export-spec")),
                );
                i += 2;
            }
            "--markdown" => {
                markdown = true;
                i += 1;
            }
            "--csv" => {
                csv_table = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("bad --csv")),
                );
                i += 2;
            }
            "--all" => i += 1,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    // Figures 1–4 need no study run.
    if let Some(f) = figure {
        if (1..=4).contains(&f) {
            let mut world = figures::demo_world();
            let out = match f {
                1 => figures::figure1(&mut world),
                2 => figures::figure2(&mut world),
                3 => figures::figure3(&mut world),
                _ => figures::figure4(&mut world),
            };
            println!("{out}");
            return;
        }
    }

    if let Some(path) = export_path {
        let spec = worldgen::paper_spec(scale, seed);
        worldgen::save(&spec, &path).unwrap_or_else(|e| usage(&format!("export failed: {e}")));
        eprintln!("wrote calibrated spec to {path}");
        return;
    }

    let run = match spec_path {
        Some(path) => {
            eprintln!("building world from {path} and running the four experiments…");
            let spec =
                worldgen::load(&path).unwrap_or_else(|e| usage(&format!("spec load failed: {e}")));
            tft_bench::run_full_spec(&spec)
        }
        None => {
            eprintln!("building world (scale {scale}) and running the four experiments…");
            run_full(scale, seed)
        }
    };

    if markdown {
        println!("{}", tft_bench::render_markdown(&run));
        return;
    }

    if let Some(k) = csv_table {
        let out = match k {
            3 => csv::table3(&run.report.dns),
            4 => csv::table4(&run.report.dns),
            5 => csv::table5(&run.report.dns),
            6 => csv::table6(&run.report.http),
            7 => csv::table7(&run.report.http),
            8 => csv::table8(&run.report.https),
            9 => csv::table9(&run.report.monitor),
            10 => csv::smtp(&run.smtp),
            // Figure 5's raw series.
            5555 | 55 => csv::figure5(&run.report.monitor),
            _ => usage("csv exports are tables 3..=9, 10 (SMTP ext), or 55 (figure 5 series)"),
        };
        println!("{out}");
        return;
    }

    match (table, figure) {
        (Some(k), _) => {
            let out = match k {
                1 => tables::table1(&run.report),
                2 => tables::table2(&run.report),
                3 => tables::table3(&run.report.dns),
                4 => tables::table4(&run.report.dns),
                5 => tables::table5(&run.report.dns),
                6 => tables::table6(&run.report.http),
                7 => tables::table7(&run.report.http),
                8 => tables::table8(&run.report.https),
                9 => tables::table9(&run.report.monitor),
                _ => usage("tables are 1..=9"),
            };
            println!("{out}");
        }
        (None, Some(5)) => println!("{}", figures::figure5(&run.report.monitor)),
        (None, Some(_)) => usage("figures are 1..=5"),
        (None, None) => {
            println!("{}", render_all(&run));
            println!("{}", render_timeline_figures());
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale S] [--seed N] [--table 1..9 | --figure 1..5 | --csv 3..10|55 | --markdown | --spec F | --export-spec F | --all]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
